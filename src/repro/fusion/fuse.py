"""Cross-site fusion of extracted triples.

The model follows the Knowledge Vault line ([10, 11]): treat each site as
a noisy source and score a candidate fact by a noisy-OR over the
confidences of its supporting extractions, damped per source so that one
site repeating an error a hundred times cannot outvote two independent
sites asserting the truth once:

    score(f) = 1 - Π_sites (1 - reliability(site) * site_confidence(f))
    site_confidence(f) = max confidence of f's extractions on that site

``reliability(site)`` defaults to 1 (plain noisy-OR); when estimated from
a site's agreement with the seed KB (:mod:`repro.fusion.reliability`),
an unreliable site's vote is discounted before it enters the product —
the CERES §fusion / source-reliability treatment.

Facts are keyed by canonicalized ``(subject, predicate, object)``;
surface variation between sites ("June 30, 1989" vs "1989-06-30") is
bridged by the same normalization used for KB matching plus date
canonicalization (:func:`repro.kb.literals.parse_date`).

The canonical *surface form* of a fused fact is taken from its
highest-confidence supporting extraction (ties broken lexically), so the
fused output never depends on site iteration or arrival order.

For corpus-scale streaming ingestion (bounded memory, disk spill), see
:class:`repro.fusion.store.FactStore`; :func:`fuse_extractions` is the
in-memory convenience wrapper over the same merge logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.extraction.extractor import Extraction
from repro.kb.literals import parse_date
from repro.text.normalize import normalize_text

__all__ = [
    "FusedFact",
    "canonical_value",
    "fact_key",
    "fuse_extractions",
]

FactKey = tuple[str, str, str]

#: A single site's confidence never contributes certainty: the noisy-OR
#: product must stay > 0 so cross-site agreement still moves the score.
MAX_SITE_CONFIDENCE = 0.999999


def canonical_value(text: str) -> str:
    """The canonical matching form of an object value.

    Dates are canonicalized to ISO first ("June 30, 1989" and
    "1989-06-30" key identically); everything else goes through
    :func:`~repro.text.normalize.normalize_text`.
    """
    iso = parse_date(text)
    if iso is not None:
        return iso
    return normalize_text(text)


def fact_key(subject: str, predicate: str, obj: str) -> FactKey:
    """Canonical identity of a candidate fact across sites."""
    return (normalize_text(subject), predicate, canonical_value(obj))


def clamp_confidence(confidence: float) -> float:
    """Confidence clamped into [0, MAX_SITE_CONFIDENCE] for the noisy-OR."""
    return min(max(confidence, 0.0), MAX_SITE_CONFIDENCE)


@dataclass
class FusedFact:
    """One candidate fact with its cross-site support."""

    subject: str
    predicate: str
    object: str
    #: site name -> best extraction confidence on that site.
    site_support: dict[str, float] = field(default_factory=dict)
    #: site name -> reliability weight in [0, 1]; sites absent from the
    #: mapping weigh 1.0 (plain noisy-OR).
    site_reliability: dict[str, float] = field(default_factory=dict)
    #: set by FactStore.finalize once support is final, so ranking and
    #: serialization reuse one computation and stay mutually consistent.
    _score_cache: float | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def n_sites(self) -> int:
        return len(self.site_support)

    @property
    def score(self) -> float:
        """Reliability-weighted noisy-OR over per-site confidences.

        Sites enter the product in sorted name order so the score is
        bit-identical regardless of ingestion order.
        """
        if self._score_cache is not None:
            return self._score_cache
        remaining = 1.0
        for site in sorted(self.site_support):
            weight = self.site_reliability.get(site, 1.0)
            remaining *= 1.0 - weight * clamp_confidence(self.site_support[site])
        return 1.0 - remaining

    def freeze_score(self) -> float:
        """Compute, cache, and return the score (support is final)."""
        self._score_cache = None
        self._score_cache = self.score
        return self._score_cache

    def key(self) -> FactKey:
        return fact_key(self.subject, self.predicate, self.object)


def fuse_extractions(
    extractions_by_site: dict[str, list[Extraction]],
    min_score: float = 0.0,
    min_sites: int = 1,
    site_reliability: dict[str, float] | None = None,
) -> list[FusedFact]:
    """Fuse per-site extraction lists into scored candidate facts.

    Args:
        extractions_by_site: site name -> extractions from that site.
        min_score: drop fused facts scoring below this.
        min_sites: require support from at least this many distinct sites
            (2+ filters single-site template artifacts).
        site_reliability: optional site -> weight in [0, 1] applied to
            each site's vote (see :mod:`repro.fusion.reliability`).

    Returns:
        Fused facts sorted by descending score, then by key — a total,
        insertion-order-independent order.
    """
    # One code path with the streaming store: fuse_extractions is the
    # everything-fits-in-memory special case.
    from repro.fusion.store import FactStore

    store = FactStore(site_reliability=site_reliability)
    for site, extractions in extractions_by_site.items():
        store.add_extractions(site, extractions)
    return store.finalize(min_score=min_score, min_sites=min_sites)
