"""Cross-site fusion of extracted triples.

The model follows the Knowledge Vault line ([10, 11]): treat each site as
a noisy source and score a candidate fact by a noisy-OR over the
confidences of its supporting extractions, damped per source so that one
site repeating an error a hundred times cannot outvote two independent
sites asserting the truth once:

    score(f) = 1 - Π_sites (1 - site_confidence(f))
    site_confidence(f) = max confidence of f's extractions on that site

Facts are keyed by normalized ``(subject, predicate, object)``; surface
variation between sites ("June 30, 1989" vs "1989-06-30") is bridged by
the same normalization used for KB matching.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.extraction.extractor import Extraction
from repro.text.normalize import normalize_text

__all__ = ["FusedFact", "fuse_extractions"]

FactKey = tuple[str, str, str]


@dataclass
class FusedFact:
    """One candidate fact with its cross-site support."""

    subject: str
    predicate: str
    object: str
    #: site name -> best extraction confidence on that site.
    site_support: dict[str, float] = field(default_factory=dict)

    @property
    def n_sites(self) -> int:
        return len(self.site_support)

    @property
    def score(self) -> float:
        """Noisy-OR over per-site confidences."""
        remaining = 1.0
        for confidence in self.site_support.values():
            remaining *= 1.0 - min(max(confidence, 0.0), 0.999999)
        return 1.0 - remaining

    def key(self) -> FactKey:
        return (
            normalize_text(self.subject),
            self.predicate,
            normalize_text(self.object),
        )


def fuse_extractions(
    extractions_by_site: dict[str, list[Extraction]],
    min_score: float = 0.0,
    min_sites: int = 1,
) -> list[FusedFact]:
    """Fuse per-site extraction lists into scored candidate facts.

    Args:
        extractions_by_site: site name -> extractions from that site.
        min_score: drop fused facts scoring below this.
        min_sites: require support from at least this many distinct sites
            (2+ filters single-site template artifacts).

    Returns:
        Fused facts sorted by descending score, then by key for
        determinism.
    """
    facts: dict[FactKey, FusedFact] = {}
    for site, extractions in extractions_by_site.items():
        best_on_site: dict[FactKey, Extraction] = {}
        for extraction in extractions:
            key = (
                normalize_text(extraction.subject),
                extraction.predicate,
                normalize_text(extraction.object),
            )
            current = best_on_site.get(key)
            if current is None or extraction.confidence > current.confidence:
                best_on_site[key] = extraction
        for key, extraction in best_on_site.items():
            fact = facts.get(key)
            if fact is None:
                fact = FusedFact(
                    extraction.subject, extraction.predicate, extraction.object
                )
                facts[key] = fact
            fact.site_support[site] = max(
                fact.site_support.get(site, 0.0), extraction.confidence
            )

    fused = [
        fact
        for fact in facts.values()
        if fact.n_sites >= min_sites and fact.score >= min_score
    ]
    fused.sort(key=lambda f: (-f.score, f.key()))
    return fused
