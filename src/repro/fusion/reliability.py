"""Site reliability estimated from agreement with the seed KB.

CERES §fusion / the PGM-based distant-supervision line treat each source
as having a latent accuracy; here it is estimated directly, per site,
from the extractions the seed KB can adjudicate:

* an extraction is **checkable** when the KB knows its subject (some
  entity matches the subject surface) *and* asserts at least one triple
  for its predicate on that subject — the KB has an opinion;
* a checkable extraction **agrees** when its object canonicalizes to one
  of the KB object surfaces for that (subject, predicate).

``reliability = (agreed + prior·weight) / (checked + weight)`` — a
Beta-smoothed agreement rate, so a site with three checkable facts is
pulled toward the prior while a site with three hundred earns its own
rate.  The weight discounts a site's vote inside the fused noisy-OR
(:attr:`repro.fusion.fuse.FusedFact.score`).
"""

from __future__ import annotations

from typing import Iterable

from repro.fusion.fuse import canonical_value
from repro.kb.store import KnowledgeBase
from repro.runtime.cache import LRUCache
from repro.text.fuzzy import surface_variants

__all__ = [
    "AgreementTally",
    "agreement_counts",
    "estimate_reliability",
    "extraction_agreement",
]

#: Beta prior on site accuracy: centered, worth PRIOR_WEIGHT observations.
PRIOR = 0.5
PRIOR_WEIGHT = 2.0
#: Reliability clamps: a weight of exactly 0 would erase a site entirely
#: and exactly 1 would claim a perfect source; neither is believable.
MIN_RELIABILITY = 0.05
MAX_RELIABILITY = 0.99


def estimate_reliability(
    checked: int,
    agreed: int,
    *,
    prior: float = PRIOR,
    prior_weight: float = PRIOR_WEIGHT,
) -> float:
    """Smoothed per-site accuracy from seed-KB agreement counts."""
    if checked < 0 or agreed < 0 or agreed > checked:
        raise ValueError(f"bad agreement counts: {agreed}/{checked}")
    estimate = (agreed + prior * prior_weight) / (checked + prior_weight)
    return min(max(estimate, MIN_RELIABILITY), MAX_RELIABILITY)


class AgreementTally:
    """Streaming per-site (checked, agreed) tallies against one KB.

    Lookup work is memoized per distinct subject surface and per
    ``(entity, predicate)`` — extractions repeat both heavily — in
    bounded LRUs shared across sites, so a corpus-scale stream (the
    FactStore's bounded-memory regime) cannot grow the tally's resident
    set without bound either.
    """

    #: Memo capacities: a site's distinct subjects are its page topics
    #: (hundreds), so tens of thousands of slots span many sites' working
    #: sets while capping worst-case growth on corpus-scale streams.
    CACHE_SIZE = 65536

    def __init__(self, kb: KnowledgeBase, cache_size: int = CACHE_SIZE) -> None:
        self._kb = kb
        self._subject_cache: LRUCache[str, frozenset[str]] = LRUCache(
            cache_size, name="tally_subjects"
        )
        self._object_cache: LRUCache[tuple[str, str], frozenset[str]] = (
            LRUCache(cache_size, name="tally_objects")
        )
        #: site -> [checked, agreed]
        self._counts: dict[str, list[int]] = {}

    def observe(
        self, site: str, subject: str, predicate: str, obj: str
    ) -> None:
        """Tally one extraction surface against the KB."""
        entity_ids = self._subject_cache.get(subject)
        if entity_ids is None:
            entity_ids = frozenset(
                self._kb.entity_ids_for_variants(surface_variants(subject))
            )
            self._subject_cache.put(subject, entity_ids)
        if not entity_ids:
            return
        known: set[str] = set()
        for entity_id in entity_ids:
            cache_key = (entity_id, predicate)
            surfaces = self._object_cache.get(cache_key)
            if surfaces is None:
                surfaces = frozenset(
                    canonical_value(surface)
                    for triple in self._kb.triples_for_subject(entity_id)
                    if triple.predicate == predicate
                    for surface in self._kb.object_surfaces(triple)
                )
                self._object_cache.put(cache_key, surfaces)
            known.update(surfaces)
        if not known:
            return  # the KB has no opinion on this (subject, predicate)
        counts = self._counts.setdefault(site, [0, 0])
        counts[0] += 1
        if canonical_value(obj) in known:
            counts[1] += 1

    def counts(self, site: str) -> tuple[int, int]:
        """(checked, agreed) observed for ``site`` so far."""
        checked, agreed = self._counts.get(site, (0, 0))
        return checked, agreed

    def sites(self) -> list[str]:
        return sorted(self._counts)


def agreement_counts(
    kb: KnowledgeBase,
    facts: Iterable[tuple[str, str, str]],
) -> tuple[int, int]:
    """(checked, agreed) of ``(subject, predicate, object)`` surfaces
    against the seed KB."""
    tally = AgreementTally(kb)
    for subject, predicate, obj in facts:
        tally.observe("_", subject, predicate, obj)
    return tally.counts("_")


def extraction_agreement(
    kb: KnowledgeBase, extractions: Iterable
) -> tuple[int, int]:
    """:func:`agreement_counts` over extraction objects."""
    return agreement_counts(
        kb,
        ((e.subject, e.predicate, e.object) for e in extractions),
    )
