"""Knowledge fusion over multi-site extractions (the paper's future work).

Section 5.5.1: "We leave for future work to investigate how many of these
aforementioned mistakes can be solved by applying knowledge fusion [10, 11]
on the extraction results."  This package implements a Knowledge-Vault-style
fusion layer: extractions from many sites vote on each candidate fact, and
cross-site agreement separates template artifacts (one site extracting the
same wrong region everywhere) from true facts (asserted independently by
several sites).
"""

from repro.fusion.fuse import FusedFact, fuse_extractions

__all__ = ["FusedFact", "fuse_extractions"]
