"""Knowledge fusion over multi-site extractions (the paper's future work).

Section 5.5.1: "We leave for future work to investigate how many of these
aforementioned mistakes can be solved by applying knowledge fusion [10, 11]
on the extraction results."  This package implements a Knowledge-Vault-style
fusion layer: extractions from many sites vote on each candidate fact, and
cross-site agreement separates template artifacts (one site extracting the
same wrong region everywhere) from true facts (asserted independently by
several sites).

Two entry points share one merge/scoring path:

* :func:`fuse_extractions` — in-memory, for per-run result dicts;
* :class:`FactStore` — streaming, predicate-sharded, disk-spilling; the
  corpus-scale path fed by ``run_corpus(..., fuse=...)`` and the
  ``python -m repro fuse`` CLI.

Per-site reliability weights (agreement with the seed KB) live in
:mod:`repro.fusion.reliability`.
"""

from repro.fusion.fuse import (
    FusedFact,
    canonical_value,
    fact_key,
    fuse_extractions,
)
from repro.fusion.reliability import (
    AgreementTally,
    agreement_counts,
    estimate_reliability,
    extraction_agreement,
)
from repro.fusion.store import FactStore, fused_fact_row, write_fused_jsonl

__all__ = [
    "AgreementTally",
    "FactStore",
    "FusedFact",
    "agreement_counts",
    "canonical_value",
    "estimate_reliability",
    "extraction_agreement",
    "fact_key",
    "fuse_extractions",
    "fused_fact_row",
    "write_fused_jsonl",
]
