"""FactStore: corpus-scale streaming fusion with bounded memory.

CERES fuses the output of hundreds of thousands of sites; the full
candidate-fact set does not fit in one dict.  :class:`FactStore` ingests
extractions incrementally — site by site, as
:func:`repro.runtime.runner.run_corpus` reports completions, or row by
row from extraction JSONL — and maintains per-fact site support in
predicate-keyed shards.  When resident facts exceed a bound, the largest
shard spills its partial aggregates to a sorted run file on disk;
:meth:`finalize` k-way-merges the in-memory remainder with every spilled
run and scores each fact once.

Determinism is the contract: the fused output is bit-identical no matter
the ingestion order (worker completion order under a process pool), the
shard count, or how often spills happened.  Three properties make that
hold:

* the per-fact merge (max confidence per site, best-surface selection)
  is associative and commutative;
* the noisy-OR iterates sites in sorted name order
  (:attr:`FusedFact.score`);
* the final ordering ``(-score, key)`` is total — keys are unique.
"""

from __future__ import annotations

import heapq
import json
import shutil
import tempfile
import zlib
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro import obs
from repro.core.extraction.extractor import Extraction
from repro.fusion.fuse import FactKey, FusedFact, fact_key
from repro.fusion.reliability import estimate_reliability
from repro.runtime.resilience import atomic_write

__all__ = ["FactStore", "fused_fact_row", "write_fused_jsonl"]

#: best-surface selector: minimal (-confidence, subject, object) wins, so
#: the highest-confidence extraction names the fact, ties broken lexically.
_Best = tuple[float, str, str]
#: one partially merged fact: [best, {site: max confidence}].
_Partial = list


def _shard_of(predicate: str, n_shards: int) -> int:
    """Stable predicate -> shard assignment (never the randomized
    built-in ``hash``, which would break cross-process determinism)."""
    return zlib.crc32(predicate.encode("utf-8")) % n_shards


def _merge_partial(into: _Partial, other: _Partial) -> None:
    if other[0] < into[0]:
        into[0] = other[0]
    support = into[1]
    for site, confidence in other[1].items():
        current = support.get(site)
        if current is None or confidence > current:
            support[site] = confidence


def _merge_streams(
    streams: list[Iterator[tuple[FactKey, _Partial]]],
) -> Iterator[tuple[FactKey, _Partial]]:
    """K-way merge of key-sorted partial streams, combining equal keys."""
    merged = heapq.merge(*streams, key=lambda item: item[0])
    current_key: FactKey | None = None
    current: _Partial | None = None
    for key, partial in merged:
        if key == current_key:
            _merge_partial(current, partial)
            continue
        if current_key is not None:
            yield current_key, current
        current_key, current = key, partial
    if current_key is not None:
        yield current_key, current


class FactStore:
    """Streaming aggregation of extractions into scored fused facts.

    Args:
        n_shards: predicate-keyed shard count; affects spill granularity
            only, never the fused output.
        max_resident_facts: spill to disk once this many distinct facts
            are held in memory (the bound that keeps corpus-scale RSS
            flat).  ``None`` never spills.
        spill_dir: where run files land; ``None`` uses a self-cleaning
            temporary directory.
        site_reliability: optional pre-computed site -> weight mapping.
        use_reliability: when True, :meth:`observe_agreement` converts
            seed-KB agreement counts into reliability weights; when
            False those observations are ignored (plain noisy-OR).
    """

    def __init__(
        self,
        *,
        n_shards: int = 8,
        max_resident_facts: int | None = None,
        spill_dir: str | Path | None = None,
        site_reliability: dict[str, float] | None = None,
        use_reliability: bool = False,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if max_resident_facts is not None and max_resident_facts < 1:
            raise ValueError("max_resident_facts must be >= 1 or None")
        self.n_shards = n_shards
        self.max_resident_facts = max_resident_facts
        self.site_reliability: dict[str, float] = dict(site_reliability or {})
        self.use_reliability = use_reliability
        self._shards: list[dict[FactKey, _Partial]] = [
            {} for _ in range(n_shards)
        ]
        self._runs: list[list[Path]] = [[] for _ in range(n_shards)]
        self._run_counter = 0
        self._resident = 0
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._tmp_dir: str | None = None
        self._finalized = False
        self.n_rows = 0
        self.n_spills = 0
        self.n_spilled_facts = 0
        # Instruments are captured once at construction: add() runs per
        # extraction row, and a per-row global lookup would tax the
        # ingest hot path.  Stores built while obs is disabled keep the
        # free no-op instruments for their lifetime.
        self._obs = obs.metrics()
        self._obs_rows = self._obs.counter("fusion.rows")

    # -- ingestion ---------------------------------------------------------

    def add(
        self,
        site: str,
        subject: str,
        predicate: str,
        obj: str,
        confidence: float,
    ) -> None:
        """Ingest one extraction (any order; duplicates merge)."""
        if self._finalized:
            raise RuntimeError("FactStore already finalized")
        key = fact_key(subject, predicate, obj)
        shard = self._shards[_shard_of(predicate, self.n_shards)]
        best: _Best = (-confidence, subject, obj)
        partial = shard.get(key)
        if partial is None:
            shard[key] = [best, {site: confidence}]
            self._resident += 1
            if (
                self.max_resident_facts is not None
                and self._resident > self.max_resident_facts
            ):
                self._spill_largest_shard()
        else:
            _merge_partial(partial, [best, {site: confidence}])
        self.n_rows += 1
        self._obs_rows.inc()

    def add_extractions(
        self, site: str, extractions: Iterable[Extraction]
    ) -> None:
        """Ingest one site's extraction objects."""
        for extraction in extractions:
            self.add(
                site,
                extraction.subject,
                extraction.predicate,
                extraction.object,
                extraction.confidence,
            )

    def add_row(self, row: dict, site: str | None = None) -> None:
        """Ingest one extraction JSONL row (the :func:`extraction_row`
        format); ``site`` overrides/supplies the row's site label."""
        label = site if site is not None else row.get("site")
        if not label:
            raise ValueError(
                "extraction row has no 'site' field and no site was given"
            )
        self.add(
            label, row["subject"], row["predicate"], row["object"],
            float(row["confidence"]),
        )

    def ingest_rows(
        self, rows: Iterable[dict], site: str | None = None
    ) -> None:
        with self._obs.timer("fusion.ingest_seconds"):
            for row in rows:
                self.add_row(row, site)

    # -- reliability -------------------------------------------------------

    def observe_agreement(self, site: str, checked: int, agreed: int) -> None:
        """Record a site's seed-KB agreement counts; converted to a
        reliability weight when ``use_reliability`` is on, ignored
        otherwise (so callers may always report)."""
        if self.use_reliability:
            self.site_reliability[site] = estimate_reliability(checked, agreed)

    # -- spilling ----------------------------------------------------------

    @property
    def resident_facts(self) -> int:
        """Distinct facts currently held in memory (spilled ones excluded)."""
        return self._resident

    def _spill_root(self) -> Path:
        if self._spill_dir is not None:
            self._spill_dir.mkdir(parents=True, exist_ok=True)
            return self._spill_dir
        if self._tmp_dir is None:
            self._tmp_dir = tempfile.mkdtemp(prefix="repro-factstore-")
        return Path(self._tmp_dir)

    #: Compact a shard's runs once this many accumulate, so merging (here
    #: and in finalize) never opens more than this many files at once —
    #: extreme cap/fact ratios must not hit the process fd limit.
    MAX_RUNS_PER_SHARD = 16

    def _next_run_path(self, index: int) -> Path:
        self._run_counter += 1
        return (
            self._spill_root()
            / f"shard{index:03d}.run{self._run_counter:06d}.jsonl"
        )

    @staticmethod
    def _write_run(
        path: Path, items: Iterable[tuple[FactKey, _Partial]]
    ) -> int:
        """Write one sorted run file; returns the bytes written.

        Atomic (temp + fsync + rename): a crash mid-spill or
        mid-compaction never leaves a torn run file for a resumed or
        concurrent reader to trust.
        """
        written = 0
        with atomic_write(path, fault="fusion.run.write") as sink:
            for key, (best, support) in items:
                line = (
                    json.dumps([list(key), list(best), support],
                               ensure_ascii=False)
                    + "\n"
                )
                sink.write(line)
                written += len(line.encode("utf-8"))
        return written

    def _spill_largest_shard(self) -> None:
        index = max(range(self.n_shards), key=lambda i: len(self._shards[i]))
        shard = self._shards[index]
        if not shard:
            return
        run_path = self._next_run_path(index)
        with self._obs.timer("fusion.spill_seconds"):
            spilled_bytes = self._write_run(
                run_path, ((key, shard[key]) for key in sorted(shard))
            )
        self._runs[index].append(run_path)
        self.n_spills += 1
        self.n_spilled_facts += len(shard)
        self._obs.inc("fusion.spills")
        self._obs.inc("fusion.spilled_facts", len(shard))
        self._obs.inc("fusion.spill_bytes", spilled_bytes)
        self._resident -= len(shard)
        shard.clear()
        if len(self._runs[index]) >= self.MAX_RUNS_PER_SHARD:
            self._compact_runs(index)

    def _compact_runs(self, index: int) -> None:
        """Merge a shard's runs into one (streaming, fd-bounded)."""
        runs = self._runs[index]
        compacted = self._next_run_path(index)
        with self._obs.timer("fusion.compact_seconds"):
            compacted_bytes = self._write_run(
                compacted, _merge_streams([self._read_run(p) for p in runs])
            )
        for path in runs:
            path.unlink()
        self._runs[index] = [compacted]
        self._obs.inc("fusion.compactions")
        self._obs.inc("fusion.compact_bytes", compacted_bytes)

    @staticmethod
    def _read_run(path: Path) -> Iterator[tuple[FactKey, _Partial]]:
        with path.open("r", encoding="utf-8") as source:
            for line in source:
                key, best, support = json.loads(line)
                yield tuple(key), [tuple(best), support]

    # -- finalization ------------------------------------------------------

    def finalize(
        self, *, min_score: float = 0.0, min_sites: int = 1
    ) -> list[FusedFact]:
        """Merge memory + spilled runs into scored, filtered, sorted facts.

        The store is consumed: spill files are removed and further
        ingestion raises.
        """
        if self._finalized:
            raise RuntimeError("FactStore already finalized")
        self._finalized = True
        #: (-score, key, fact) — score and canonical key computed exactly
        #: once per fact; the sort then compares plain tuples.
        fused: list[tuple[float, FactKey, FusedFact]] = []
        # The fuse stage span goes to the *currently* active tracer (the
        # parent process finalizes in run-corpus), not a captured one.
        with obs.stage("stage.fuse", rows=self.n_rows) as fuse_stage, \
                self._obs.timer("fusion.finalize_seconds"):
            try:
                for index in range(self.n_shards):
                    shard = self._shards[index]
                    streams: list[Iterator[tuple[FactKey, _Partial]]] = [
                        iter(sorted(shard.items()))
                    ]
                    streams.extend(self._read_run(p) for p in self._runs[index])
                    for key, partial in _merge_streams(streams):
                        self._emit(key, partial, fused, min_score, min_sites)
                    shard.clear()
            finally:
                self._cleanup()
            self._resident = 0
            fused.sort(key=lambda entry: entry[:2])
            fuse_stage.set(facts=len(fused))
        self._obs.inc("fusion.facts", len(fused))
        return [fact for _, _, fact in fused]

    def _emit(
        self,
        key: FactKey,
        partial: _Partial,
        fused: list[tuple[float, FactKey, FusedFact]],
        min_score: float,
        min_sites: int,
    ) -> None:
        best, support = partial
        if len(support) < min_sites:
            return
        fact = FusedFact(
            subject=best[1],
            predicate=key[1],
            object=best[2],
            site_support=support,
            # Per-fact snapshot of the supporting sites' weights: the
            # emitted fact must not alias the store's mutable mapping.
            site_reliability={
                site: self.site_reliability[site]
                for site in support
                if site in self.site_reliability
            },
        )
        score = fact.freeze_score()
        if score >= min_score:
            fused.append((-score, key, fact))

    def close(self) -> None:
        """Discard all state and remove spill files (idempotent).

        ``finalize`` consumes the store and cleans up after itself;
        ``close`` covers the abandonment path — an error between the
        first spill and ``finalize`` must not leak run files in /tmp.
        """
        self._finalized = True
        for shard in self._shards:
            shard.clear()
        self._resident = 0
        self._cleanup()

    def __enter__(self) -> "FactStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _cleanup(self) -> None:
        for runs in self._runs:
            for path in runs:
                try:
                    path.unlink()
                except OSError:
                    pass
            runs.clear()
        if self._tmp_dir is not None:
            shutil.rmtree(self._tmp_dir, ignore_errors=True)
            self._tmp_dir = None

    def stats(self) -> dict:
        """Ingestion counters, JSON-friendly."""
        return {
            "rows": self.n_rows,
            "resident_facts": self._resident,
            "spills": self.n_spills,
            "spilled_facts": self.n_spilled_facts,
            "shards": self.n_shards,
            "reliability_sites": len(self.site_reliability),
        }


def fused_fact_row(fact: FusedFact) -> dict:
    """The canonical fused-fact JSONL row (sites sorted — byte-stable)."""
    return {
        "subject": fact.subject,
        "predicate": fact.predicate,
        "object": fact.object,
        "score": fact.score,
        "n_sites": fact.n_sites,
        "sites": {
            site: fact.site_support[site]
            for site in sorted(fact.site_support)
        },
    }


def write_fused_jsonl(facts: Iterable[FusedFact], sink: IO[str]) -> int:
    """Write fused facts as JSONL; returns the number of rows written."""
    count = 0
    for fact in facts:
        sink.write(json.dumps(fused_fact_row(fact), ensure_ascii=False) + "\n")
        count += 1
    return count
