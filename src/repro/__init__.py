"""CERES reproduction: distantly supervised relation extraction from the
semi-structured web (Lockard et al., VLDB 2018).

Subpackages:

* ``repro.dom`` — DOM tree, HTML parser, XPath engine (lxml substitute).
* ``repro.text`` — normalization, Levenshtein/Jaccard, fuzzy string index.
* ``repro.kb`` — seed knowledge base: triples, ontology, page matching.
* ``repro.ml`` — vectorizer, multinomial logistic regression, clustering.
* ``repro.clustering`` — page template clustering (Vertex-style).
* ``repro.core`` — CERES itself: annotation, training, extraction, pipeline.
* ``repro.baselines`` — Vertex++, CERES-Baseline, CERES-Topic.
* ``repro.datasets`` — synthetic SWDE / IMDb / CommonCrawl generators.
* ``repro.evaluation`` — scoring and the per-table/figure experiments.
"""

__version__ = "1.0.0"
