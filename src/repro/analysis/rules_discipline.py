"""Tier (b) rules: invariants greps could not express.

These rules reason about scope — which lock is held, which modules feed
serialized output, which writes must be atomic, which handlers may
swallow — instead of matching tokens.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rule import LintContext, Rule

# Declarative lock registry: module path -> {attribute -> guarding lock}.
# An attribute listed here may only be touched through `self.<attr>` inside
# a `with self.<lock>:` block (``__init__`` is exempt: construction happens
# before the object is shared).
GUARDED_BY: dict[str, dict[str, str]] = {
    "repro/runtime/service.py": {
        "_sites": "_residency_lock",
        "_ever_resident": "_residency_lock",
    },
    "repro/serving/batching.py": {
        "_pending": "_lock",
        "_active_sites": "_lock",
    },
    "repro/serving/breaker.py": {
        "_state": "_lock",
        "_breakers": "_lock",
    },
    "repro/serving/server.py": {
        "_inflight": "_lifecycle",
        "_phase": "_lifecycle",
    },
}

# Modules whose iteration order reaches serialized output (JSON/JSONL
# reports, fused facts, run artifacts).  Set iteration here must be
# wrapped in sorted().
OUTPUT_ORDER_MODULES: tuple[str, ...] = (
    "repro/fusion/",
    "repro/runtime/serialize.py",
    "repro/evaluation/",
)

# Modules whose writable opens must go through the atomic-write helpers
# (registry artifacts and run-dir state live here); resilience.py holds
# the sanctioned primitive.
ATOMIC_WRITE_MODULES: tuple[str, ...] = (
    "repro/runtime/",
    "repro/fusion/store.py",
)
ATOMIC_WRITE_ALLOWED: frozenset[str] = frozenset(
    {"repro/runtime/resilience.py"}
)


class LockDisciplineRule(Rule):
    """GUARDED_BY attributes are only touched under their lock."""

    id = "lock-discipline"
    summary = "guarded attributes are only touched under their lock"
    rationale = (
        "ExtractionService mutates residency state (_sites, "
        "_ever_resident) from request threads and the background "
        "upgrader; an unlocked read races the LRU eviction path and can "
        "report or revive a site mid-eviction.  The GUARDED_BY registry "
        "in repro.analysis.rules_discipline declares which attribute "
        "belongs to which lock."
    )
    fix_hint = "move the access inside `with self.<lock>:`"

    def applies_to(self, module: str) -> bool:
        return module in GUARDED_BY

    def check(self, context: LintContext) -> Iterator[Finding]:
        guarded = GUARDED_BY[context.module]
        lock_names = frozenset(guarded.values())
        out: list[Finding] = []
        for top in ast.iter_child_nodes(context.tree):
            self._scan(top, frozenset(), "", guarded, lock_names, context, out)
        yield from out

    def _scan(
        self,
        node: ast.AST,
        held: frozenset,
        func: str,
        guarded: dict,
        lock_names: frozenset,
        context: LintContext,
        out: list,
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested function may run after the lock is released: reset.
            for child in ast.iter_child_nodes(node):
                self._scan(
                    child, frozenset(), node.name, guarded, lock_names,
                    context, out,
                )
            return
        if isinstance(node, ast.Lambda):
            self._scan(
                node.body, frozenset(), "<lambda>", guarded, lock_names,
                context, out,
            )
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set()
            for item in node.items:
                expr = item.context_expr
                self._scan(expr, held, func, guarded, lock_names, context, out)
                if item.optional_vars is not None:
                    self._scan(
                        item.optional_vars, held, func, guarded, lock_names,
                        context, out,
                    )
                if (
                    isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                    and expr.attr in lock_names
                ):
                    acquired.add(expr.attr)
            inner = held | acquired
            for child in node.body:
                self._scan(
                    child, inner, func, guarded, lock_names, context, out
                )
            return
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in guarded
            and guarded[node.attr] not in held
            and func != "__init__"
        ):
            out.append(
                self.finding(
                    context,
                    node,
                    f"self.{node.attr} touched outside "
                    f"`with self.{guarded[node.attr]}:`",
                )
            )
        for child in ast.iter_child_nodes(node):
            self._scan(child, held, func, guarded, lock_names, context, out)


def _is_set_expression(node: ast.AST, unioned: bool = False) -> bool:
    """True if ``node`` evaluates to a set (order depends on hash seed).

    ``unioned`` relaxes the check for ``.keys()``: a lone ``dict.keys()``
    preserves insertion order, but unioning two views produces a set.
    """

    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return True
        if isinstance(func, ast.Attribute):
            if func.attr in {
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
            }:
                return True
            if func.attr == "keys" and unioned:
                return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expression(node.left, True) or _is_set_expression(
            node.right, True
        )
    return False


class UnsortedSetIterationRule(Rule):
    """Set iteration on output paths must be sorted."""

    id = "unsorted-set-iteration"
    summary = "output paths iterate sets via sorted()"
    rationale = (
        "Set iteration order depends on PYTHONHASHSEED; any set or "
        "dict-view union iterated on a path that feeds serialized output "
        "(fusion, run artifacts, evaluation reports) makes that output "
        "differ between runs.  Byte-identical reports and fused facts "
        "are a repo contract (resume/equivalence gates diff them)."
    )
    fix_hint = "wrap the iterable in sorted(...)"

    def applies_to(self, module: str) -> bool:
        return any(
            module == scope or module.startswith(scope)
            for scope in OUTPUT_ORDER_MODULES
        )

    def check(self, context: LintContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            iterables: list[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp,
                       ast.GeneratorExp)
            ):
                iterables.extend(gen.iter for gen in node.generators)
            for iterable in iterables:
                if _is_set_expression(iterable):
                    yield self.finding(
                        context,
                        iterable,
                        "iterating a set-valued expression in "
                        "hash-seed-dependent order",
                    )


class AtomicWriteRule(Rule):
    """Registry / run-dir writes go through the atomic helpers."""

    id = "atomic-write"
    summary = "durable writes are atomic (temp + fsync + replace)"
    rationale = (
        "Registry artifacts, run-dir state, and fused output must never "
        "be observable half-written: a crash mid-write would leave a "
        "torn file that a resumed run or a reader then trusts.  All "
        "writable opens in these modules go through "
        "resilience.atomic_write (or RunJournal), which stages a temp "
        "file, fsyncs, and os.replace()s into place."
    )
    fix_hint = (
        "use repro.runtime.resilience.atomic_write "
        "(temp file + fsync + os.replace)"
    )

    def applies_to(self, module: str) -> bool:
        if module in ATOMIC_WRITE_ALLOWED:
            return False
        return any(
            module == scope or module.startswith(scope)
            for scope in ATOMIC_WRITE_MODULES
        )

    @staticmethod
    def _mode_argument(node: ast.Call) -> ast.AST | None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            # builtin open(path, mode)
            if len(node.args) >= 2:
                return node.args[1]
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "open"
            and not (
                isinstance(func.value, ast.Name)
                and func.value.id in {"os", "io", "gzip", "tarfile"}
            )
        ):
            # Path.open(mode=...) — first positional is the mode
            if node.args:
                return node.args[0]
        else:
            return None
        for keyword in node.keywords:
            if keyword.arg == "mode":
                return keyword.value
        return None

    def check(self, context: LintContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            mode = self._mode_argument(node)
            if (
                isinstance(mode, ast.Constant)
                and isinstance(mode.value, str)
                and set("wx+") & set(mode.value)
            ):
                yield self.finding(
                    context,
                    node,
                    f"writable open(mode={mode.value!r}) on a durable "
                    "path without atomic-write discipline",
                )


class ExceptionTaxonomyRule(Rule):
    """Broad excepts in runtime/ must classify, re-raise, or justify."""

    id = "exception-taxonomy"
    summary = "runtime/ and serving/ broad excepts re-raise or classify_error"
    rationale = (
        "The runtime's retry/quarantine machinery routes every failure "
        "through resilience.classify_error so transient faults are "
        "retried and permanent ones quarantined; the serving tier's "
        "shed/breaker decisions hang off the same taxonomy.  An "
        "`except Exception` that silently swallows breaks that taxonomy "
        "and hides poison pages.  Handlers that genuinely must swallow "
        "carry an allow-comment explaining why."
    )
    fix_hint = (
        "re-raise, call resilience.classify_error(exc), or add "
        "`# repro: allow[exception-taxonomy] <reason>`"
    )

    _BROAD = frozenset({"Exception", "BaseException"})

    def applies_to(self, module: str) -> bool:
        return module.startswith(("repro/runtime/", "repro/serving/"))

    def _is_broad(self, node: ast.ExceptHandler) -> bool:
        if node.type is None:
            return True
        types = (
            node.type.elts if isinstance(node.type, ast.Tuple)
            else [node.type]
        )
        for expr in types:
            if isinstance(expr, ast.Name) and expr.id in self._BROAD:
                return True
        return False

    @staticmethod
    def _handler_complies(node: ast.ExceptHandler) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Raise):
                return True
            if isinstance(child, ast.Call):
                func = child.func
                name = (
                    func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else ""
                )
                if name == "classify_error":
                    return True
        return False

    def check(self, context: LintContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if self._is_broad(node) and not self._handler_complies(node):
                yield self.finding(
                    context,
                    node,
                    "broad except swallows without re-raise or "
                    "classify_error",
                )


DISCIPLINE_RULES: tuple[Rule, ...] = (
    LockDisciplineRule(),
    UnsortedSetIterationRule(),
    AtomicWriteRule(),
    ExceptionTaxonomyRule(),
)
