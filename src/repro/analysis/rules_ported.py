"""Tier (a) rules: faithful AST ports of the seven CI grep gates.

Each rule's ``rationale`` carries over the comment that used to sit on
the corresponding ``ci.yml`` grep step, so the knowledge survives the
migration.  Being AST-based, these ports see scope the greps could not:
a ``time.sleep`` inside a comment or docstring no longer trips the gate,
while an aliased ``from time import sleep as pause`` no longer slips
past it.
"""

from __future__ import annotations

import ast
import subprocess
from collections.abc import Iterator
from pathlib import Path

from repro.analysis.findings import Finding
from repro.analysis.rule import LintContext, Rule, docstring_constants


class IdCacheKeyRule(Rule):
    """No ``id(document)``-keyed page caches."""

    id = "id-cache-key"
    summary = "page caches must not be keyed by id(document)"
    rationale = (
        "Page-scoped caching must go through repro.runtime.cache keyed by "
        "Document.doc_id — id() keys leak and can serve another page's "
        "state after the interpreter recycles an object id."
    )
    fix_hint = "key by Document.doc_id via repro.runtime.cache"

    _PAGE_NAMES = frozenset({"document", "doc", "page"})

    def applies_to(self, module: str) -> bool:
        return (
            module.startswith("repro/")
            and module != "repro/runtime/cache.py"
        )

    def check(self, context: LintContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
                and len(node.args) == 1
                and not node.keywords
            ):
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Name):
                name = arg.id
            elif isinstance(arg, ast.Attribute):
                name = arg.attr
            else:
                continue
            if name in self._PAGE_NAMES:
                yield self.finding(
                    context,
                    node,
                    f"id({name}) used as a page-scoped cache key",
                )


class SiblingIndexScanRule(Rule):
    """No ``siblings.index()`` scans in hot paths."""

    id = "sibling-index-scan"
    summary = "no siblings.index() position scans"
    rationale = (
        "Sibling positions are assigned at parse time "
        "(ElementNode.element_index); a siblings.index(element) scan is "
        "O(siblings) per lookup and quadratic over wide elements."
    )
    fix_hint = "use ElementNode.element_index (parse-time position)"

    def check(self, context: LintContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "index"
            ):
                continue
            target = node.func.value
            is_siblings = (
                isinstance(target, ast.Name) and target.id == "siblings"
            ) or (
                isinstance(target, ast.Attribute)
                and target.attr == "siblings"
            )
            if is_siblings:
                yield self.finding(
                    context,
                    node,
                    "siblings.index() linear position scan",
                )


def _time_module_aliases(tree: ast.Module) -> set[str]:
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    aliases.add(alias.asname or "time")
    return aliases


class _TimeMemberRule(Rule):
    """Shared machinery: flag use of one member of the ``time`` module.

    Alias-aware on both axes: ``import time as t; t.sleep(...)`` and
    ``from time import sleep as pause; pause(...)`` are both caught.
    """

    member = ""

    def _message(self) -> str:
        raise NotImplementedError

    def check(self, context: LintContext) -> Iterator[Finding]:
        module_aliases = _time_module_aliases(context.tree)
        member_names: set[str] = set()
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == self.member:
                        member_names.add(alias.asname or alias.name)
                        yield self.finding(
                            context,
                            node,
                            f"`from time import {self.member}` — "
                            + self._message(),
                        )
        for node in ast.walk(context.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == self.member
                and isinstance(node.value, ast.Name)
                and node.value.id in module_aliases
            ):
                yield self.finding(
                    context,
                    node,
                    f"{node.value.id}.{self.member} — " + self._message(),
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in member_names
            ):
                yield self.finding(
                    context,
                    node,
                    f"{node.func.id}() call of time.{self.member} — "
                    + self._message(),
                )


class BareSleepRule(_TimeMemberRule):
    """Retry waiting must go through ``sleep_backoff``."""

    id = "bare-sleep"
    summary = "retry waits go through resilience.sleep_backoff"
    rationale = (
        "All retry waiting must go through repro.runtime.resilience's "
        "sleep_backoff (bounded exponential window, deterministic "
        "jitter).  A bare time.sleep retry loop has no bound, no jitter, "
        "and no chaos-test determinism.  resilience.py holds the one "
        "sanctioned sleep; faults.py's sleep simulates hangs, not "
        "retries."
    )
    fix_hint = "use repro.runtime.resilience.sleep_backoff"
    member = "sleep"

    _ALLOWED = frozenset(
        {"repro/runtime/resilience.py", "repro/testing/faults.py"}
    )

    def applies_to(self, module: str) -> bool:
        if module in self._ALLOWED:
            return False
        return module.startswith("repro/") or module.startswith("benchmarks/")

    def _message(self) -> str:
        return "bare sleep outside the sanctioned resilience/faults modules"


class BarePerfCounterRule(_TimeMemberRule):
    """Benchmarks must time through ``repro.obs``."""

    id = "bare-perf-counter"
    summary = "benchmarks time via repro.obs MetricsRegistry.timer"
    rationale = (
        "Benchmarks must time through MetricsRegistry.timer so every run "
        "leaves a mergeable out/<name>.metrics.json histogram; a bare "
        "perf-counter call produces a number the obs pipeline never "
        "sees."
    )
    fix_hint = "time via repro.obs (MetricsRegistry.timer)"
    member = "perf_counter"

    def applies_to(self, module: str) -> bool:
        return module.startswith("benchmarks/")

    def _message(self) -> str:
        return "bare perf-counter timing bypasses the obs pipeline"


class RoundedConfidenceRule(Rule):
    """No rounded confidences in row emission."""

    id = "rounded-confidence"
    summary = "rows emit full-precision confidence"
    rationale = (
        "extraction_row must emit full-precision confidence: JSON floats "
        "round-trip exactly, so fuse-from-disk stays bit-identical to "
        "fuse-in-memory.  Rounding belongs in human-facing summaries "
        "only."
    )
    fix_hint = (
        "emit extraction.confidence at full precision "
        "(round only in human-facing summaries)"
    )

    def check(self, context: LintContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "round"
                and node.args
            ):
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Attribute) and arg.attr == "confidence":
                yield self.finding(
                    context,
                    node,
                    "round() applied to a .confidence value",
                )


class XferSiteLiteralRule(Rule):
    """No site-specific literals in the ``xfer:`` feature family."""

    id = "xfer-site-literal"
    summary = "xfer: features stay site-agnostic"
    rationale = (
        "The xfer: feature family must stay site-agnostic — raw XPath "
        "steps and attribute values are exactly what does not transfer "
        "across sites.  Anything site-specific belongs in the site: "
        "namespace built by repro.core.extraction.features."
    )
    fix_hint = (
        "site-local vocabulary belongs in the site: namespace"
    )

    _TOKENS = ("xpath(", "attr=")

    def applies_to(self, module: str) -> bool:
        return module == "repro/transfer/features.py"

    def check(self, context: LintContext) -> Iterator[Finding]:
        docstrings = docstring_constants(context.tree)
        for node in ast.walk(context.tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and id(node) not in docstrings
            ):
                for token in self._TOKENS:
                    if token in node.value:
                        yield self.finding(
                            context,
                            node,
                            f"site-specific literal ({token!r}) in xfer "
                            "feature construction",
                        )
                        break
            elif isinstance(node, ast.Attribute) and node.attr == "xpath":
                yield self.finding(
                    context,
                    node,
                    "xpath access in xfer feature construction",
                )
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg == "attr":
                        yield self.finding(
                            context,
                            keyword.value,
                            "attr= keyword in xfer feature construction",
                        )


class TrackedBytecodeRule(Rule):
    """No tracked ``.pyc`` / ``__pycache__`` entries."""

    id = "tracked-bytecode"
    summary = "no bytecode under version control"
    rationale = (
        "PR 4 accidentally committed bytecode; .gitignore now covers it "
        "and this gate keeps it from coming back."
    )
    fix_hint = (
        "remove it (git rm --cached) — .gitignore covers __pycache__"
    )
    repo_level = True

    def applies_to(self, module: str) -> bool:
        return False

    def scan_repo(self, root) -> Iterator[Finding]:
        try:
            proc = subprocess.run(
                ["git", "-C", str(Path(root)), "ls-files"],
                capture_output=True,
                text=True,
                check=True,
            )
        except (OSError, subprocess.CalledProcessError):
            # No git (e.g. an exported tree): nothing to scan.
            return
        for name in proc.stdout.splitlines():
            if name.endswith(".pyc") or "__pycache__" in name.split("/"):
                yield Finding(
                    path=name,
                    line=1,
                    col=1,
                    rule_id=self.id,
                    message="bytecode artifact is tracked by git",
                    fix_hint=self.fix_hint,
                )


PORTED_RULES: tuple[Rule, ...] = (
    IdCacheKeyRule(),
    SiblingIndexScanRule(),
    BareSleepRule(),
    BarePerfCounterRule(),
    RoundedConfidenceRule(),
    XferSiteLiteralRule(),
    TrackedBytecodeRule(),
)
