"""Inline suppression handling for reprolint.

Syntax::

    some_code()  # repro: allow[rule-id] reason the invariant is waived here

A suppression covers the line it sits on; a standalone comment line (no
code before the ``#``) also covers the next line.  The reason is
mandatory — a bare ``# repro: allow[rule-id]`` is itself a finding, as is
a rule id the linter does not know.  Suppression problems are reported
under the pseudo-rule id ``suppression`` and cannot themselves be
suppressed.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

from repro.analysis.findings import Finding

SUPPRESSION_RULE_ID = "suppression"
PARSE_ERROR_RULE_ID = "parse-error"

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]\s*(.*)$")


def _comment_tokens(source: str) -> list[tuple[int, int, str, bool]]:
    """Yield ``(line, col, text, standalone)`` for each comment token.

    Tokenizing (rather than regex-scanning raw lines) keeps allow-syntax
    inside string literals and docstrings from registering as a
    suppression.  ``standalone`` is true when nothing but whitespace
    precedes the comment on its line.
    """

    out: list[tuple[int, int, str, bool]] = []
    lines = source.splitlines()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            lineno, col = token.start
            prefix = lines[lineno - 1][:col] if lineno <= len(lines) else ""
            out.append((lineno, col + 1, token.string, not prefix.strip()))
    except (tokenize.TokenError, IndentationError):
        pass
    return out


@dataclass(frozen=True)
class Suppression:
    line: int
    rule_id: str
    reason: str
    standalone: bool

    def covers(self, line: int) -> bool:
        if line == self.line:
            return True
        return self.standalone and line == self.line + 1


def collect_suppressions(
    path: str, source: str, known_rule_ids: set[str]
) -> tuple[list[Suppression], list[Finding]]:
    """Parse allow-comments out of ``source``.

    Returns the valid suppressions plus findings for malformed ones
    (missing reason, unknown rule id).
    """

    suppressions: list[Suppression] = []
    problems: list[Finding] = []
    for lineno, col, text, standalone in _comment_tokens(source):
        match = _ALLOW_RE.search(text)
        if match is None:
            continue
        rule_id = match.group(1).strip()
        reason = match.group(2).strip()
        if rule_id not in known_rule_ids:
            problems.append(
                Finding(
                    path=path,
                    line=lineno,
                    col=col,
                    rule_id=SUPPRESSION_RULE_ID,
                    message=(
                        f"suppression names unknown rule id {rule_id!r}"
                    ),
                    fix_hint="run `repro lint --list-rules` for valid ids",
                )
            )
            continue
        if not reason:
            problems.append(
                Finding(
                    path=path,
                    line=lineno,
                    col=col,
                    rule_id=SUPPRESSION_RULE_ID,
                    message=(
                        f"suppression of [{rule_id}] has no reason; "
                        "a justification is required"
                    ),
                    fix_hint=(
                        "write `# repro: allow[%s] <why this line is exempt>`"
                        % rule_id
                    ),
                )
            )
            continue
        suppressions.append(
            Suppression(
                line=lineno,
                rule_id=rule_id,
                reason=reason,
                standalone=standalone,
            )
        )
    return suppressions, problems


def apply_suppressions(
    findings: list[Finding], suppressions: list[Suppression]
) -> list[Finding]:
    """Mark findings covered by a matching suppression as suppressed."""

    if not suppressions:
        return findings
    out: list[Finding] = []
    for finding in findings:
        if finding.rule_id in (SUPPRESSION_RULE_ID, PARSE_ERROR_RULE_ID):
            out.append(finding)
            continue
        reason = next(
            (
                s.reason
                for s in suppressions
                if s.rule_id == finding.rule_id and s.covers(finding.line)
            ),
            None,
        )
        if reason is None:
            out.append(finding)
        else:
            out.append(
                Finding(
                    path=finding.path,
                    line=finding.line,
                    col=finding.col,
                    rule_id=finding.rule_id,
                    message=finding.message,
                    fix_hint=finding.fix_hint,
                    suppressed=True,
                    suppress_reason=reason,
                )
            )
    return out
