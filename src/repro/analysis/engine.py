"""reprolint engine: rule registry, file collection, lint drivers.

``lint_paths`` is the CLI entry point; ``lint_source`` lints an
in-memory snippet under a virtual module path, which is how the rule
fixture suite exercises every rule without touching the tree.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.findings import Finding, sort_findings
from repro.analysis.rule import LintContext, Rule, normalize_module
from repro.analysis.rules_discipline import DISCIPLINE_RULES
from repro.analysis.rules_ported import PORTED_RULES
from repro.analysis.suppress import (
    PARSE_ERROR_RULE_ID,
    apply_suppressions,
    collect_suppressions,
)

ALL_RULES: tuple[Rule, ...] = (*PORTED_RULES, *DISCIPLINE_RULES)
RULES_BY_ID: dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}
KNOWN_RULE_IDS: frozenset[str] = frozenset(RULES_BY_ID)

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


class UnknownRuleError(ValueError):
    """Raised when --rule/--exclude names an id the registry lacks."""


def select_rules(
    include: tuple[str, ...] = (), exclude: tuple[str, ...] = ()
) -> tuple[Rule, ...]:
    for rule_id in (*include, *exclude):
        if rule_id not in RULES_BY_ID:
            raise UnknownRuleError(
                f"unknown rule id {rule_id!r}; "
                f"valid ids: {', '.join(sorted(KNOWN_RULE_IDS))}"
            )
    rules = ALL_RULES
    if include:
        wanted = set(include)
        rules = tuple(rule for rule in rules if rule.id in wanted)
    if exclude:
        dropped = set(exclude)
        rules = tuple(rule for rule in rules if rule.id not in dropped)
    return rules


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    files: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(
                candidate
                for candidate in path.rglob("*.py")
                if not _SKIP_DIRS & set(candidate.parts)
            )
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                files.append(candidate)
    return files


def lint_source(
    source: str,
    module: str,
    *,
    path: str | None = None,
    rules: tuple[Rule, ...] = ALL_RULES,
) -> list[Finding]:
    """Lint one module's source text under a virtual module path."""

    display = path if path is not None else module
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule_id=PARSE_ERROR_RULE_ID,
                message=f"could not parse module: {exc.msg}",
            )
        ]
    context = LintContext(
        path=display, module=module, source=source, tree=tree
    )
    findings: list[Finding] = []
    for rule in rules:
        if rule.repo_level or not rule.applies_to(module):
            continue
        findings.extend(rule.check(context))
    suppressions, problems = collect_suppressions(
        display, source, set(KNOWN_RULE_IDS)
    )
    findings = apply_suppressions(findings, suppressions)
    findings.extend(problems)
    return sort_findings(findings)


def lint_file(path: Path, rules: tuple[Rule, ...] = ALL_RULES) -> list[Finding]:
    source = path.read_text(encoding="utf-8")
    return lint_source(
        source, normalize_module(str(path)), path=str(path), rules=rules
    )


def lint_paths(
    paths: list[str | Path],
    *,
    include: tuple[str, ...] = (),
    exclude: tuple[str, ...] = (),
    repo_root: str | Path | None = None,
) -> list[Finding]:
    """Lint every python file under ``paths`` plus repo-level rules."""

    rules = select_rules(include, exclude)
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, rules))
    root = Path(repo_root) if repo_root is not None else Path.cwd()
    for rule in rules:
        if rule.repo_level:
            findings.extend(rule.scan_repo(root))
    return sort_findings(findings)


def active_findings(findings: list[Finding]) -> list[Finding]:
    return [finding for finding in findings if not finding.suppressed]
