"""repro.analysis — reprolint, the repo's AST-based invariant checker.

Replaces the seven CI grep gates with scope-aware rules and adds
invariants greps cannot express: lock discipline, deterministic
iteration on output paths, atomic-write discipline, and an exception
taxonomy for the runtime.  See README "Static analysis" for the rule
table and suppression syntax (``# repro: allow[rule-id] reason``).
"""

from repro.analysis.engine import (
    ALL_RULES,
    KNOWN_RULE_IDS,
    RULES_BY_ID,
    UnknownRuleError,
    active_findings,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    select_rules,
)
from repro.analysis.findings import (
    FORMATTERS,
    Finding,
    format_github,
    format_json,
    format_text,
    sort_findings,
)
from repro.analysis.rule import LintContext, Rule, normalize_module
from repro.analysis.suppress import (
    PARSE_ERROR_RULE_ID,
    SUPPRESSION_RULE_ID,
    Suppression,
    apply_suppressions,
    collect_suppressions,
)

__all__ = [
    "ALL_RULES",
    "FORMATTERS",
    "Finding",
    "KNOWN_RULE_IDS",
    "LintContext",
    "PARSE_ERROR_RULE_ID",
    "RULES_BY_ID",
    "Rule",
    "SUPPRESSION_RULE_ID",
    "Suppression",
    "UnknownRuleError",
    "active_findings",
    "apply_suppressions",
    "collect_suppressions",
    "format_github",
    "format_json",
    "format_text",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "normalize_module",
    "select_rules",
    "sort_findings",
]
