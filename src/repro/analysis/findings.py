"""Finding dataclass and output formatters for reprolint.

A :class:`Finding` pins one invariant violation to a ``file:line`` with the
rule id, a human message, and a fix hint.  Three render formats are
supported: ``text`` (terminal), ``json`` (machine consumption), and
``github`` (workflow error annotations).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One invariant violation (or suppression problem) at a source line."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    fix_hint: str = ""
    suppressed: bool = False
    suppress_reason: str = field(default="", compare=False)

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        payload = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }
        if self.fix_hint:
            payload["fix_hint"] = self.fix_hint
        if self.suppressed:
            payload["suppressed"] = True
            payload["suppress_reason"] = self.suppress_reason
        return payload


def sort_findings(findings: list[Finding]) -> list[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule_id))


def format_text(findings: list[Finding]) -> str:
    lines = []
    for finding in findings:
        tag = " (suppressed)" if finding.suppressed else ""
        lines.append(
            f"{finding.location}: [{finding.rule_id}]{tag} {finding.message}"
        )
        if finding.fix_hint:
            lines.append(f"    hint: {finding.fix_hint}")
    return "\n".join(lines)


def format_json(findings: list[Finding]) -> str:
    return json.dumps(
        {"findings": [finding.to_dict() for finding in findings],
         "count": sum(1 for finding in findings if not finding.suppressed)},
        indent=2,
        sort_keys=True,
    )


def _github_escape(value: str) -> str:
    # GitHub workflow commands terminate properties on these characters.
    return (
        value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def format_github(findings: list[Finding]) -> str:
    lines = []
    for finding in findings:
        message = finding.message
        if finding.fix_hint:
            message = f"{message} — {finding.fix_hint}"
        if finding.suppressed:
            message = f"(suppressed: {finding.suppress_reason}) {message}"
        lines.append(
            f"::error file={_github_escape(finding.path)},"
            f"line={finding.line},col={finding.col},"
            f"title={_github_escape(finding.rule_id)}::"
            f"{_github_escape(message)}"
        )
    return "\n".join(lines)


FORMATTERS = {
    "text": format_text,
    "json": format_json,
    "github": format_github,
}
