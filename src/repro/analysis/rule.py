"""Rule framework for reprolint.

A rule is a small object with an id, a one-line invariant summary, a
rationale (why the invariant exists — ported from the CI grep-gate
comments where applicable), and a ``check`` generator that walks a parsed
module and yields :class:`~repro.analysis.findings.Finding`s.

Rules scope themselves by *module path*: a repo-relative, ``src/``-stripped
path like ``repro/runtime/service.py`` or ``benchmarks/bench_fusion.py``.
``applies_to`` receives that path so a rule can target one file, one
subtree, or everything.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import PurePosixPath

from repro.analysis.findings import Finding


def normalize_module(path: str) -> str:
    """Map a filesystem path to the module path rules are scoped by.

    Strips any leading directories up to and including a ``src``
    component (``src/repro/x.py`` and ``/abs/repo/src/repro/x.py`` both
    become ``repro/x.py``); paths under ``benchmarks/`` or ``tests/``
    keep that anchor.  Falls back to the path unchanged.
    """

    parts = PurePosixPath(path.replace("\\", "/")).parts
    for anchor in ("src", "benchmarks", "tests"):
        if anchor in parts:
            index = parts.index(anchor)
            if anchor == "src":
                tail = parts[index + 1:]
            else:
                tail = parts[index:]
            if tail:
                return "/".join(tail)
    return "/".join(parts)


@dataclass(frozen=True)
class LintContext:
    """Everything a rule needs to check one module."""

    path: str
    module: str
    source: str
    tree: ast.Module


class Rule:
    """Base class for reprolint rules.

    Subclasses set ``id``/``summary``/``rationale``/``fix_hint`` and
    implement ``check``.  Repo-level rules (``repo_level = True``) skip
    per-file checking and implement ``scan_repo`` instead.
    """

    id: str = ""
    summary: str = ""
    rationale: str = ""
    fix_hint: str = ""
    repo_level: bool = False

    def applies_to(self, module: str) -> bool:
        return module.startswith("repro/")

    def check(self, context: LintContext) -> Iterator[Finding]:
        return iter(())

    def scan_repo(self, root) -> Iterator[Finding]:  # pragma: no cover - base
        return iter(())

    def finding(
        self,
        context: LintContext,
        node: ast.AST,
        message: str,
        *,
        fix_hint: str | None = None,
    ) -> Finding:
        return Finding(
            path=context.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.id,
            message=message,
            fix_hint=self.fix_hint if fix_hint is None else fix_hint,
        )


def docstring_constants(tree: ast.Module) -> set[int]:
    """Return ``id()``s of Constant nodes that are docstrings."""

    out: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(
            node,
            (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
        ):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                out.add(id(body[0].value))
    return out
