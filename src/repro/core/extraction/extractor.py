"""Applying the trained model to pages — Section 4.3 of the paper.

"In extraction, we apply the logistic regression model we learned to all
DOM nodes on each page of the website.  When we are able to identify the
'name' node on a page, we consider the rest of the extractions from this
webpage as objects and use the text in the topic node as the subject for
those extracted triples."

The extractor exposes two granularities:

* :meth:`extract_page` — thresholded triples for one page;
* :meth:`candidates_for_page` — every (node, predicate, confidence)
  candidate regardless of threshold, which lets the confidence-sweep
  experiments (Figure 6) re-threshold without re-scoring.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.clustering.templates import page_signature
from repro.core.config import CeresConfig
from repro.core.extraction.trainer import CeresModel
from repro.dom.node import TextNode
from repro.dom.parser import Document
from repro.kb.ontology import NAME_PREDICATE, OTHER_LABEL
from repro.runtime.cache import CacheStats, LRUCache
from repro.text.distance import jaccard

__all__ = ["Extraction", "PageCandidates", "CeresExtractor", "ClusterExtractorPool"]


@dataclass
class Extraction:
    """One extracted triple with its provenance and confidence."""

    subject: str
    predicate: str
    object: str
    confidence: float
    page_index: int
    node: TextNode
    #: Which model family produced the triple: ``"site"`` for a per-site
    #: template model, ``"transfer"`` for the cross-site global model
    #: (zero-shot fallback serving, :mod:`repro.transfer`).
    model: str = "site"


@dataclass
class PageCandidates:
    """All scored nodes of one page, before thresholding."""

    page_index: int
    subject: str | None  # text of the identified name node, if any
    name_confidence: float
    #: (node, predicate, confidence) for the argmax non-OTHER class of
    #: every node other than the name node.
    candidates: list[tuple[TextNode, str, float]]

    def extractions(self, threshold: float) -> list[Extraction]:
        """Thresholded triples (empty when no name node was identified)."""
        if self.subject is None or self.name_confidence < threshold:
            return []
        return [
            Extraction(self.subject, predicate, node.text.strip(), confidence,
                       self.page_index, node)
            for node, predicate, confidence in self.candidates
            if confidence >= threshold
        ]


class CeresExtractor:
    """Applies a :class:`CeresModel` to pages.

    Scoring goes through the model's batched, vocabulary-compiled engine
    (:mod:`repro.core.extraction.scoring`): every call — single page or
    batch — builds one CSR matrix over all scored nodes and does one
    matmul.  :meth:`legacy_candidates_for_page` keeps the original
    per-node chain as the equivalence oracle (tests and the hot-path
    benchmark diff the two).
    """

    def __init__(self, model: CeresModel, config: CeresConfig | None = None) -> None:
        self.model = model
        self.config = config or CeresConfig()
        labels = model.labels
        label_index = {label: i for i, label in enumerate(labels)}
        self._labels = labels
        self._name_column = label_index.get(NAME_PREDICATE)
        self._other_column = label_index.get(OTHER_LABEL)

    def _page_candidates(
        self, nodes: list[TextNode], probabilities: np.ndarray, page_index: int
    ) -> PageCandidates:
        """Candidate assembly shared by the batched and legacy paths.

        The name node is the field with the highest ``name`` probability;
        every other field contributes its argmax non-OTHER, non-name class
        as a candidate extraction.
        """
        if not nodes:
            return PageCandidates(page_index, None, 0.0, [])
        labels = self._labels

        subject: str | None = None
        name_confidence = 0.0
        name_position = -1
        name_column = self._name_column
        if name_column is not None:
            name_position = int(np.argmax(probabilities[:, name_column]))
            name_confidence = float(probabilities[name_position, name_column])
            subject = nodes[name_position].text.strip()

        other_column = self._other_column
        # One vectorized argmax for the page; per-row ties break to the
        # lowest column, exactly as the per-row np.argmax did.
        best_columns = probabilities.argmax(axis=1)
        candidates: list[tuple[TextNode, str, float]] = []
        for row, node in enumerate(nodes):
            if row == name_position:
                continue
            best_column = int(best_columns[row])
            if best_column == other_column or best_column == name_column:
                continue
            candidates.append(
                (node, labels[best_column], float(probabilities[row, best_column]))
            )
        return PageCandidates(page_index, subject, name_confidence, candidates)

    def candidates_batch(
        self, documents: Sequence[Document], page_indices: Sequence[int]
    ) -> list[PageCandidates]:
        """Batched scoring of ``documents``, labelled with ``page_indices``
        (callers batching across clusters pass the original positions)."""
        return [
            self._page_candidates(nodes, probabilities, page_index)
            for (nodes, probabilities), page_index in zip(
                self.model.score_pages(documents), page_indices
            )
        ]

    def candidates_for_page(
        self, document: Document, page_index: int = 0
    ) -> PageCandidates:
        """Score every text field of a page."""
        return self.candidates_batch([document], [page_index])[0]

    def legacy_candidates_for_page(
        self, document: Document, page_index: int = 0
    ) -> PageCandidates:
        """The original per-node scoring chain (feature dicts → vectorizer
        → per-page matmul) — the equivalence oracle for the batched
        engine.  Must produce bit-identical output to
        :meth:`candidates_for_page`."""
        nodes = [node for node in document.text_fields() if node.text.strip()]
        if not nodes:
            return PageCandidates(page_index, None, 0.0, [])
        probabilities = self.model.predict_proba_for_nodes(nodes, document)
        return self._page_candidates(nodes, probabilities, page_index)

    def extract_page(
        self, document: Document, page_index: int = 0, threshold: float | None = None
    ) -> list[Extraction]:
        """Thresholded extractions for one page."""
        if threshold is None:
            threshold = self.config.confidence_threshold
        return self.candidates_for_page(document, page_index).extractions(threshold)

    def extract(
        self, documents: list[Document], threshold: float | None = None
    ) -> list[Extraction]:
        """Thresholded extractions for a list of pages (one batched score)."""
        if threshold is None:
            threshold = self.config.confidence_threshold
        results: list[Extraction] = []
        for page in self.candidates(documents):
            results.extend(page.extractions(threshold))
        return results

    def candidates(self, documents: list[Document]) -> list[PageCandidates]:
        """Unthresholded candidates for a list of pages (Figure 6 sweeps)."""
        return self.candidates_batch(documents, range(len(documents)))


class ClusterExtractorPool:
    """One :class:`CeresExtractor` per modeled template cluster.

    Extraction assigns each page to the cluster whose leader signature is
    most Jaccard-similar and scores it with that cluster's model.  The
    pool builds every extractor once up front (instead of one per page)
    and memoizes the ``page_signature → cluster`` assignment, so repeated
    batches over same-template pages skip the similarity scan entirely.
    Both :meth:`repro.core.pipeline.CeresPipeline.extract` and the serving
    fast path (``repro.runtime.service.ExtractionService``) share it.
    """

    def __init__(
        self,
        clusters: Sequence[tuple[frozenset[str], CeresModel]],
        config: CeresConfig | None = None,
    ) -> None:
        """``clusters`` pairs each modeled cluster's leader signature with
        its trained model, in pipeline order (assignment tie-breaks keep
        that order, matching the original per-page loop)."""
        self.config = config or CeresConfig()
        self._signatures: list[frozenset[str]] = [sig for sig, _ in clusters]
        self._extractors: list[CeresExtractor] = [
            CeresExtractor(model, self.config) for _, model in clusters
        ]
        self._assignments: LRUCache[frozenset[str], int] = LRUCache(
            self.config.assignment_cache_size, name="cluster_assignment"
        )

    def __len__(self) -> int:
        return len(self._extractors)

    def __bool__(self) -> bool:
        return bool(self._extractors)

    @property
    def extractors(self) -> list[CeresExtractor]:
        return list(self._extractors)

    def assign(self, signature: frozenset[str]) -> int | None:
        """Index of the most similar cluster (memoized), or None if empty."""
        if not self._extractors:
            return None
        return self._assignments.get_or_create(
            signature,
            lambda: max(
                range(len(self._signatures)),
                key=lambda index: jaccard(signature, self._signatures[index]),
            ),
        )

    def extractor_for(self, document: Document) -> CeresExtractor | None:
        """The cached extractor for a page's nearest template cluster."""
        index = self.assign(page_signature(document))
        return None if index is None else self._extractors[index]

    def candidates_for_page(
        self, document: Document, page_index: int = 0
    ) -> PageCandidates:
        """Unthresholded candidates via the page's assigned cluster model."""
        extractor = self.extractor_for(document)
        if extractor is None:
            return PageCandidates(page_index, None, 0.0, [])
        return extractor.candidates_for_page(document, page_index)

    def candidates(self, documents: list[Document]) -> list[PageCandidates]:
        """Unthresholded candidates for a batch of pages.

        Pages are grouped by their assigned cluster and each group is
        scored with one batched call (one CSR matrix + one matmul per
        cluster model), then results are reassembled in input order —
        identical output to the per-page loop, a fraction of the cost.
        """
        if not self._extractors:
            return [
                PageCandidates(page_index, None, 0.0, [])
                for page_index in range(len(documents))
            ]
        if len(self._extractors) == 1:
            # Single modeled cluster: every page assigns to it regardless
            # of similarity — skip the signature traversal entirely.
            return self._extractors[0].candidates_batch(
                documents, range(len(documents))
            )
        groups: dict[int, list[int]] = {}
        for page_index, document in enumerate(documents):
            cluster = self.assign(page_signature(document))
            groups.setdefault(cluster, []).append(page_index)
        results: list[PageCandidates | None] = [None] * len(documents)
        for cluster, page_indices in groups.items():
            batch = self._extractors[cluster].candidates_batch(
                [documents[page_index] for page_index in page_indices],
                page_indices,
            )
            for page_index, page in zip(page_indices, batch):
                results[page_index] = page
        return results

    def extract(
        self, documents: list[Document], threshold: float | None = None
    ) -> list[Extraction]:
        """Thresholded extractions for a batch of pages."""
        if threshold is None:
            threshold = self.config.confidence_threshold
        results: list[Extraction] = []
        for page in self.candidates(documents):
            results.extend(page.extractions(threshold))
        return results

    def cache_stats(self) -> dict[str, CacheStats]:
        """Counters for this pool's caches.

        ``feature_registry`` merges the per-page registry caches of every
        cluster's model; ``cluster_assignment`` is the signature memo.
        Per-page state is evicted automatically (bounded LRUs keyed by
        ``Document.doc_id``) — no between-batch clearing is needed.
        """
        registry_stats = [
            extractor.model.feature_extractor.cache_stats()
            for extractor in self._extractors
        ]
        merged = CacheStats("feature_registry", 0, 0, 0, 0, 0)
        for stats in registry_stats:
            merged = merged.merged(stats, name="feature_registry")
        return {
            "feature_registry": merged,
            "cluster_assignment": self._assignments.stats(),
        }
