"""DOM node features — Section 4.2 of the paper.

Two feature families represent a text node:

* **Structural features** (from the Vertex project [17]): for the node's
  element, its ancestors, and the siblings of those ancestors (width 5 on
  either side), emit a 4-tuple feature for each of the HTML attributes
  ``tag``, ``class``, ``id``, ``itemprop``, ``itemtype``, ``property``:
  ``(attribute name, attribute value, levels of ancestry, sibling number)``.

* **Node text features**: strings that appear frequently across the site
  ("Director:", "Genre") are compiled at fit time; a classified node
  receives a feature for each frequent string found nearby, consisting of
  the string and the tree path from the node to the string's element.

Every feature name carries an explicit namespace prefix (see
:mod:`repro.ml.features`): tag-topology structural features are
``xfer:`` (they transfer across sites of a vertical — the ZeroShotCeres
observation), while attribute-value structural features and
frequent-string text features are ``site:`` (CSS classes, microdata
URLs, and the string lexicon are one site's private vocabulary).  The
cross-site global model (:mod:`repro.transfer`) trains on the ``xfer:``
namespace only; per-site models consume both.

Feature extraction is the hot loop of both training and extraction, so the
nearby-string search uses a per-page registry: each frequent-string node
registers itself on its first ``text_feature_height`` ancestors with the
downward tag path; a classified node then only inspects its own first
``text_feature_height`` ancestors.

Registries live in a bounded LRU keyed by ``Document.doc_id``
(``feature_registry_cache_size`` in the config), so long-lived serving
processes neither leak registries across batches nor risk a recycled
``id()`` handing one page's registry to another.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.core.config import CeresConfig
from repro.dom.node import ElementNode, TextNode
from repro.dom.parser import Document
from repro.runtime.cache import CacheStats, LRUCache

__all__ = ["NodeFeatureExtractor", "FeatureNameBatcher"]

FeatureDict = dict[str, float]

#: Safety valve for the cross-page caches of :class:`FeatureNameBatcher`;
#: template clusters converge to a handful of entries, pathological sites
#: just recompute.
_BATCHER_CACHE_LIMIT = 4096


class NodeFeatureExtractor:
    """Produces the feature dictionary for a DOM text node."""

    def __init__(self, config: CeresConfig | None = None) -> None:
        self.config = config or CeresConfig()
        self.frequent_strings: set[str] = set()
        self._page_registry: LRUCache[int, dict[int, list[tuple[str, str]]]] = (
            LRUCache(self.config.feature_registry_cache_size, name="feature_registry")
        )

    # -- fitting -----------------------------------------------------------

    def fit(self, documents: list[Document]) -> NodeFeatureExtractor:
        """Compile the site's frequent strings (node-text feature lexicon).

        A string qualifies when it occurs on at least
        ``frequent_string_min_fraction`` of pages and is at most
        ``max_frequent_string_length`` characters; the most widespread
        ``max_frequent_strings`` are kept.
        """
        config = self.config
        document_frequency: Counter[str] = Counter()
        for document in documents:
            page_strings = {
                node.text.strip()
                for node in document.text_fields()
                if 0 < len(node.text.strip()) <= config.max_frequent_string_length
            }
            document_frequency.update(page_strings)
        if not documents:
            return self
        min_pages = max(2, int(config.frequent_string_min_fraction * len(documents)))
        qualifying = [
            (count, text)
            for text, count in document_frequency.items()
            if count >= min_pages
        ]
        qualifying.sort(key=lambda pair: (-pair[0], pair[1]))
        self.frequent_strings = {
            text for _, text in qualifying[: config.max_frequent_strings]
        }
        return self

    # -- per-page registry for nearby frequent strings ---------------------

    def registry_for(self, document: Document) -> dict[int, list[tuple[str, str]]]:
        """Map ancestor-element id -> [(frequent string, downward path)].

        Each frequent-string occurrence registers itself on its enclosing
        element and ``text_feature_height`` further ancestors; the downward
        path records the tag chain from the ancestor to the string.  Both
        the legacy per-node path and the batched scorer
        (:mod:`repro.core.extraction.scoring`) read this registry.
        """
        registry = self._page_registry.get(document.doc_id)
        if registry is not None:
            return registry
        registry = defaultdict(list)
        height = self.config.text_feature_height
        for node in document.text_fields():
            text = node.text.strip()
            if text not in self.frequent_strings:
                continue
            down_path: list[str] = []
            element: ElementNode | None = node.parent
            level = 0
            while element is not None and level <= height:
                registry[id(element)].append((text, "/".join(reversed(down_path))))
                down_path.append(element.tag)
                element = element.parent
                level += 1
        registry = dict(registry)
        self._page_registry.put(document.doc_id, registry)
        return registry

    # -- feature extraction --------------------------------------------------

    def features(self, node: TextNode, document: Document) -> FeatureDict:
        """The full feature dictionary for one text node."""
        result: FeatureDict = {}
        self._structural_features(node, result)
        self._text_features(node, document, result)
        return result

    def _structural_features(self, node: TextNode, result: FeatureDict) -> None:
        """Vertex-style 4-tuple features over ancestors and their siblings."""
        config = self.config
        element: ElementNode | None = node.parent
        level = 0
        while element is not None and level <= config.struct_ancestor_levels:
            self._attribute_features(element, level, 0, result)
            parent = element.parent
            if parent is not None:
                siblings = parent.element_children()
                # Parse-time sibling position; the identity check preserves
                # the old scan's "not actually a child" fallback for
                # hand-assembled trees without the O(siblings) cost.
                position = element.element_index
                if position >= len(siblings) or siblings[position] is not element:
                    position = -1
                if position >= 0:
                    width = config.struct_sibling_width
                    for offset in range(-width, width + 1):
                        if offset == 0:
                            continue
                        sibling_index = position + offset
                        if 0 <= sibling_index < len(siblings):
                            self._attribute_features(
                                siblings[sibling_index], level, offset, result
                            )
            element = parent
            level += 1

    def _attribute_features(
        self, element: ElementNode, level: int, sibling: int, result: FeatureDict
    ) -> None:
        # Tag topology transfers across sites; attribute values are one
        # site's private vocabulary — hence the namespace split.
        result[f"xfer:s|tag|{element.tag}|{level}|{sibling}"] = 1.0
        for attribute in self.config.struct_attributes:
            value = element.attrs.get(attribute)
            if value:
                result[f"site:s|{attribute}|{value}|{level}|{sibling}"] = 1.0

    def _text_features(
        self, node: TextNode, document: Document, result: FeatureDict
    ) -> None:
        """Nearby frequent-string features: (string, path through the tree)."""
        if not self.frequent_strings:
            return
        registry = self.registry_for(document)
        element: ElementNode | None = node.parent
        ups = 0
        while element is not None and ups <= self.config.text_feature_height:
            for text, down_path in registry.get(id(element), ()):
                result[f"site:t|{text}|u{ups}|{down_path}"] = 1.0
            element = element.parent
            ups += 1

    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the per-page registry cache."""
        return self._page_registry.stats()

    def clear_page_cache(self) -> None:
        """Drop per-page registries immediately.

        Eviction is automatic (bounded LRU keyed by ``doc_id``); this
        remains for callers that want to release page memory eagerly,
        e.g. right before serializing a model.
        """
        self._page_registry.clear()


class FeatureNameBatcher:
    """Batched feature-*name* rows for training (the cold-path analogue of
    :class:`repro.core.extraction.scoring.BatchScorer`).

    Training cannot use the compiled scorer — the vocabulary it compiles
    does not exist until the vectorizer has been fitted — but it can
    avoid rebuilding feature names node by node.  A node's feature dict
    depends only on its *parent element*: structural features read the
    parent's ancestor chain and sibling windows, text features read the
    same chain against the page registry.  Template pages repeat those
    chains, so the batcher

    * fingerprints each element once per page (tag + the structural
      attribute values — exactly the inputs the name strings are built
      from);
    * caches each sibling window's rendered names per ancestry level
      across pages, keyed by the window's fingerprint signature;
    * caches whole ancestor chains by the identity of their (cached)
      window and suffix tuples, and whole rows by the identity of their
      struct and text parts — warm template pages resolve a node's entire
      name row with a few dict probes and **zero** f-string formatting.

    Rows are returned as tuples whose *name sets* equal the key sets of
    ``NodeFeatureExtractor.features`` for the same node (struct names are
    unique by construction; duplicate text registrations may repeat and
    are deduplicated by the vectorizer exactly as ``dict`` keys were).
    Identical template rows are returned as the *same object*, which lets
    :meth:`repro.ml.features.FeatureVectorizer.transform_name_rows` sort
    each distinct row once.
    """

    def __init__(self, extractor: NodeFeatureExtractor) -> None:
        self.extractor = extractor
        config = extractor.config
        self._levels = config.struct_ancestor_levels
        self._width = config.struct_sibling_width
        self._attributes = config.struct_attributes
        self._height = config.text_feature_height
        # -- cross-page caches (template-convergent) ----------------------
        #: (tag, attr values...) -> interned fingerprint id; the parallel
        #: list is the inverse (ids are assigned densely).
        self._fingerprints: dict[tuple, int] = {}
        self._fingerprint_keys: list[tuple] = []
        #: window signature (self offset, member fps...) -> interned id,
        #: with the parallel inverse list for rendering.
        self._window_sigs: dict[tuple, int] = {}
        self._window_sig_keys: list[tuple] = []
        #: (window sig id, level) -> rendered window names tuple.
        self._window_names: dict[tuple[int, int], tuple[str, ...]] = {}
        #: (id(window names), id(suffix names)) -> combined chain tuple;
        #: values pin the keyed tuples so their ids stay valid.
        self._chain_cache: dict[tuple[int, int], tuple] = {}
        #: text-name tuple (by value) -> the shared interned tuple.
        self._text_intern: dict[tuple[str, ...], tuple[str, ...]] = {}
        #: (id(struct row), id(text row)) -> (full row, struct, text);
        #: the value pins the keyed tuples so their ids stay valid even
        #: after a guard clear drops the upstream caches that held them.
        self._row_cache: dict[tuple[int, int], tuple] = {}
        # -- per-page scratch ---------------------------------------------
        self._page_key: int | None = None
        self._page_fps: dict[int, int] = {}
        self._page_sigs: dict[int, int] = {}
        self._page_chains: dict[int, list] = {}
        self._page_rows: dict[int, tuple[str, ...]] = {}
        self._registry: dict[int, list[tuple[str, str]]] = {}

    # -- public API --------------------------------------------------------

    def row_for(self, node: TextNode, document: Document) -> tuple[str, ...]:
        """The feature-name row of ``node`` (shared tuple for template twins)."""
        if self._page_key != document.doc_id:
            self._page_key = document.doc_id
            self._page_fps = {}
            self._page_sigs = {}
            self._page_chains = {}
            self._page_rows = {}
            self._registry = (
                self.extractor.registry_for(document)
                if self.extractor.frequent_strings
                else {}
            )
        parent = node.parent
        if parent is None:
            return ()
        cached = self._page_rows.get(id(parent))
        if cached is not None:
            return cached
        struct = self._chain_names(parent, 0)
        text = self._text_names(parent)
        if text:
            row_key = (id(struct), id(text))
            entry = self._row_cache.get(row_key)
            if entry is None:
                self._cache_guard()
                # struct/text ride along in the value to pin the key ids.
                row = struct + text
                self._row_cache[row_key] = (row, struct, text)
            else:
                row = entry[0]
        else:
            row = struct
        self._page_rows[id(parent)] = row
        return row

    # -- structural names --------------------------------------------------

    def _fingerprint(self, element: ElementNode) -> int:
        found = self._page_fps.get(id(element))
        if found is not None:
            return found
        attrs = element.attrs
        key = (element.tag, *(attrs.get(a) or None for a in self._attributes))
        fp = self._fingerprints.get(key)
        if fp is None:
            fp = len(self._fingerprints)
            self._fingerprints[key] = fp
            self._fingerprint_keys.append(key)
        self._page_fps[id(element)] = fp
        return fp

    def _window_sig(self, element: ElementNode) -> int:
        """Interned signature of the element's sibling window.

        Mirrors the legacy scan exactly: no parent or a stale
        ``element_index`` (hand-assembled trees) collapses the window to
        the element alone.  Memoized per element per page — chains from
        different starting depths revisit the same ancestors at different
        levels, and the window itself is level-independent.
        """
        cached = self._page_sigs.get(id(element))
        if cached is not None:
            return cached
        parent = element.parent
        position = element.element_index
        if parent is not None:
            siblings = parent.element_children()
            if position >= len(siblings) or siblings[position] is not element:
                siblings = (element,)
                position = 0
        else:
            siblings = (element,)
            position = 0
        width = self._width
        low = position - width
        if low < 0:
            low = 0
        high = position + width + 1
        if high > len(siblings):
            high = len(siblings)
        fingerprint = self._fingerprint
        key = (
            position - low,
            *(fingerprint(siblings[i]) for i in range(low, high)),
        )
        sig = self._window_sigs.get(key)
        if sig is None:
            sig = len(self._window_sigs)
            self._window_sigs[key] = sig
            # Remember the key for rendering (sig -> key via parallel list).
            self._window_sig_keys.append(key)
        self._page_sigs[id(element)] = sig
        return sig

    def _render_window(self, sig: int, level: int) -> tuple[str, ...]:
        """Names of one window at one ancestry level (cached cross-page)."""
        cached = self._window_names.get((sig, level))
        if cached is not None:
            return cached
        key = self._window_sig_keys[sig]
        self_offset = key[0]
        names: list[str] = []
        fingerprint_keys = self._fingerprint_keys
        for index, fp in enumerate(key[1:]):
            offset = index - self_offset
            tag, *values = fingerprint_keys[fp]
            names.append(f"xfer:s|tag|{tag}|{level}|{offset}")
            for attribute, value in zip(self._attributes, values):
                if value:
                    names.append(f"site:s|{attribute}|{value}|{level}|{offset}")
        result = tuple(names)
        self._cache_guard()
        self._window_names[(sig, level)] = result
        return result

    def _chain_names(self, element: ElementNode, level: int) -> tuple[str, ...]:
        """Rendered names of the ancestor chain from ``element`` at ``level``."""
        slots = self._page_chains.get(id(element))
        if slots is None:
            slots = [None] * (self._levels + 1)
            self._page_chains[id(element)] = slots
        cached = slots[level]
        if cached is not None:
            return cached
        window = self._render_window(self._window_sig(element), level)
        parent = element.parent
        if level < self._levels and parent is not None:
            suffix = self._chain_names(parent, level + 1)
            chain_key = (id(window), id(suffix))
            chain = self._chain_cache.get(chain_key)
            if chain is None:
                self._cache_guard()
                # The value tuple holds window/suffix refs via concatenation
                # sources; pin them explicitly to keep the key ids valid.
                chain = window + suffix
                self._chain_cache[chain_key] = (chain, window, suffix)
            else:
                chain = chain[0]
        else:
            chain = window
        slots[level] = chain
        return chain

    # -- text names --------------------------------------------------------

    def _text_names(self, parent: ElementNode) -> tuple[str, ...]:
        """Nearby-frequent-string names (interned tuple, shared by value)."""
        registry = self._registry
        if not registry:
            return ()
        names: list[str] = []
        element: ElementNode | None = parent
        ups = 0
        height = self._height
        while element is not None and ups <= height:
            for text, down_path in registry.get(id(element), ()):
                names.append(f"site:t|{text}|u{ups}|{down_path}")
            element = element.parent
            ups += 1
        if not names:
            return ()
        key = tuple(names)
        interned = self._text_intern.get(key)
        if interned is None:
            self._cache_guard()
            self._text_intern[key] = key
            interned = key
        return interned

    # -- bookkeeping -------------------------------------------------------

    def _cache_guard(self) -> None:
        """Bound the cross-page caches (pathological sites only).

        Cleared together: chain and row keys embed ids of tuples kept
        alive by the upstream caches, so a partial clear could let a
        recycled id alias a stale entry.
        """
        if (
            len(self._window_names) >= _BATCHER_CACHE_LIMIT
            or len(self._chain_cache) >= _BATCHER_CACHE_LIMIT
            or len(self._text_intern) >= _BATCHER_CACHE_LIMIT
            or len(self._row_cache) >= _BATCHER_CACHE_LIMIT
        ):
            self._window_names.clear()
            self._chain_cache.clear()
            self._text_intern.clear()
            self._row_cache.clear()
            self._page_chains.clear()
            self._page_rows.clear()
