"""DOM node features — Section 4.2 of the paper.

Two feature families represent a text node:

* **Structural features** (from the Vertex project [17]): for the node's
  element, its ancestors, and the siblings of those ancestors (width 5 on
  either side), emit a 4-tuple feature for each of the HTML attributes
  ``tag``, ``class``, ``id``, ``itemprop``, ``itemtype``, ``property``:
  ``(attribute name, attribute value, levels of ancestry, sibling number)``.

* **Node text features**: strings that appear frequently across the site
  ("Director:", "Genre") are compiled at fit time; a classified node
  receives a feature for each frequent string found nearby, consisting of
  the string and the tree path from the node to the string's element.

Feature extraction is the hot loop of both training and extraction, so the
nearby-string search uses a per-page registry: each frequent-string node
registers itself on its first ``text_feature_height`` ancestors with the
downward tag path; a classified node then only inspects its own first
``text_feature_height`` ancestors.

Registries live in a bounded LRU keyed by ``Document.doc_id``
(``feature_registry_cache_size`` in the config), so long-lived serving
processes neither leak registries across batches nor risk a recycled
``id()`` handing one page's registry to another.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.core.config import CeresConfig
from repro.dom.node import ElementNode, TextNode
from repro.dom.parser import Document
from repro.runtime.cache import CacheStats, LRUCache

__all__ = ["NodeFeatureExtractor"]

FeatureDict = dict[str, float]


class NodeFeatureExtractor:
    """Produces the feature dictionary for a DOM text node."""

    def __init__(self, config: CeresConfig | None = None) -> None:
        self.config = config or CeresConfig()
        self.frequent_strings: set[str] = set()
        self._page_registry: LRUCache[int, dict[int, list[tuple[str, str]]]] = (
            LRUCache(self.config.feature_registry_cache_size, name="feature_registry")
        )

    # -- fitting -----------------------------------------------------------

    def fit(self, documents: list[Document]) -> NodeFeatureExtractor:
        """Compile the site's frequent strings (node-text feature lexicon).

        A string qualifies when it occurs on at least
        ``frequent_string_min_fraction`` of pages and is at most
        ``max_frequent_string_length`` characters; the most widespread
        ``max_frequent_strings`` are kept.
        """
        config = self.config
        document_frequency: Counter[str] = Counter()
        for document in documents:
            page_strings = {
                node.text.strip()
                for node in document.text_fields()
                if 0 < len(node.text.strip()) <= config.max_frequent_string_length
            }
            document_frequency.update(page_strings)
        if not documents:
            return self
        min_pages = max(2, int(config.frequent_string_min_fraction * len(documents)))
        qualifying = [
            (count, text)
            for text, count in document_frequency.items()
            if count >= min_pages
        ]
        qualifying.sort(key=lambda pair: (-pair[0], pair[1]))
        self.frequent_strings = {
            text for _, text in qualifying[: config.max_frequent_strings]
        }
        return self

    # -- per-page registry for nearby frequent strings ---------------------

    def registry_for(self, document: Document) -> dict[int, list[tuple[str, str]]]:
        """Map ancestor-element id -> [(frequent string, downward path)].

        Each frequent-string occurrence registers itself on its enclosing
        element and ``text_feature_height`` further ancestors; the downward
        path records the tag chain from the ancestor to the string.  Both
        the legacy per-node path and the batched scorer
        (:mod:`repro.core.extraction.scoring`) read this registry.
        """
        registry = self._page_registry.get(document.doc_id)
        if registry is not None:
            return registry
        registry = defaultdict(list)
        height = self.config.text_feature_height
        for node in document.text_fields():
            text = node.text.strip()
            if text not in self.frequent_strings:
                continue
            down_path: list[str] = []
            element: ElementNode | None = node.parent
            level = 0
            while element is not None and level <= height:
                registry[id(element)].append((text, "/".join(reversed(down_path))))
                down_path.append(element.tag)
                element = element.parent
                level += 1
        registry = dict(registry)
        self._page_registry.put(document.doc_id, registry)
        return registry

    # -- feature extraction --------------------------------------------------

    def features(self, node: TextNode, document: Document) -> FeatureDict:
        """The full feature dictionary for one text node."""
        result: FeatureDict = {}
        self._structural_features(node, result)
        self._text_features(node, document, result)
        return result

    def _structural_features(self, node: TextNode, result: FeatureDict) -> None:
        """Vertex-style 4-tuple features over ancestors and their siblings."""
        config = self.config
        element: ElementNode | None = node.parent
        level = 0
        while element is not None and level <= config.struct_ancestor_levels:
            self._attribute_features(element, level, 0, result)
            parent = element.parent
            if parent is not None:
                siblings = parent.element_children()
                # Parse-time sibling position; the identity check preserves
                # the old scan's "not actually a child" fallback for
                # hand-assembled trees without the O(siblings) cost.
                position = element.element_index
                if position >= len(siblings) or siblings[position] is not element:
                    position = -1
                if position >= 0:
                    width = config.struct_sibling_width
                    for offset in range(-width, width + 1):
                        if offset == 0:
                            continue
                        sibling_index = position + offset
                        if 0 <= sibling_index < len(siblings):
                            self._attribute_features(
                                siblings[sibling_index], level, offset, result
                            )
            element = parent
            level += 1

    def _attribute_features(
        self, element: ElementNode, level: int, sibling: int, result: FeatureDict
    ) -> None:
        result[f"s|tag|{element.tag}|{level}|{sibling}"] = 1.0
        for attribute in self.config.struct_attributes:
            value = element.attrs.get(attribute)
            if value:
                result[f"s|{attribute}|{value}|{level}|{sibling}"] = 1.0

    def _text_features(
        self, node: TextNode, document: Document, result: FeatureDict
    ) -> None:
        """Nearby frequent-string features: (string, path through the tree)."""
        if not self.frequent_strings:
            return
        registry = self.registry_for(document)
        element: ElementNode | None = node.parent
        ups = 0
        while element is not None and ups <= self.config.text_feature_height:
            for text, down_path in registry.get(id(element), ()):
                result[f"t|{text}|u{ups}|{down_path}"] = 1.0
            element = element.parent
            ups += 1

    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the per-page registry cache."""
        return self._page_registry.stats()

    def clear_page_cache(self) -> None:
        """Drop per-page registries immediately.

        Eviction is automatic (bounded LRU keyed by ``doc_id``); this
        remains for callers that want to release page memory eagerly,
        e.g. right before serializing a model.
        """
        self._page_registry.clear()
