"""Batched, vocabulary-compiled node scoring — the extraction hot path.

The legacy chain scores one node at a time: build a ``dict[str, float]``
of f-string feature names, hash every name into the vectorizer's
``vocabulary_``, assemble a one-page CSR matrix, and run one small
matmul per page.  At corpus scale (the paper applies the classifier "to
all DOM nodes on each page of the website") almost all of that work is
redundant:

* structural features depend only on the node's *ancestor chain* — every
  text node under the same element shares them, and every node in the
  same subtree shares the chain above its parent — and the 4-tuple name
  strings exist only to be hashed into ``vocabulary_`` and thrown away;
* the vocabulary is fixed at train time, so the ``feature name → column``
  mapping can be compiled once into direct lookups;
* per-page matmuls waste the classifier's vectorization — one matrix
  over *all* nodes of *all* pages in a batch does the same math in a
  single pass.

:class:`BatchScorer` exploits all three:

* ``vocabulary_`` is compiled into ``(attribute, value) → {packed
  (level, sibling): column}`` and ``(string, path) → {ups: column}``
  lookups; packed positions are plain ints, so the hot loop hashes no
  strings and allocates no tuples;
* each element's position dicts are merged into one ``packed position →
  columns`` dict, cached across pages keyed by the identity of the
  compiled dicts (templated sites repeat the same attribute sets on
  every page);
* sibling-window and ancestor-chain contributions are memoized per
  ``(element, level)`` within a page, so shared ancestors are processed
  once per subtree, not once per node;
* all rows land in one CSR matrix scored by a single ``predict_proba``.

Output is bit-identical to the legacy per-node path (which remains in
``CeresModel.predict_proba_for_nodes`` as the equivalence oracle): both
paths produce the same canonical CSR matrix — sorted, duplicate-free
column indices with unit values — so every downstream float is computed
by the same operations in the same order.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Sequence

import numpy as np
import scipy.sparse as sp

from repro import obs
from repro.dom.node import ElementNode, TextNode
from repro.dom.parser import Document

if TYPE_CHECKING:  # pragma: no cover — import cycle guard (trainer imports us)
    from repro.core.extraction.trainer import CeresModel

__all__ = ["BatchScorer", "PageScores", "compile_vocabulary"]

#: Per-page scoring result: the scored text nodes and their class
#: probabilities (rows aligned with the node list).
PageScores = tuple[list[TextNode], np.ndarray]

#: Compiled structural lookup: ``(attribute, value) → {packed position:
#: column}``.  The attribute ``"tag"`` covers the tag-name feature;
#: positions are packed as ``level * (2 * width + 1) + sibling + width``.
StructLookup = dict[tuple[str, str], dict[int, int]]
#: Compiled nearby-text lookup: ``(string, down path) → {ups: column}``.
TextLookup = dict[tuple[str, str], dict[int, int]]

#: Shared immutable sentinels for elements contributing nothing.
_NO_POSITIONS: dict[int, tuple[int, ...]] = {}
_NO_COLUMNS: list[int] = []

#: Safety valve for the cross-page merged-positions cache; sites with
#: pathologically many distinct attribute combinations just recompute.
_MERGED_CACHE_LIMIT = 4096

#: Scratch-record layout (``ElementNode._scoring``): the pass token, the
#: element's merged positions, its window target dicts and identity key
#: (level-independent: the sibling window is the same at every ancestry
#: level), one chain slot per ancestry level, one text slot per ups
#: value.
_RECORD_MERGED = 1
_RECORD_WINDOW_DICTS = 2
_RECORD_WINDOW_KEY = 3
_RECORD_CHAINS = 4


def compile_vocabulary(
    vocabulary: dict[str, int],
    levels: int = 0,
    width: int = 0,
) -> tuple[StructLookup, TextLookup]:
    """Invert the vectorizer's feature names into direct column lookups.

    Feature names are namespaced (see :mod:`repro.ml.features`):
    ``xfer:s|tag|{tag}|{level}|{sibling}`` for tag topology,
    ``site:s|{attr}|{value}|{level}|{sibling}`` for attribute values, and
    ``site:t|{text}|u{ups}|{down_path}`` for nearby frequent strings.
    Attribute names, levels, siblings, ups tokens, and down paths (tag
    names joined by ``/``) never contain ``|``, so splitting the
    fixed-position fields off the ends recovers the original tuple
    exactly even when ``value``/``text`` themselves contain pipes.
    Names that don't parse — wrong namespace for their family, or a
    level/sibling outside the ``levels``/``width`` window the scorer
    probes — are skipped: the hot loop could never generate them,
    exactly as the legacy path could never generate their names.
    """
    span = 2 * width + 1
    struct: StructLookup = {}
    text: TextLookup = {}
    for name, column in vocabulary.items():
        if name.startswith("xfer:s|tag|") or name.startswith("site:s|"):
            body = name[11:] if name[0] == "x" else name[7:]
            try:
                if name[0] == "x":
                    attribute, rest = "tag", body
                else:
                    attribute, rest = body.split("|", 1)
                value, level_text, sibling_text = rest.rsplit("|", 2)
                level = int(level_text)
                sibling = int(sibling_text)
            except ValueError:
                continue
            # The site: structural family never carries the tag attribute
            # (tags live in xfer:); a hand-built name claiming otherwise
            # could never be generated, so it is skipped like any other
            # unparseable name.
            if attribute == "tag" and name[0] != "x":
                continue
            if not (0 <= level <= levels and -width <= sibling <= width):
                continue
            packed = level * span + sibling + width
            struct.setdefault((attribute, value), {})[packed] = column
        elif name.startswith("site:t|"):
            head, _, down_path = name.rpartition("|")
            head, _, ups_token = head.rpartition("|")
            if len(head) < 7 or not ups_token.startswith("u"):
                continue
            try:
                ups = int(ups_token[1:])
            except ValueError:
                continue
            text.setdefault((head[7:], down_path), {})[ups] = column
    return struct, text


class BatchScorer:
    """Scores batches of pages against one trained :class:`CeresModel`."""

    def __init__(self, model: CeresModel) -> None:
        extractor = model.feature_extractor
        config = extractor.config
        self._feature_extractor = extractor
        self._classifier = model.classifier
        self._n_features = model.vectorizer.n_features
        self._levels = config.struct_ancestor_levels
        self._width = config.struct_sibling_width
        self._span = 2 * self._width + 1
        self._attributes = config.struct_attributes
        self._height = config.text_feature_height
        self._struct, self._text = compile_vocabulary(
            model.vectorizer.vocabulary_, self._levels, self._width
        )
        self._text_base = _RECORD_CHAINS + self._levels + 1
        self._record_size = self._text_base + self._height + 1
        #: Cross-page caches.  Template pages repeat the same elements,
        #: windows, and ancestor chains on every page, so each converges
        #: to one entry per distinct template position and warm pages
        #: resolve structural features almost entirely by cache hits:
        #:
        #: * ``_element_merged``: attribute fingerprint → merged ``{packed
        #:   position: (columns,)}`` dict for one element;
        #: * ``_merged_cache``: identity of an element's compiled position
        #:   dicts → the same merged dict (fingerprint-miss fallback);
        #: * ``_window_caches[level]``: (window shape, merged-dict
        #:   identities) → sorted window columns at that level;
        #: * ``_chain_cache``: (window identity, suffix identity) → sorted
        #:   chain columns.
        #:
        #: Identity keys stay valid because every cache value holds strong
        #: references to the objects whose ids appear in its key.
        self._element_merged: dict[tuple, dict[int, tuple[int, ...]]] = {}
        self._merged_cache: dict[tuple[int, ...], dict[int, tuple[int, ...]]] = {}
        self._window_caches: list[dict[tuple, tuple[list[int], list]]] = [
            {} for _ in range(self._levels + 1)
        ]
        self._chain_cache: dict[
            tuple[int, int], tuple[list[int], list[int], list[int]]
        ] = {}
        #: (ups, ups-dict identities) → canonical nearby-text columns for
        #: one (element, ups) contribution.
        self._text_part_cache: dict[tuple, tuple[list[int], list]] = {}
        #: (chain identity, text-part identities) → the node's finished
        #: row as an ``array('i')`` — warm template pages append rows to
        #: the CSR buffer with a single C-level copy, no sort, no
        #: per-int conversion.
        self._row_cache: dict[tuple, tuple[array, list, tuple]] = {}

    # -- public API --------------------------------------------------------

    def score_pages(self, documents: Sequence[Document]) -> list[PageScores]:
        """Score every text field of every page with one matrix multiply.

        Returns one ``(nodes, probabilities)`` pair per document, in
        order; pages without text fields get an empty node list and a
        ``(0, n_classes)`` probability block.
        """
        # The registry is resolved per call (not per construction) so a
        # scorer built before obs.enable() still reports; when off, the
        # disabled singleton makes every record below a no-op.
        registry = obs.metrics()
        # C-backed growable buffers: row column indices and per-row
        # lengths; turned into the CSR arrays with zero-copy views.
        indices = array("i")
        lengths = array("i")
        page_nodes: list[list[TextNode]] = []
        with registry.timer("scoring.csr_build_seconds"):
            for document in documents:
                # text_fields() already excludes whitespace-only nodes.
                nodes = document.text_fields()
                page_nodes.append(nodes)
                if nodes:
                    self._page_rows(nodes, indices, lengths)
            matrix = self._assemble(indices, lengths)
        with registry.timer("scoring.predict_seconds"):
            probabilities = self._classifier.predict_proba(matrix)
        registry.inc("scoring.batches")
        registry.inc("scoring.pages", len(documents))
        registry.inc("scoring.nodes", len(lengths))
        results: list[PageScores] = []
        offset = 0
        for nodes in page_nodes:
            results.append((nodes, probabilities[offset : offset + len(nodes)]))
            offset += len(nodes)
        return results

    # -- CSR assembly ------------------------------------------------------

    def _assemble(self, indices: array, lengths: array) -> sp.csr_matrix:
        """One CSR matrix over all scored nodes; rows hold sorted unique
        column indices with unit values (the canonical layout the legacy
        vectorizer emits)."""
        n_rows = len(lengths)
        indptr = np.zeros(n_rows + 1, dtype=np.int32)
        if n_rows:
            np.cumsum(np.frombuffer(lengths, dtype=np.int32), out=indptr[1:])
        column_indices = (
            np.frombuffer(indices, dtype=np.int32)
            if indices
            else np.empty(0, dtype=np.int32)
        )
        matrix = sp.csr_matrix(
            (np.ones(len(column_indices), dtype=np.float64), column_indices, indptr),
            shape=(n_rows, self._n_features),
        )
        matrix.has_sorted_indices = True
        return matrix

    # -- per-page scoring --------------------------------------------------

    def _page_rows(
        self, nodes: list[TextNode], indices: array, lengths: array
    ) -> None:
        """Append one sorted column-index row per node to the buffers.

        Per-pass element state lives in a token-validated scratch record
        on each :class:`ElementNode` (``_scoring``), so the hot loops do
        attribute reads instead of hashing ``id()`` keys; a fresh token
        per call invalidates every record from earlier passes.  Rows are
        duplicate-free by construction — structural columns are unique
        per window position, text columns carry their ups in the compiled
        key, and the two families occupy disjoint vocabulary prefixes —
        matching the legacy path's unique dict keys.
        """
        text_map = self._text_map(nodes) if self._text else None
        token: list = []  # unique object per scoring pass
        extend_indices = indices.extend
        append_length = lengths.append
        row_cache = self._row_cache
        chain_slot = _RECORD_CHAINS
        for node in nodes:
            parent = node.parent
            if parent is None:
                struct_columns = _NO_COLUMNS
            else:
                record = parent._scoring
                if record is None or record[0] is not token:
                    record = self._element_record(parent, token)
                struct_columns = record[chain_slot]
                if struct_columns is None:
                    struct_columns = self._chain_columns(parent, 0, token)
            if text_map is not None:
                parts = self._text_parts(node, text_map, token)
                row_key = (id(struct_columns), *map(id, parts))
            else:
                parts = ()
                row_key = (id(struct_columns),)
            entry = row_cache.get(row_key)
            if entry is None:
                row = list(struct_columns)
                for part in parts:
                    row += part
                row.sort()
                self._cache_guard()
                # struct/parts ride along to pin the ids in the key.
                entry = (array("i", row), struct_columns, tuple(parts))
                row_cache[row_key] = entry
            row_array = entry[0]
            extend_indices(row_array)
            append_length(len(row_array))

    def _element_record(self, element: ElementNode, token: list) -> list:
        """Fresh scratch record for one element in one scoring pass:
        ``[token, merged positions, window dicts, window key, chains per
        level..., text columns per ups...]``.  The window fields resolve
        lazily (window-target-only elements never need their own)."""
        record = [None] * self._record_size
        record[0] = token
        record[_RECORD_MERGED] = self._merged_positions(element)
        element._scoring = record
        return record

    def _resolve_window(
        self, element: ElementNode, record: list, token: list
    ) -> tuple:
        """Resolve the element's sibling window once per pass: the merged
        position dicts of every target (the element itself is offset 0)
        and the identity key ``(left_count, *dict ids)`` shared by all
        ancestry levels."""
        width = self._width
        parent = element.parent
        position = element.element_index
        if parent is not None:
            siblings = parent._element_children
            if position >= len(siblings) or siblings[position] is not element:
                # Hand-assembled node; matches the legacy scan's
                # ValueError fallback (self features only).
                siblings = (element,)
                position = 0
        else:
            siblings = (element,)
            position = 0
        low = position - width
        if low < 0:
            low = 0
        high = position + width + 1
        if high > len(siblings):
            high = len(siblings)
        merged_dicts: list[dict[int, tuple[int, ...]]] = []
        append_merged = merged_dicts.append
        for index in range(low, high):
            target = siblings[index]
            target_record = target._scoring
            if target_record is None or target_record[0] is not token:
                target_record = self._element_record(target, token)
            append_merged(target_record[_RECORD_MERGED])
        record[_RECORD_WINDOW_DICTS] = merged_dicts
        record[_RECORD_WINDOW_KEY] = window_key = (
            position - low,
            *map(id, merged_dicts),
        )
        return window_key

    # -- structural features -----------------------------------------------

    def _chain_columns(
        self, element: ElementNode, level: int, token: list
    ) -> list[int]:
        """Sorted columns of the ancestor chain from ``element`` upward,
        with ``element`` sitting at ``level``.

        Memoized per ``(element, level)`` within the pass, and across
        pages by the identities of the (cached) window and suffix lists —
        warm template pages never re-merge or re-sort a chain.  Returned
        lists are shared; callers must not mutate them.
        """
        record = element._scoring
        if record is None or record[0] is not token:
            record = self._element_record(element, token)
        slot = _RECORD_CHAINS + level
        cached = record[slot]
        if cached is not None:
            return cached
        parent = element.parent
        # -- the element's sibling window at this level.  The window's
        # targets are level-independent, so they are resolved once per
        # element per pass; each level's columns are cached across pages
        # by the targets' merged-dict identities, so warm template pages
        # pay one tuple lookup instead of probing every position.
        window_key = record[_RECORD_WINDOW_KEY]
        if window_key is None:
            window_key = self._resolve_window(element, record, token)
        window_entry = self._window_caches[level].get(window_key)
        if window_entry is not None:
            window = window_entry[0]
        else:
            merged_dicts = record[_RECORD_WINDOW_DICTS]
            window = []
            extend_window = window.extend
            # pos = level * span + (index - position) + width; the
            # window's first target sits at offset -left_count.
            packed = level * self._span + self._width - window_key[0]
            for merged in merged_dicts:
                if merged:
                    found = merged.get(packed)
                    if found is not None:
                        extend_window(found)
                packed += 1
            window.sort()
            self._cache_guard()
            # merged_dicts rides along to pin the ids in the key.
            self._window_caches[level][window_key] = (window, merged_dicts)

        if level < self._levels and parent is not None:
            suffix = self._chain_columns(parent, level + 1, token)
            chain_key = (id(window), id(suffix))
            entry = self._chain_cache.get(chain_key)
            if entry is None:
                combined = window + suffix
                combined.sort()
                # The value keeps window/suffix alive so the ids in the
                # key can never be recycled while the entry exists.
                self._cache_guard()
                self._chain_cache[chain_key] = entry = (combined, window, suffix)
            columns = entry[0]
        else:
            columns = window
        record[slot] = columns
        return columns

    def _merged_positions(
        self, element: ElementNode
    ) -> dict[int, tuple[int, ...]]:
        """One ``{packed position: columns}`` dict for an element.

        The element's attribute fingerprint identifies the result, and
        template pages repeat the same fingerprints on every page — so
        the resolution against the compiled vocabulary and the merge are
        each computed once per distinct template element.
        """
        attrs = element.attrs
        fingerprint = (element.tag, *map(attrs.get, self._attributes))
        merged = self._element_merged.get(fingerprint)
        if merged is not None:
            return merged
        struct_get = self._struct.get
        found = struct_get(("tag", element.tag))
        dicts = [] if found is None else [found]
        for attribute in self._attributes:
            value = attrs.get(attribute)
            if value:
                found = struct_get((attribute, value))
                if found is not None:
                    dicts.append(found)
        if not dicts:
            merged = _NO_POSITIONS
        else:
            cache_key = tuple(map(id, dicts))
            merged = self._merged_cache.get(cache_key)
            if merged is None:
                merged = {}
                for positions in dicts:
                    for packed, column in positions.items():
                        existing = merged.get(packed)
                        merged[packed] = (
                            (column,) if existing is None else existing + (column,)
                        )
                self._cache_guard()
                self._merged_cache[cache_key] = merged
        self._element_merged[fingerprint] = merged
        return merged

    def _cache_guard(self) -> None:
        """Bound the cross-page caches (pathological sites only).

        All four are cleared together: window/chain keys embed ids of
        objects kept alive by the upstream caches and cache values, so a
        partial clear could let a recycled id alias a stale entry.
        """
        if (
            len(self._element_merged) >= _MERGED_CACHE_LIMIT
            or len(self._merged_cache) >= _MERGED_CACHE_LIMIT
            or len(self._chain_cache) >= _MERGED_CACHE_LIMIT
            or len(self._text_part_cache) >= _MERGED_CACHE_LIMIT
            or len(self._row_cache) >= _MERGED_CACHE_LIMIT
            or any(
                len(cache) >= _MERGED_CACHE_LIMIT
                for cache in self._window_caches
            )
        ):
            self._element_merged.clear()
            self._merged_cache.clear()
            self._chain_cache.clear()
            self._text_part_cache.clear()
            self._row_cache.clear()
            for cache in self._window_caches:
                cache.clear()

    # -- nearby-text features ----------------------------------------------

    def _text_map(
        self, nodes: list[TextNode]
    ) -> dict[int, list[dict[int, int]]]:
        """id(ancestor element) → compiled ups→column dicts of the
        frequent strings registered on it.

        The single-pass equivalent of the legacy per-page registry
        (``NodeFeatureExtractor.registry_for``) with the ``(string,
        path)`` keys pre-resolved against the compiled vocabulary.
        """
        frequent = self._feature_extractor.frequent_strings
        text_get = self._text.get
        height = self._height
        text_map: dict[int, list[dict[int, int]]] = {}
        for node in nodes:
            text = node.text.strip()
            if text not in frequent:
                continue
            path = ""
            element = node.parent
            hop = 0
            while element is not None and hop <= height:
                ups_columns = text_get((text, path))
                if ups_columns is not None:
                    text_map.setdefault(id(element), []).append(ups_columns)
                # Incremental form of "/".join(reversed(tags so far)).
                path = element.tag if not path else f"{element.tag}/{path}"
                element = element.parent
                hop += 1
        return text_map

    def _text_parts(
        self,
        node: TextNode,
        text_map: dict[int, list[dict[int, int]]],
        token: list,
    ) -> list[list[int]]:
        """The node's non-empty nearby-frequent-string contributions, one
        canonical column list per ancestor hop.

        Each ``(ancestor, ups)`` contribution is resolved once per pass
        (cached in the ancestor's scratch record) and canonicalized
        across pages by the identity of the ancestor's ups dicts, so
        identical contributions share one list object — which lets the
        row cache key whole rows by identity.  The union over hops is
        duplicate-free: each hop's list is deduplicated at build time
        (duplicate registrations collapse the way the legacy feature dict
        collapsed them), and different hops resolve to different columns
        by construction.
        """
        parts: list[list[int]] = []
        stride = self._height + 1
        text_base = self._text_base
        map_get = text_map.get
        element = node.parent
        ups = 0
        while element is not None and ups < stride:
            record = element._scoring
            if record is None or record[0] is not token:
                record = self._element_record(element, token)
            slot = text_base + ups
            part = record[slot]
            if part is None:
                ups_dicts = map_get(id(element))
                if not ups_dicts:
                    part = _NO_COLUMNS
                else:
                    built: list[int] = []
                    for ups_columns in ups_dicts:
                        column = ups_columns.get(ups)
                        if column is not None and column not in built:
                            built.append(column)
                    if not built:
                        part = _NO_COLUMNS
                    else:
                        part_key = (ups, *map(id, ups_dicts))
                        entry = self._text_part_cache.get(part_key)
                        if entry is None:
                            self._cache_guard()
                            # ups_dicts rides along to pin the key ids.
                            entry = (built, ups_dicts)
                            self._text_part_cache[part_key] = entry
                        part = entry[0]
                record[slot] = part
            if part:
                parts.append(part)
            element = element.parent
            ups += 1
        return parts
