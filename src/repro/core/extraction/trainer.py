"""Training the extraction classifier — Section 4.2 of the paper.

Bundles the fitted pieces into a :class:`CeresModel`: the node feature
extractor (with the site's frequent-string lexicon), the feature
vectorizer, and the multinomial logistic-regression classifier over
``{predicates} ∪ {name} ∪ {OTHER}``.

Serving scores through the model's :class:`~repro.core.extraction.scoring.BatchScorer`
(compiled at train/load time); :meth:`CeresModel.predict_proba_for_nodes`
keeps the original per-node chain as the equivalence oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.annotation.examples import TrainingExample
from repro.core.config import CeresConfig
from repro.core.extraction.features import FeatureNameBatcher, NodeFeatureExtractor
from repro.core.extraction.scoring import BatchScorer, PageScores
from repro.dom.node import TextNode
from repro.dom.parser import Document
from repro.ml.features import FeatureVectorizer
from repro.ml.logistic import SoftmaxRegression

__all__ = ["CeresModel", "CeresTrainer"]


@dataclass
class CeresModel:
    """A trained per-template extraction model."""

    feature_extractor: NodeFeatureExtractor
    vectorizer: FeatureVectorizer
    classifier: SoftmaxRegression

    def __post_init__(self) -> None:
        self._scorer: BatchScorer | None = None

    @property
    def labels(self) -> list[str]:
        return list(self.classifier.classes_)

    @property
    def scorer(self) -> BatchScorer:
        """The batched, vocabulary-compiled scoring engine (lazy)."""
        if self._scorer is None:
            self._scorer = BatchScorer(self)
        return self._scorer

    def compile(self) -> CeresModel:
        """Eagerly build the batched scorer.

        Called at train time (:class:`CeresTrainer`) and artifact-load
        time (:func:`repro.runtime.serialize.model_from_dict`) so serving
        never pays compilation inside a request.
        """
        _ = self.scorer
        return self

    def predict_proba_for_nodes(
        self, nodes: list[TextNode], document: Document
    ) -> np.ndarray:
        """Class probabilities for each node, rows aligned with ``nodes``.

        This is the legacy per-node chain (feature dicts → vectorizer →
        classifier), retained as the equivalence oracle for the batched
        engine; hot paths use :meth:`score_pages` instead.
        """
        samples = [self.feature_extractor.features(node, document) for node in nodes]
        X = self.vectorizer.transform(samples)
        return self.classifier.predict_proba(X)

    def score_pages(self, documents: Sequence[Document]) -> list[PageScores]:
        """Batched ``(nodes, probabilities)`` per page — one CSR matrix
        over every node of every page and a single matmul."""
        return self.scorer.score_pages(documents)

    def predict_proba_for_pages(
        self, documents: Sequence[Document]
    ) -> list[np.ndarray]:
        """Batched class probabilities per page, aligned with each page's
        non-empty text fields (the rows :meth:`predict_proba_for_nodes`
        would produce page by page)."""
        return [probabilities for _, probabilities in self.score_pages(documents)]


class CeresTrainer:
    """Fits a :class:`CeresModel` from training examples."""

    def __init__(self, config: CeresConfig | None = None) -> None:
        self.config = config or CeresConfig()

    def train(
        self,
        examples: list[TrainingExample],
        documents: list[Document],
    ) -> CeresModel:
        """Train on ``examples``; ``documents`` is the full template cluster
        (used to compile the frequent-string lexicon, which must reflect
        the whole site, not only annotated pages).

        This is the vectorized path: feature-name rows come batched from a
        :class:`~repro.core.extraction.features.FeatureNameBatcher`
        (template-convergent caches, shared row objects), land in the CSR
        matrix through the vectorizer's preallocated name-row path, and
        the classifier fits through the deduplicated fast objective.  The
        resulting model — vocabulary, matrix, and coefficients — is
        byte-identical to :meth:`legacy_train` (covered by tests and the
        annotation hot-path benchmark).
        """
        if not examples:
            raise ValueError("no training examples — annotation produced nothing")
        extractor = NodeFeatureExtractor(self.config).fit(documents)
        batcher = FeatureNameBatcher(extractor)
        rows = [
            batcher.row_for(example.node, documents[example.page_index])
            for example in examples
        ]
        labels = [example.label for example in examples]
        vectorizer = FeatureVectorizer()
        X = vectorizer.fit_transform_name_rows(rows)
        classifier = SoftmaxRegression(
            C=self.config.classifier_C, max_iter=self.config.classifier_max_iter
        )
        classifier.fit(X, labels)
        return CeresModel(extractor, vectorizer, classifier).compile()

    def legacy_train(
        self,
        examples: list[TrainingExample],
        documents: list[Document],
    ) -> CeresModel:
        """:meth:`train` through the original row-by-row chain.

        Kept as the equivalence oracle: per-node feature dicts, dict
        vectorization, and the reference L-BFGS objective under
        ``scipy.optimize.minimize``.
        """
        if not examples:
            raise ValueError("no training examples — annotation produced nothing")
        extractor = NodeFeatureExtractor(self.config).fit(documents)
        samples = [
            extractor.features(example.node, documents[example.page_index])
            for example in examples
        ]
        labels = [example.label for example in examples]
        vectorizer = FeatureVectorizer()
        X = vectorizer.fit_transform(samples)
        classifier = SoftmaxRegression(
            C=self.config.classifier_C, max_iter=self.config.classifier_max_iter
        )
        classifier.fit(X, labels, engine="reference")
        return CeresModel(extractor, vectorizer, classifier).compile()
