"""Training and extraction (Section 4 of the paper)."""

from repro.core.extraction.extractor import (
    CeresExtractor,
    ClusterExtractorPool,
    Extraction,
    PageCandidates,
)
from repro.core.extraction.features import NodeFeatureExtractor
from repro.core.extraction.scoring import BatchScorer
from repro.core.extraction.trainer import CeresModel, CeresTrainer

__all__ = [
    "BatchScorer",
    "CeresExtractor",
    "ClusterExtractorPool",
    "Extraction",
    "PageCandidates",
    "NodeFeatureExtractor",
    "CeresModel",
    "CeresTrainer",
]
