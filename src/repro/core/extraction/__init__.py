"""Training and extraction (Section 4 of the paper)."""

from repro.core.extraction.extractor import CeresExtractor, Extraction, PageCandidates
from repro.core.extraction.features import NodeFeatureExtractor
from repro.core.extraction.trainer import CeresModel, CeresTrainer

__all__ = [
    "CeresExtractor",
    "Extraction",
    "PageCandidates",
    "NodeFeatureExtractor",
    "CeresModel",
    "CeresTrainer",
]
