"""Page topic identification — Algorithm 1 of the paper.

Two phases:

1. **Local candidate identification** (Section 3.1.1): every text field is
   matched against the KB; each candidate entity ``e`` is scored by the
   Jaccard similarity between the page's matched value set (*pageSet*) and
   the objects of ``e``'s KB triples (*entitySet*).  The arg-max candidate
   becomes the page's provisional topic.

2. **Global identification** (Section 3.1.2): candidates that are the
   provisional topic of too many pages are discarded (*uniqueness*); the
   XPaths at which provisional topics occur are counted across the site and
   each page re-assigns its topic from the text field at the
   highest-ranked XPath present on the page (*consistency*).  The
   *informativeness* filter (minimum annotation count) is applied later by
   the pipeline, after relation annotation.
"""

from __future__ import annotations

from collections import Counter

from repro.core.annotation.types import TopicResult
from repro.core.config import CeresConfig
from repro.dom.parser import Document
from repro.kb.matcher import PageMatcher
from repro.kb.store import KnowledgeBase
from repro.text.distance import jaccard
from repro.text.normalize import is_low_information, normalize_text

__all__ = ["TopicIdentifier"]


class TopicIdentifier:
    """Implements PageTopicIdentification (Algorithm 1)."""

    def __init__(
        self,
        kb: KnowledgeBase,
        config: CeresConfig | None = None,
        matcher: PageMatcher | None = None,
    ) -> None:
        self.kb = kb
        self.config = config or CeresConfig()
        self.matcher = matcher or PageMatcher(kb)
        self._stop_strings = kb.frequent_strings(
            self.config.stoplist_fraction, self.config.stoplist_min_count
        )

    # -- local scoring (ScoreEntitiesForPage) -----------------------------

    def _candidate_allowed(self, entity_id: str) -> bool:
        """Uniqueness/low-information pre-filters on candidate topics."""
        entity = self.kb.entities.get(entity_id)
        if entity is None:
            return False
        if is_low_information(entity.name):
            return False
        if normalize_text(entity.name) in self._stop_strings:
            return False
        return True

    def score_entities_for_page(self, document: Document) -> dict[str, float]:
        """Jaccard score for every allowed candidate entity on the page.

        This is ``ScoreEntitiesForPage`` of Algorithm 1: for each entity
        ``e`` mentioned on the page, ``J(pageSet, entitySet(e))`` where
        *pageSet* is the set of all KB value keys matched on the page.
        """
        match = self.matcher.match(document)
        page_set = match.value_keys
        scores: dict[str, float] = {}
        for entity_id in match.entity_mentions:
            if not self._candidate_allowed(entity_id):
                continue
            entity_set = self.kb.object_keys(entity_id)
            if not entity_set:
                continue
            score = jaccard(page_set, entity_set)
            if score > 0.0:
                scores[entity_id] = score
        return scores

    # -- full algorithm ----------------------------------------------------

    def identify(self, documents: list[Document]) -> dict[int, TopicResult]:
        """Identify topic entities for a template cluster of pages.

        Returns a map from page index to :class:`TopicResult`; pages whose
        topic could not be determined are absent.
        """
        config = self.config

        # Phase 1: local candidates and their scores.
        page_scores: list[dict[str, float]] = []
        local_candidates: list[str | None] = []
        for document in documents:
            scores = self.score_entities_for_page(document)
            page_scores.append(scores)
            if scores:
                # Deterministic argmax: score desc, then entity id.
                best = min(scores, key=lambda eid: (-scores[eid], eid))
                local_candidates.append(best)
            else:
                local_candidates.append(None)

        # Phase 2 step 1: uniqueness filter over local candidates.
        candidate_counts = Counter(c for c in local_candidates if c is not None)
        over_used = {
            eid
            for eid, count in candidate_counts.items()
            if count >= config.max_pages_per_topic
        }

        # Phase 2 step 2: count the XPaths of candidate-topic mentions
        # across the site ("finding the dominant XPath").
        path_counts: Counter[str] = Counter()
        for document, candidate in zip(documents, local_candidates):
            if candidate is None or candidate in over_used:
                continue
            match = self.matcher.match(document)
            for node in match.entity_mentions.get(candidate, ()):
                path_counts[node.xpath] += 1
        if not path_counts:
            return {}
        ranked_paths = sorted(path_counts, key=lambda p: (-path_counts[p], p))

        # Phase 2 step 3: re-assign each page's topic from the text field
        # at the highest-ranked XPath present on that page.
        results: dict[int, TopicResult] = {}
        for page_index, document in enumerate(documents):
            scores = page_scores[page_index]
            if not scores:
                continue
            node = None
            for path in ranked_paths:
                found = document.node_at(path)
                if found is not None and found.is_text:
                    node = found
                    break
            if node is None:
                continue
            # Entities matched in that text field, best score first.
            match = self.matcher.match(document)
            entities_here = match.entities_in_field(node)
            eligible = [
                eid
                for eid in entities_here
                if eid in scores and eid not in over_used
            ]
            if not eligible:
                continue
            best = min(eligible, key=lambda eid: (-scores[eid], eid))
            results[page_index] = TopicResult(
                page_index=page_index,
                entity_id=best,
                node=node,
                score=scores[best],
            )
        return results
