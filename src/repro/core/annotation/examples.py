"""Training example construction — Section 4.1 of the paper.

Annotation produces positive labels only.  For each annotated page we
sample ``r = 3`` unlabeled DOM nodes per positive as ``OTHER`` examples,
with the *list-index exclusion* safeguard: when several positives of one
predicate differ only in the indices of their XPaths (a value list such as
a cast), unlabeled nodes matching the same generalized pattern are
excluded from negative sampling — they are probably unannotated members of
the same list, not true negatives.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.annotation.types import AnnotatedPage
from repro.core.config import CeresConfig
from repro.dom.node import TextNode
from repro.dom.xpath import generalize_paths, pattern_matches, xpath_steps
from repro.kb.ontology import NAME_PREDICATE, OTHER_LABEL

__all__ = ["TrainingExample", "build_training_examples", "list_exclusion_patterns"]


@dataclass
class TrainingExample:
    """One classifier training instance."""

    page_index: int
    node: TextNode
    label: str


def list_exclusion_patterns(page: AnnotatedPage) -> list[tuple]:
    """Generalized XPath patterns covering each positive value list.

    For every predicate with two or more annotations on the page whose
    XPaths share a shape, the pattern wildcards the disagreeing indices.
    """
    by_predicate: dict[str, list[tuple]] = {}
    for annotation in page.annotations:
        by_predicate.setdefault(annotation.predicate, []).append(
            xpath_steps(annotation.node)
        )
    patterns = []
    for paths in by_predicate.values():
        if len(paths) < 2:
            continue
        pattern = generalize_paths(paths)
        if pattern is not None and any(index is None for _, index in pattern):
            patterns.append(pattern)
    return patterns


def build_training_examples(
    pages: list[AnnotatedPage],
    config: CeresConfig | None = None,
    rng: random.Random | None = None,
) -> list[TrainingExample]:
    """Positive + sampled negative examples for a set of annotated pages.

    Positives: every relation annotation, plus the topic node labeled
    ``name``.  Negatives: ``negatives_per_positive`` unlabeled text fields
    per positive, sampled without replacement, skipping list-excluded
    nodes (see :func:`list_exclusion_patterns`).
    """
    config = config or CeresConfig()
    rng = rng or random.Random(config.random_seed)
    examples: list[TrainingExample] = []

    for page in pages:
        positives: list[tuple[TextNode, str]] = [(page.topic_node, NAME_PREDICATE)]
        positives.extend(
            (annotation.node, annotation.predicate) for annotation in page.annotations
        )
        positive_ids = {id(node) for node, _ in positives}
        patterns = list_exclusion_patterns(page)

        candidates = []
        for node in page.document.text_fields():
            if id(node) in positive_ids:
                continue
            if not node.text.strip():
                continue
            if patterns:
                steps = xpath_steps(node)
                if any(pattern_matches(pattern, steps) for pattern in patterns):
                    continue
            candidates.append(node)

        for node, label in positives:
            examples.append(TrainingExample(page.page_index, node, label))
        wanted = config.negatives_per_positive * len(positives)
        if candidates:
            sampled = (
                rng.sample(candidates, wanted)
                if wanted < len(candidates)
                else list(candidates)
            )
            examples.extend(
                TrainingExample(page.page_index, node, OTHER_LABEL) for node in sampled
            )
    return examples
