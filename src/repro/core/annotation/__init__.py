"""Automatic annotation: topic identification, relation annotation,
and training-example construction (Section 3 and 4.1 of the paper)."""

from repro.core.annotation.examples import (
    TrainingExample,
    build_training_examples,
    list_exclusion_patterns,
)
from repro.core.annotation.relation import ObjectMentions, RelationAnnotator
from repro.core.annotation.topic import TopicIdentifier
from repro.core.annotation.types import AnnotatedPage, Annotation, TopicResult

__all__ = [
    "TrainingExample",
    "build_training_examples",
    "list_exclusion_patterns",
    "ObjectMentions",
    "RelationAnnotator",
    "TopicIdentifier",
    "AnnotatedPage",
    "Annotation",
    "TopicResult",
]
