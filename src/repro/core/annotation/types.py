"""Shared data types for the annotation stage."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dom.node import TextNode
from repro.dom.parser import Document

__all__ = ["TopicResult", "Annotation", "AnnotatedPage"]

ValueKey = tuple[str, str]


@dataclass
class TopicResult:
    """Outcome of topic identification for one page."""

    page_index: int
    entity_id: str
    node: TextNode  # the text field holding the topic name
    score: float  # the Jaccard score that selected the entity


@dataclass
class Annotation:
    """A single positive training label: this node expresses ``predicate``.

    ``object_key`` identifies the KB value the mention was matched to,
    ``object_text`` is the canonical object string used when reporting
    annotation quality.
    """

    predicate: str
    node: TextNode
    object_key: ValueKey
    object_text: str


@dataclass
class AnnotatedPage:
    """A page that passed topic identification and annotation filtering."""

    page_index: int
    document: Document
    topic_entity_id: str
    topic_node: TextNode
    annotations: list[Annotation] = field(default_factory=list)

    @property
    def relation_annotation_count(self) -> int:
        """Number of relation annotations (the informativeness criterion)."""
        return len(self.annotations)
