"""Relation annotation — Algorithm 2 of the paper.

Given the topic entity of each page, annotate *at most one* mention of
each KB object per predicate ("we emphasize precision over recall for
annotation").  Ambiguity — an object with several mentions, or an object
participating in several relations — is resolved by:

* **Local evidence** (Section 3.2.1): prefer the mention whose enclosing
  subtree holds the most co-objects of the same predicate (multi-valued
  objects are laid out together: cast lists, genre rows).

* **Global evidence** (Section 3.2.2): agglomerative clustering of the
  predicate's mention XPaths across all pages (Levenshtein distance over
  XPath steps); prefer mentions falling in the largest cluster.  Used only
  when (1) local evidence ties and the predicate is frequently duplicated,
  or (2) the object is over-represented across pages (informativeness:
  the all-genres-on-every-page hazard).

The annotator runs a vectorized hot path by default and keeps the
original implementations as the equivalence oracle (the same pattern as
PR 3's ``legacy_candidates_for_page``); :meth:`RelationAnnotator.legacy_annotate`
produces byte-identical annotations through the pure-Python code:

* mention gathering reads precomputed per-subject surface variants from a
  :class:`repro.kb.surfaces.SurfaceIndex` instead of re-expanding
  ``surface_variants`` for every triple on every page;
* local evidence packs each mention's ancestor set into an int bitset and
  forms the per-mention blocked set from prefix/suffix unions —
  O(M·depth) instead of the O(M²·depth) pairwise frozenset unions;
* XPath clustering runs the interned-token batched Levenshtein matrix
  (:mod:`repro.text.distance`) instead of pairwise Python calls.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.core.annotation.types import AnnotatedPage, Annotation, TopicResult
from repro.core.config import CeresConfig
from repro.dom.node import TextNode
from repro.dom.parser import Document
from repro.dom.xpath import xpath_steps
from repro.kb.matcher import PageMatcher
from repro.kb.store import KnowledgeBase
from repro.kb.surfaces import SurfaceIndex
from repro.ml.cluster import cluster_xpaths

__all__ = ["RelationAnnotator", "ObjectMentions"]

ValueKey = tuple[str, str]


@dataclass
class ObjectMentions:
    """All mentions of one object of one predicate on one page."""

    predicate: str
    object_key: ValueKey
    object_text: str
    mentions: list[TextNode]


class RelationAnnotator:
    """Implements full-page relation annotation (Algorithm 2)."""

    def __init__(
        self,
        kb: KnowledgeBase,
        config: CeresConfig | None = None,
        matcher: PageMatcher | None = None,
    ) -> None:
        self.kb = kb
        self.config = config or CeresConfig()
        self.matcher = matcher or PageMatcher(kb)
        #: Per-subject precomputed surface variants; lazily filled, shared
        #: by every page of every cluster this annotator processes.
        self.surface_index = SurfaceIndex(kb)

    # -- mention gathering --------------------------------------------------

    def collect_object_mentions(
        self, document: Document, topic: TopicResult
    ) -> dict[str, list[ObjectMentions]]:
        """Mentions of every KB object of the topic, grouped by predicate.

        The topic node itself is excluded — it expresses the ``name``
        relation, never an object mention.  Surface variants come
        precomputed from the :class:`~repro.kb.surfaces.SurfaceIndex`.
        """
        match = self.matcher.match(document)
        by_predicate: dict[str, list[ObjectMentions]] = defaultdict(list)
        topic_node = topic.node
        for entry in self.surface_index.entries_for_subject(topic.entity_id):
            mentions = [
                node
                for node in match.mentions_of_variants(entry.variants)
                if node is not topic_node
            ]
            if not mentions:
                continue
            by_predicate[entry.predicate].append(
                ObjectMentions(
                    entry.predicate, entry.object_key, entry.object_text, mentions
                )
            )
        return dict(by_predicate)

    def legacy_collect_object_mentions(
        self, document: Document, topic: TopicResult
    ) -> dict[str, list[ObjectMentions]]:
        """The original per-triple mention gathering (equivalence oracle)."""
        match = self.matcher.match(document)
        by_predicate: dict[str, list[ObjectMentions]] = defaultdict(list)
        seen: set[tuple[str, ValueKey]] = set()
        for triple in self.kb.triples_for_subject(topic.entity_id):
            key = (triple.predicate, triple.object.key)
            if key in seen:
                continue
            seen.add(key)
            surfaces = self.kb.object_surfaces(triple)
            if not surfaces:
                continue
            mentions = [
                node
                for node in match.mentions_of_surfaces(surfaces)
                if node is not topic.node
            ]
            if not mentions:
                continue
            object_text = (
                self.kb.entity(triple.object.value).name
                if triple.object.is_entity
                else triple.object.value
            )
            by_predicate[triple.predicate].append(
                ObjectMentions(triple.predicate, triple.object.key, object_text, mentions)
            )
        return dict(by_predicate)

    # -- local evidence (BestLocalMention) -----------------------------------

    @staticmethod
    def _ancestor_ids(node: TextNode) -> frozenset[int]:
        return frozenset(id(a) for a in node.ancestors())

    def best_local_mentions(
        self,
        mentions: list[TextNode],
        co_object_mentions: list[list[TextNode]],
    ) -> list[TextNode]:
        """``BestLocalMention`` of Algorithm 2 — bitset implementation.

        For each mention, climb to the highest ancestor containing no other
        mention of the same object, count how many distinct co-objects of
        the predicate fall under that ancestor, and return the mentions
        with the maximal count (singleton = unambiguous).

        Each distinct ancestor element gets one bit; a mention's ancestor
        set is an int mask, the blocked set for mention ``m`` is the union
        of every *other* mention's mask — prefix/suffix unions make that
        O(M) masks total — and a co-object group blocks an anchor iff the
        OR of its members' masks has the anchor's bit set.
        """
        if len(mentions) == 1:
            return list(mentions)
        bit_of: dict[int, int] = {}
        masks: list[int] = []
        for mention in mentions:
            mask = 0
            for ancestor in mention.ancestors():
                key = id(ancestor)
                bit = bit_of.get(key)
                if bit is None:
                    bit = len(bit_of)
                    bit_of[key] = bit
                mask |= 1 << bit
            masks.append(mask)

        count = len(mentions)
        prefix = [0] * (count + 1)
        for index in range(count):
            prefix[index + 1] = prefix[index] | masks[index]
        suffix = [0] * (count + 1)
        for index in range(count - 1, -1, -1):
            suffix[index] = suffix[index + 1] | masks[index]

        group_masks: list[int] = []
        for group in co_object_mentions:
            group_mask = 0
            for node in group:
                for ancestor in node.ancestors():
                    key = id(ancestor)
                    bit = bit_of.get(key)
                    if bit is None:
                        bit = len(bit_of)
                        bit_of[key] = bit
                    group_mask |= 1 << bit
            group_masks.append(group_mask)

        best_count = -1
        best: list[TextNode] = []
        for index, mention in enumerate(mentions):
            blocked = prefix[index] | suffix[index + 1]
            ancestor = mention.element
            parent = ancestor.parent
            while parent is not None:
                parent_bit = bit_of.get(id(parent))
                if parent_bit is not None and (blocked >> parent_bit) & 1:
                    break
                ancestor = parent
                parent = ancestor.parent
            anchor_mask = 1 << bit_of[id(ancestor)]
            neighbor_count = 0
            for group_mask in group_masks:
                if group_mask & anchor_mask:
                    neighbor_count += 1
            if neighbor_count > best_count:
                best_count = neighbor_count
                best = [mention]
            elif neighbor_count == best_count:
                best.append(mention)
        return best

    def legacy_best_local_mentions(
        self,
        mentions: list[TextNode],
        co_object_mentions: list[list[TextNode]],
    ) -> list[TextNode]:
        """The original frozenset-union implementation (equivalence oracle)."""
        if len(mentions) == 1:
            return list(mentions)
        ancestor_sets = {id(m): self._ancestor_ids(m) for m in mentions}
        co_ancestor_sets = [
            [self._ancestor_ids(node) for node in group] for group in co_object_mentions
        ]

        best_count = -1
        best: list[TextNode] = []
        for mention in mentions:
            blocked: set[int] = set()
            for other in mentions:
                if other is not mention:
                    blocked |= ancestor_sets[id(other)]
            ancestor = mention.element
            while ancestor.parent is not None and id(ancestor.parent) not in blocked:
                ancestor = ancestor.parent
            anchor = id(ancestor)
            neighbor_count = 0
            for group_sets in co_ancestor_sets:
                if any(anchor in node_set for node_set in group_sets):
                    neighbor_count += 1
            if neighbor_count > best_count:
                best_count = neighbor_count
                best = [mention]
            elif neighbor_count == best_count:
                best.append(mention)
        return best

    # -- global statistics ----------------------------------------------------

    def _compute_global_stats(
        self, page_mentions: dict[int, dict[str, list[ObjectMentions]]]
    ):
        """Duplication and over-representation statistics across the site."""
        pages_with_predicate: Counter[str] = Counter()
        object_page_counts: Counter[tuple[str, ValueKey]] = Counter()
        instances: Counter[str] = Counter()
        duplicated_instances: Counter[str] = Counter()
        for per_page in page_mentions.values():
            for predicate, objects in per_page.items():
                pages_with_predicate[predicate] += 1
                for obj in objects:
                    object_page_counts[(predicate, obj.object_key)] += 1
                    instances[predicate] += 1
                    if len(obj.mentions) > 1:
                        duplicated_instances[predicate] += 1

        frequently_duplicated = {
            predicate
            for predicate in instances
            if duplicated_instances[predicate] / instances[predicate]
            > self.config.duplicated_predicate_fraction
        }
        over_represented = {
            (predicate, object_key)
            for (predicate, object_key), count in object_page_counts.items()
            if pages_with_predicate[predicate] >= self.config.min_predicate_pages
            and count
            > self.config.over_represented_object_fraction
            * pages_with_predicate[predicate]
        }
        return frequently_duplicated, over_represented

    def _cluster_predicate(
        self,
        predicate: str,
        page_mentions: dict[int, dict[str, list[ObjectMentions]]],
        engine: str = "batched",
    ) -> tuple[dict[int, int], Counter]:
        """Cluster all mention XPaths of a predicate across the site.

        Returns ``(labels_by_node_id, cluster_sizes)``.  The number of
        clusters is the maximum number of mentions of a single object on a
        single page (Section 3.2.2).
        """
        nodes: list[TextNode] = []
        max_mentions = 1
        for per_page in page_mentions.values():
            for obj in per_page.get(predicate, ()):
                nodes.extend(obj.mentions)
                max_mentions = max(max_mentions, len(obj.mentions))
        if not nodes:
            return {}, Counter()
        paths = [xpath_steps(node) for node in nodes]
        labels = cluster_xpaths(
            paths,
            n_clusters=max_mentions,
            max_items=self.config.max_cluster_items,
            engine=engine,
        )
        labels_by_node = {id(node): label for node, label in zip(nodes, labels)}
        return labels_by_node, Counter(labels)

    # -- main entry point --------------------------------------------------------

    def annotate(
        self,
        documents: list[Document],
        topics: dict[int, TopicResult],
    ) -> list[AnnotatedPage]:
        """Annotate all pages of one template cluster (vectorized path).

        Pages failing the informativeness filter (fewer than
        ``min_annotations_per_page`` relation annotations) are dropped,
        completing Algorithm 1's final step.
        """
        return self._annotate(documents, topics, legacy=False)

    def legacy_annotate(
        self,
        documents: list[Document],
        topics: dict[int, TopicResult],
    ) -> list[AnnotatedPage]:
        """:meth:`annotate` through the original pure-Python implementations.

        Kept as the equivalence oracle: output is byte-identical to the
        vectorized path (covered by tests and the annotation benchmark).
        """
        return self._annotate(documents, topics, legacy=True)

    def _annotate(
        self,
        documents: list[Document],
        topics: dict[int, TopicResult],
        legacy: bool,
    ) -> list[AnnotatedPage]:
        config = self.config
        collect = (
            self.legacy_collect_object_mentions if legacy else self.collect_object_mentions
        )
        best_local = (
            self.legacy_best_local_mentions if legacy else self.best_local_mentions
        )
        cluster_engine = "python" if legacy else "batched"

        # Pass 1: gather mentions for every page with a topic.
        page_mentions: dict[int, dict[str, list[ObjectMentions]]] = {}
        for page_index, topic in topics.items():
            page_mentions[page_index] = collect(documents[page_index], topic)

        frequently_duplicated, over_represented = self._compute_global_stats(
            page_mentions
        )

        # Lazily computed per-predicate clusterings.
        cluster_cache: dict[str, tuple[dict[int, int], Counter]] = {}

        def clusters_for(predicate: str) -> tuple[dict[int, int], Counter]:
            if predicate not in cluster_cache:
                cluster_cache[predicate] = self._cluster_predicate(
                    predicate, page_mentions, engine=cluster_engine
                )
            return cluster_cache[predicate]

        # Pass 2: per-object decisions.
        annotated_pages: list[AnnotatedPage] = []
        for page_index in sorted(topics):
            topic = topics[page_index]
            annotations: list[Annotation] = []
            for predicate, objects in sorted(page_mentions[page_index].items()):
                co_mentions = [obj.mentions for obj in objects]
                for obj in objects:
                    chosen = self._choose_mention(
                        obj,
                        co_mentions,
                        frequently_duplicated,
                        over_represented,
                        clusters_for,
                        best_local,
                    )
                    if chosen is not None:
                        annotations.append(
                            Annotation(predicate, chosen, obj.object_key, obj.object_text)
                        )
            if len(annotations) >= config.min_annotations_per_page:
                annotated_pages.append(
                    AnnotatedPage(
                        page_index=page_index,
                        document=documents[page_index],
                        topic_entity_id=topic.entity_id,
                        topic_node=topic.node,
                        annotations=annotations,
                    )
                )
        return annotated_pages

    def _choose_mention(
        self,
        obj: ObjectMentions,
        co_mentions: list[list[TextNode]],
        frequently_duplicated: set[str],
        over_represented: set[tuple[str, ValueKey]],
        clusters_for,
        best_local=None,
    ) -> TextNode | None:
        """Decide which mention (if any) of ``obj`` to annotate."""
        if best_local is None:
            best_local = self.best_local_mentions
        best = best_local(obj.mentions, co_mentions)
        predicate = obj.predicate
        if len(best) == 1:
            mention = best[0]
            if (predicate, obj.object_key) in over_represented:
                # Informativeness: a suspiciously common object must sit in
                # the dominant (largest-cluster) page region to be trusted.
                labels, sizes = clusters_for(predicate)
                if not sizes:
                    return None
                if sizes.get(labels.get(id(mention)), 0) < max(sizes.values()):
                    return None
            return mention
        # Local tie: fall back to global evidence only for predicates whose
        # objects are frequently duplicated (Algorithm 2, lines 24-29).
        if predicate not in frequently_duplicated:
            return None
        labels, sizes = clusters_for(predicate)
        mention_sizes = [sizes.get(labels.get(id(m)), 0) for m in best]
        top = max(mention_sizes)
        winners = [m for m, size in zip(best, mention_sizes) if size == top]
        if len(winners) == 1:
            return winners[0]
        return None
