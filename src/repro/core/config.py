"""CERES configuration.

Every tunable the paper mentions is gathered here, with defaults set to the
values given in the text ("We set parameters exactly as the examples given
in the texts", Section 5.2).  Parameters whose paper values are calibrated
to web scale (the 0.01%-of-85M-triples stoplist) carry companion
``*_min_count`` knobs so behaviour is preserved at laptop scale; DESIGN.md
documents each such adaptation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CeresConfig"]


@dataclass
class CeresConfig:
    """All knobs for annotation, training, and extraction."""

    # --- topic identification (Section 3.1, Algorithm 1) ---
    #: Strings appearing in at least this fraction of KB triples are never
    #: topic candidates ("e.g., 0.01%").
    stoplist_fraction: float = 0.0001
    #: Absolute floor for the stoplist threshold at small KB sizes.  The
    #: paper's 0.01% is calibrated to an 85M-triple KB (~8,500 occurrences);
    #: at laptop scale an ordinary entity appears as a triple object a
    #: couple dozen times (inverse relations), so the floor sits above that.
    stoplist_min_count: int = 30
    #: Uniqueness filter: discard a candidate identified as topic of at
    #: least this many pages ("e.g., >= 5 pages").
    max_pages_per_topic: int = 5
    #: Informativeness filter: discard pages with fewer relation
    #: annotations than this ("e.g., >= 3").
    min_annotations_per_page: int = 3

    # --- relation annotation (Section 3.2, Algorithm 2) ---
    #: An object that appears as a value of a predicate on more than this
    #: fraction of annotated pages is suspicious (informativeness) and must
    #: be confirmed by the global clustering step.
    over_represented_object_fraction: float = 0.5
    #: A predicate is "frequently duplicated" when at least this fraction
    #: of its (page, object) instances have two or more mentions; only such
    #: predicates get cluster-based tie-breaking (Algorithm 2, line 25).
    duplicated_predicate_fraction: float = 0.2
    #: Over-representation is only judged for predicates appearing on at
    #: least this many pages — below that, "appears on more than half the
    #: pages" is noise, not evidence (e.g. 2 of 3 pages).
    min_predicate_pages: int = 4
    #: Cap on distinct XPaths fed to agglomerative clustering per predicate.
    max_cluster_items: int = 300

    # --- training examples (Section 4.1) ---
    #: Negative ("OTHER") examples sampled per positive example (r = 3).
    negatives_per_positive: int = 3
    #: Seed for the negative-sampling RNG.
    random_seed: int = 7

    # --- node features (Section 4.2) ---
    #: Ancestor levels inspected for structural features.
    struct_ancestor_levels: int = 4
    #: Sibling width on either side of each inspected ancestor ("up to a
    #: width of 5 on either side").
    struct_sibling_width: int = 5
    #: HTML attributes contributing structural features (the Vertex set).
    struct_attributes: tuple[str, ...] = (
        "class",
        "id",
        "itemprop",
        "itemtype",
        "property",
    )
    #: A string is "frequent" when it occurs on at least this fraction of
    #: pages (these become node-text features, e.g. "Director:").
    frequent_string_min_fraction: float = 0.3
    #: Maximum number of frequent strings kept per site.
    max_frequent_strings: int = 80
    #: Maximum character length of a frequent string.
    max_frequent_string_length: int = 40
    #: Ancestor hops searched for nearby frequent strings.
    text_feature_height: int = 3

    # --- classifier (Sections 4.2, 5.2) ---
    #: Inverse L2 regularization strength (scikit-learn convention, C=1).
    classifier_C: float = 1.0
    #: L-BFGS iteration budget.
    classifier_max_iter: int = 200

    # --- extraction (Section 4.3) ---
    #: Minimum predicted probability to emit an extraction (paper: 0.5).
    confidence_threshold: float = 0.5

    # --- caching (serving memory model; see README) ---
    #: Max page match results (:class:`repro.kb.matcher.PageMatch`) kept
    #: resident per :class:`~repro.kb.matcher.PageMatcher`.  Annotation
    #: re-reads each page's matches several times, so this should exceed
    #: the largest cluster processed at once.
    page_match_cache_size: int = 512
    #: Max per-page frequent-string registries kept resident per
    #: :class:`~repro.core.extraction.features.NodeFeatureExtractor`.
    feature_registry_cache_size: int = 512
    #: Max ``page_signature → cluster`` assignments memoized per
    #: :class:`~repro.core.extraction.extractor.ClusterExtractorPool`.
    assignment_cache_size: int = 4096
    #: Max sites kept resident (models + extractor pools) by a single
    #: :class:`~repro.runtime.service.ExtractionService`; least recently
    #: served sites are evicted and transparently reloaded on next use.
    max_resident_sites: int = 8

    # --- parsing limits (hostile-input hardening; serving tier) ---
    #: Cap on open-element nesting depth when parsing untrusted HTML
    #: (the serving tier passes this to :func:`repro.dom.parser.parse_html`).
    #: Generous: real template pages nest well under 100 levels; a
    #: ``<div>``-bomb recursion attack needs thousands.
    max_parse_depth: int = 240
    #: Cap on total parsed nodes (elements + text runs) per untrusted
    #: page.  Generous: the largest SWDE pages build a few tens of
    #: thousands of nodes.
    max_parse_nodes: int = 400_000

    # --- template clustering (Section 2.1) ---
    #: Whether to split a site's pages into template clusters first.
    use_template_clustering: bool = True
    #: Jaccard similarity threshold for page-signature clustering.
    template_similarity_threshold: float = 0.7
    #: Clusters smaller than this are skipped (too few pages to learn).
    min_cluster_size: int = 4

    def replace(self, **overrides) -> CeresConfig:
        """A copy of this config with the given fields replaced."""
        import dataclasses

        return dataclasses.replace(self, **overrides)
