"""The end-to-end CERES pipeline (Figure 3 of the paper).

For one website:

1. cluster pages into templates (Vertex-style, Section 2.1);
2. per cluster: identify page topics (Algorithm 1), annotate relations
   (Algorithm 2), apply the informativeness filter;
3. build training examples (negatives 3:1 with list exclusion) and train
   the multinomial logistic-regression node classifier;
4. extract from pages by assigning each to its template cluster's model.

The annotator is pluggable: the CERES-Topic baseline swaps in an
all-mentions annotator while reusing every other stage (see
``repro.baselines.ceres_topic``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import obs
from repro.clustering.templates import cluster_pages, page_signature
from repro.core.annotation.examples import build_training_examples
from repro.core.annotation.relation import RelationAnnotator
from repro.core.annotation.topic import TopicIdentifier
from repro.core.annotation.types import AnnotatedPage, TopicResult
from repro.core.config import CeresConfig
from repro.core.extraction.extractor import (
    ClusterExtractorPool,
    Extraction,
    PageCandidates,
)
from repro.core.extraction.trainer import CeresModel, CeresTrainer
from repro.dom.parser import Document
from repro.kb.matcher import PageMatcher
from repro.kb.store import KnowledgeBase

__all__ = ["ClusterResult", "CeresResult", "CeresPipeline"]


@dataclass
class ClusterResult:
    """Everything learned from one template cluster."""

    page_indices: list[int]  # indices into the training document list
    signature: frozenset[str]  # leader-page signature (for assignment)
    topics: dict[int, TopicResult]
    annotated_pages: list[AnnotatedPage]
    model: CeresModel | None


@dataclass
class CeresResult:
    """Full pipeline output."""

    cluster_results: list[ClusterResult]
    #: merged topic assignments over all clusters (train page index → topic)
    topics: dict[int, TopicResult] = field(default_factory=dict)
    #: merged annotated pages over all clusters
    annotated_pages: list[AnnotatedPage] = field(default_factory=list)
    #: unthresholded candidates per extraction page
    candidates: list[PageCandidates] = field(default_factory=list)
    #: thresholded extractions (config.confidence_threshold)
    extractions: list[Extraction] = field(default_factory=list)
    #: template clusters dropped for falling below ``min_cluster_size``
    skipped_clusters: int = 0
    #: training-document indices of pages in those dropped clusters —
    #: recorded so small-cluster pages never vanish silently.
    skipped_page_indices: list[int] = field(default_factory=list)

    @property
    def skipped_pages(self) -> int:
        """Number of pages dropped with their undersized clusters."""
        return len(self.skipped_page_indices)

    @property
    def annotation_count(self) -> int:
        """Total relation annotations across annotated pages."""
        return sum(len(page.annotations) for page in self.annotated_pages)

    def extractions_at(self, threshold: float) -> list[Extraction]:
        """Re-threshold the cached candidates (no re-scoring)."""
        results: list[Extraction] = []
        for page in self.candidates:
            results.extend(page.extractions(threshold))
        return results


class CeresPipeline:
    """Annotate → train → extract for one website."""

    def __init__(
        self,
        kb: KnowledgeBase,
        config: CeresConfig | None = None,
        annotator=None,
    ) -> None:
        self.kb = kb
        self.config = config or CeresConfig()
        self.matcher = PageMatcher(kb, cache_size=self.config.page_match_cache_size)
        self.topic_identifier = TopicIdentifier(kb, self.config, self.matcher)
        self.annotator = annotator or RelationAnnotator(kb, self.config, self.matcher)
        self.trainer = CeresTrainer(self.config)

    # -- annotation ----------------------------------------------------------

    def annotate(self, documents: list[Document]) -> CeresResult:
        """Run clustering, topic identification, and relation annotation."""
        return self._annotate(documents, legacy=False)

    def legacy_annotate(self, documents: list[Document]) -> CeresResult:
        """:meth:`annotate` through the annotator's legacy oracle path.

        Requires an annotator exposing ``legacy_annotate`` (the default
        :class:`~repro.core.annotation.relation.RelationAnnotator` does);
        output is byte-identical to :meth:`annotate`'s.
        """
        return self._annotate(documents, legacy=True)

    def _annotate(self, documents: list[Document], legacy: bool) -> CeresResult:
        with obs.stage("stage.annotate", pages=len(documents)) as annotate_stage:
            result = self._annotate_instrumented(documents, legacy)
            annotate_stage.set(
                annotated_pages=len(result.annotated_pages),
                annotations=result.annotation_count,
                skipped_clusters=result.skipped_clusters,
            )
        registry = obs.metrics()
        registry.inc("pipeline.pages", len(documents))
        registry.inc("pipeline.annotated_pages", len(result.annotated_pages))
        registry.inc("pipeline.annotations", result.annotation_count)
        registry.inc("pipeline.skipped_clusters", result.skipped_clusters)
        registry.inc("pipeline.skipped_pages", result.skipped_pages)
        return result

    def _annotate_instrumented(
        self, documents: list[Document], legacy: bool
    ) -> CeresResult:
        config = self.config
        annotate_cluster = (
            self.annotator.legacy_annotate if legacy else self.annotator.annotate
        )
        if config.use_template_clustering:
            with obs.stage("stage.cluster", pages=len(documents)):
                clusters = cluster_pages(
                    documents, config.template_similarity_threshold
                )
        else:
            clusters = None

        cluster_results: list[ClusterResult] = []
        if clusters is None:
            groups = [(list(range(len(documents))), frozenset())]
            if documents:
                groups = [
                    (list(range(len(documents))), page_signature(documents[0]))
                ]
        else:
            groups = [
                (cluster.page_indices, cluster.signature) for cluster in clusters
            ]

        skipped_clusters = 0
        skipped_page_indices: list[int] = []
        for page_indices, signature in groups:
            if len(page_indices) < config.min_cluster_size:
                skipped_clusters += 1
                skipped_page_indices.extend(page_indices)
                continue
            cluster_documents = [documents[i] for i in page_indices]
            local_topics = self.topic_identifier.identify(cluster_documents)
            annotated = annotate_cluster(cluster_documents, local_topics)
            # Re-key page indices from cluster-local to global.
            global_topics = {
                page_indices[local]: TopicResult(
                    page_indices[local], topic.entity_id, topic.node, topic.score
                )
                for local, topic in local_topics.items()
            }
            for page in annotated:
                page.page_index = page_indices[page.page_index]
            cluster_results.append(
                ClusterResult(page_indices, signature, global_topics, annotated, None)
            )

        result = CeresResult(
            cluster_results,
            skipped_clusters=skipped_clusters,
            skipped_page_indices=sorted(skipped_page_indices),
        )
        for cluster in cluster_results:
            result.topics.update(cluster.topics)
            result.annotated_pages.extend(cluster.annotated_pages)
        return result

    # -- training --------------------------------------------------------------

    def train(self, documents: list[Document], result: CeresResult) -> CeresResult:
        """Fit one model per cluster with enough annotated pages.

        Example building is batched up front for every cluster (one pass
        over the shared negative-sampling RNG, in cluster order — exactly
        the stream the sequential loop consumed), then the models fit
        through the trainer's vectorized path.
        """
        with obs.stage("stage.train") as train_stage:
            per_cluster = self.cluster_examples(result)
            for cluster, examples in per_cluster:
                cluster.model = self.trainer.train(examples, documents)
            train_stage.set(clusters_trained=len(per_cluster))
        obs.metrics().inc("pipeline.clusters_trained", len(per_cluster))
        return result

    def legacy_train(self, documents: list[Document], result: CeresResult) -> CeresResult:
        """:meth:`train` through the legacy row-by-row trainer (oracle).

        Consumes the negative-sampling RNG identically, so models are
        byte-identical to :meth:`train`'s.
        """
        per_cluster = self.cluster_examples(result)
        for cluster, examples in per_cluster:
            cluster.model = self.trainer.legacy_train(examples, documents)
        return result

    def cluster_examples(self, result: CeresResult):
        """Training examples per trainable cluster, built in one RNG pass.

        Public because the cross-site global trainer
        (:mod:`repro.transfer.trainer`) consumes the exact same example
        stream — same negative sampling, same RNG discipline — that
        per-site training does."""
        rng = random.Random(self.config.random_seed)
        per_cluster = []
        for cluster in result.cluster_results:
            if not cluster.annotated_pages:
                continue
            examples = build_training_examples(
                cluster.annotated_pages, self.config, rng
            )
            if examples:
                per_cluster.append((cluster, examples))
        return per_cluster

    # -- extraction ---------------------------------------------------------------

    def extract(
        self, result: CeresResult, documents: list[Document]
    ) -> CeresResult:
        """Score ``documents`` with their nearest cluster's model.

        Builds one extractor per modeled cluster up front (not one per
        page) via :class:`ClusterExtractorPool` — the same cached path the
        serving layer (``repro.runtime.service``) uses — and scores the
        whole document list in cluster-grouped batches (one CSR matrix and
        one matmul per cluster model, not one per page).
        """
        with obs.stage("stage.extract", pages=len(documents)) as extract_stage:
            pool = self.extractor_pool(result)
            result.candidates = []
            result.extractions = []
            if pool:
                result.candidates = pool.candidates(documents)
                for candidates in result.candidates:
                    result.extractions.extend(
                        candidates.extractions(self.config.confidence_threshold)
                    )
            extract_stage.set(extractions=len(result.extractions))
        obs.metrics().inc("pipeline.extractions", len(result.extractions))
        return result

    def extractor_pool(self, result: CeresResult) -> ClusterExtractorPool:
        """A ready-to-serve extractor pool over the trained clusters."""
        return ClusterExtractorPool(
            [
                (cluster.signature, cluster.model)
                for cluster in result.cluster_results
                if cluster.model is not None
            ],
            self.config,
        )

    # -- convenience ------------------------------------------------------------------

    def run(
        self,
        train_documents: list[Document],
        extract_documents: list[Document] | None = None,
    ) -> CeresResult:
        """Annotate and train on ``train_documents``; extract from
        ``extract_documents`` (default: the training documents, matching
        the paper's full-site extraction)."""
        result = self.annotate(train_documents)
        self.train(train_documents, result)
        targets = (
            extract_documents if extract_documents is not None else train_documents
        )
        return self.extract(result, targets)
