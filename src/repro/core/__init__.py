"""CERES core: configuration, annotation, training, extraction, pipeline."""

from repro.core.annotation import (
    AnnotatedPage,
    Annotation,
    RelationAnnotator,
    TopicIdentifier,
    TopicResult,
    TrainingExample,
    build_training_examples,
)
from repro.core.config import CeresConfig
from repro.core.extraction import (
    CeresExtractor,
    CeresModel,
    CeresTrainer,
    Extraction,
    NodeFeatureExtractor,
    PageCandidates,
)
from repro.core.pipeline import CeresPipeline, CeresResult, ClusterResult

__all__ = [
    "AnnotatedPage",
    "Annotation",
    "RelationAnnotator",
    "TopicIdentifier",
    "TopicResult",
    "TrainingExample",
    "build_training_examples",
    "CeresConfig",
    "CeresExtractor",
    "CeresModel",
    "CeresTrainer",
    "Extraction",
    "NodeFeatureExtractor",
    "PageCandidates",
    "CeresPipeline",
    "CeresResult",
    "ClusterResult",
]
