"""Seed-KB bootstrapping (footnote 2 of the paper).

"This approach can be combined with a manual-annotation-based approach;
when entering a new domain for which no KB exists, an annotation-based
extractor could be run on a few prominent sites and used to populate a
seed KB for distantly supervised extraction of other sites."

Two pieces:

* :func:`kb_from_extractions` — turn (high-confidence) extractions into a
  seed KB, creating one subject entity per distinct subject string;
* :func:`bootstrap_site` — the full loop: extract from a source site
  (with any extractor), build the seed KB, run CERES on a target site.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.config import CeresConfig
from repro.core.extraction.extractor import Extraction
from repro.core.pipeline import CeresPipeline, CeresResult
from repro.dom.parser import Document
from repro.kb.ontology import NAME_PREDICATE, Ontology
from repro.kb.store import KnowledgeBase
from repro.kb.triple import Entity, Value
from repro.text.normalize import normalize_text

__all__ = ["kb_from_extractions", "bootstrap_site"]


def kb_from_extractions(
    extractions: list[Extraction],
    ontology: Ontology,
    entity_type: str,
    min_confidence: float = 0.7,
    source_name: str = "bootstrap",
) -> KnowledgeBase:
    """Build a seed KB from extraction output.

    Objects are stored as literals (entity linkage is out of scope, as in
    the paper); subjects become entities named by their surface string.
    Duplicate (subject, predicate, object) assertions collapse.
    """
    kb = KnowledgeBase(ontology)
    subject_ids: dict[str, str] = {}
    seen: set[tuple[str, str, str]] = set()
    by_subject: dict[str, list[Extraction]] = defaultdict(list)
    for extraction in extractions:
        if extraction.confidence < min_confidence:
            continue
        if extraction.predicate == NAME_PREDICATE:
            continue
        if extraction.predicate not in ontology:
            continue
        by_subject[extraction.subject.strip()].append(extraction)

    for subject, subject_extractions in sorted(by_subject.items()):
        norm = normalize_text(subject)
        if not norm:
            continue
        if norm not in subject_ids:
            subject_ids[norm] = f"{source_name}:{len(subject_ids)}"
            kb.add_entity(Entity(subject_ids[norm], subject, entity_type))
        subject_id = subject_ids[norm]
        for extraction in subject_extractions:
            fact_key = (subject_id, extraction.predicate, normalize_text(extraction.object))
            if fact_key in seen:
                continue
            seen.add(fact_key)
            kb.add_fact(subject_id, extraction.predicate, Value.literal(extraction.object))
    return kb


def bootstrap_site(
    source_extractions: list[Extraction],
    ontology: Ontology,
    entity_type: str,
    target_documents: list[Document],
    config: CeresConfig | None = None,
    min_confidence: float = 0.7,
) -> tuple[KnowledgeBase, CeresResult]:
    """Extract-on-source → seed-KB → CERES-on-target.

    Returns the bootstrapped KB and the CERES result on the target site.
    """
    config = config or CeresConfig()
    kb = kb_from_extractions(
        source_extractions, ontology, entity_type, min_confidence
    )
    pipeline = CeresPipeline(kb, config)
    result = pipeline.run(target_documents, target_documents)
    return kb, result
