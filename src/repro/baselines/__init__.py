"""Baselines: Vertex++ wrapper induction, CERES-Baseline (pairwise distant
supervision), and CERES-Topic (topic identification without Algorithm 2)."""

from repro.baselines.ceres_baseline import CeresBaseline, MemoryBudgetExceeded
from repro.baselines.ceres_topic import AllMentionsAnnotator, make_ceres_topic_pipeline
from repro.baselines.vertex import TrainingPage, VertexPlusPlus, anchor_text

__all__ = [
    "CeresBaseline",
    "MemoryBudgetExceeded",
    "AllMentionsAnnotator",
    "make_ceres_topic_pipeline",
    "TrainingPage",
    "VertexPlusPlus",
    "anchor_text",
]
