"""CERES-Baseline: the original distant-supervision assumption (Section 5.2).

"This baseline operates on the original Distant Supervision Assumption;
that is, annotations are produced for all entity pairs on a page that are
involved in a triple in the seed KB. ... since there is no concept of a
page topic in this setting, our annotation must identify a pair of
subject-object nodes for a relation; to produce features for the pair, we
concatenate the features for each node. ... at extraction time ... we
identify potential entities on the page by string matching against the KB."

The paper reports this baseline running out of memory on the Movie
vertical ("could not complete run due to out-of-memory issue", Table 3).
We reproduce that failure mode with an explicit pair budget: when the
number of candidate annotations or extraction pairs exceeds the budget, a
:class:`MemoryBudgetExceeded` error is raised and the experiment records
``NA``, exactly as in the paper.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.core.config import CeresConfig
from repro.core.extraction.extractor import Extraction
from repro.core.extraction.features import NodeFeatureExtractor
from repro.dom.node import TextNode
from repro.dom.parser import Document
from repro.kb.matcher import PageMatcher
from repro.kb.ontology import OTHER_LABEL
from repro.kb.store import KnowledgeBase
from repro.ml.features import FeatureVectorizer
from repro.ml.logistic import SoftmaxRegression

__all__ = ["MemoryBudgetExceeded", "CeresBaseline"]


class MemoryBudgetExceeded(RuntimeError):
    """Raised when the pairwise annotation/extraction space explodes."""


@dataclass
class _PairExample:
    page_index: int
    subject_node: TextNode
    object_node: TextNode
    label: str


class CeresBaseline:
    """Pairwise distantly supervised extractor."""

    def __init__(
        self,
        kb: KnowledgeBase,
        config: CeresConfig | None = None,
        pair_budget: int = 150_000,
    ) -> None:
        self.kb = kb
        self.config = config or CeresConfig()
        #: total candidate pairs the system may *examine* during annotation
        #: and extraction — the memory proxy (each examined pair costs a
        #: concatenated feature vector at paper scale).
        self.pair_budget = pair_budget
        self.matcher = PageMatcher(kb)
        self._relation_index: dict[tuple[str, tuple[str, str]], set[str]] = defaultdict(set)
        for triple in kb.triples:
            self._relation_index[(triple.subject, triple.object.key)].add(
                triple.predicate
            )
        self.feature_extractor: NodeFeatureExtractor | None = None
        self.vectorizer: FeatureVectorizer | None = None
        self.classifier: SoftmaxRegression | None = None
        self.examined_pairs = 0

    # -- annotation ------------------------------------------------------------

    def _candidate_nodes(
        self, document: Document
    ) -> tuple[list[tuple[TextNode, set[str]]], list[tuple[TextNode, set]]]:
        """(subject candidates, object candidates) for a page.

        Subject candidates are nodes matching KB *entities*; object
        candidates are nodes matching any KB value (entity or literal).
        """
        match = self.matcher.match(document)
        subjects: list[tuple[TextNode, set[str]]] = []
        objects: list[tuple[TextNode, set]] = []
        for node in document.text_fields():
            entities = match.entities_in_field(node)
            if entities:
                subjects.append((node, entities))
            keys = match.value_keys_in_field(node)
            if keys:
                objects.append((node, keys))
        return subjects, objects

    def _charge(self, n_pairs: int, context: str) -> None:
        self.examined_pairs += n_pairs
        if self.examined_pairs > self.pair_budget:
            raise MemoryBudgetExceeded(
                f"examined {self.examined_pairs} candidate pairs (> budget "
                f"{self.pair_budget}) during {context}"
            )

    def annotate(self, documents: list[Document]) -> list[_PairExample]:
        """All node pairs whose candidates share a KB triple.

        This is the original distant supervision assumption: no topic, no
        mention selection — every co-occurring related pair is labeled.
        """
        examples: list[_PairExample] = []
        rng = random.Random(self.config.random_seed)
        for page_index, document in enumerate(documents):
            subjects, objects = self._candidate_nodes(document)
            self._charge(len(subjects) * len(objects), f"annotation of page {page_index}")
            positives_on_page = 0
            for node_s, subject_ids in subjects:
                for node_o, object_keys in objects:
                    if node_s is node_o:
                        continue
                    predicates: set[str] = set()
                    for subject_id in subject_ids:
                        for object_key in object_keys:
                            predicates |= self._relation_index.get(
                                (subject_id, object_key), set()
                            )
                    for predicate in sorted(predicates):
                        examples.append(
                            _PairExample(page_index, node_s, node_o, predicate)
                        )
                        positives_on_page += 1
            # Negative pairs: random non-related candidate pairs.
            if positives_on_page and subjects and len(objects) >= 2:
                wanted = self.config.negatives_per_positive * positives_on_page
                for _ in range(wanted):
                    node_s, _ = subjects[rng.randrange(len(subjects))]
                    node_o, _ = objects[rng.randrange(len(objects))]
                    if node_s is node_o:
                        continue
                    examples.append(
                        _PairExample(page_index, node_s, node_o, OTHER_LABEL)
                    )
        return examples

    # -- training -----------------------------------------------------------------

    def _pair_features(
        self, example_subject: TextNode, example_object: TextNode, document: Document
    ) -> dict[str, float]:
        assert self.feature_extractor is not None
        features: dict[str, float] = {}
        for name, value in self.feature_extractor.features(
            example_subject, document
        ).items():
            features[f"s:{name}"] = value
        for name, value in self.feature_extractor.features(
            example_object, document
        ).items():
            features[f"o:{name}"] = value
        return features

    def fit(self, documents: list[Document]) -> CeresBaseline:
        """Annotate pairs and train the pair classifier."""
        examples = self.annotate(documents)
        if not examples:
            raise ValueError("pairwise annotation produced no examples")
        self.feature_extractor = NodeFeatureExtractor(self.config).fit(documents)
        samples = [
            self._pair_features(e.subject_node, e.object_node, documents[e.page_index])
            for e in examples
        ]
        labels = [e.label for e in examples]
        self.vectorizer = FeatureVectorizer()
        X = self.vectorizer.fit_transform(samples)
        self.classifier = SoftmaxRegression(
            C=self.config.classifier_C, max_iter=self.config.classifier_max_iter
        )
        self.classifier.fit(X, labels)
        return self

    # -- extraction -----------------------------------------------------------------

    def extract_page(
        self,
        document: Document,
        page_index: int = 0,
        threshold: float | None = None,
        max_pairs_per_page: int = 20_000,
    ) -> list[Extraction]:
        """Classify all candidate subject/object node pairs on a page."""
        if self.classifier is None or self.vectorizer is None:
            raise RuntimeError("baseline is not fitted")
        if threshold is None:
            threshold = self.config.confidence_threshold
        subjects, objects = self._candidate_nodes(document)
        if not subjects or not objects:
            return []
        n_pairs = len(subjects) * len(objects)
        if n_pairs > max_pairs_per_page:
            raise MemoryBudgetExceeded(
                f"{n_pairs} candidate pairs on one page exceeds the budget"
            )
        self._charge(n_pairs, f"extraction from page {page_index}")
        pairs = []
        samples = []
        for node_s, _ in subjects:
            for node_o, _ in objects:
                if node_s is node_o:
                    continue
                pairs.append((node_s, node_o))
                samples.append(self._pair_features(node_s, node_o, document))
        if not pairs:
            return []
        X = self.vectorizer.transform(samples)
        probabilities = self.classifier.predict_proba(X)
        labels = list(self.classifier.classes_)
        best_columns = np.argmax(probabilities, axis=1)
        extractions: list[Extraction] = []
        for row, (node_s, node_o) in enumerate(pairs):
            column = int(best_columns[row])
            label = labels[column]
            confidence = float(probabilities[row, column])
            if label != OTHER_LABEL and confidence >= threshold:
                extractions.append(
                    Extraction(
                        subject=node_s.text.strip(),
                        predicate=label,
                        object=node_o.text.strip(),
                        confidence=confidence,
                        page_index=page_index,
                        node=node_o,
                    )
                )
        return extractions

    def extract(
        self, documents: list[Document], threshold: float | None = None
    ) -> list[Extraction]:
        results: list[Extraction] = []
        for page_index, document in enumerate(documents):
            results.extend(self.extract_page(document, page_index, threshold))
        return results
