"""CERES-Topic baseline (Section 5.2).

"This method applies Algorithm 1 for topic identification, but then
annotates all mentions of an object with all applicable relations,
bypassing the relation annotation process described in Algorithm 2."

The annotator below is interface-compatible with
:class:`repro.core.annotation.relation.RelationAnnotator`, so the regular
pipeline runs unchanged with it plugged in — exactly the ablation the
paper performs in Tables 5 and 6.
"""

from __future__ import annotations

from repro.core.annotation.relation import RelationAnnotator
from repro.core.annotation.types import AnnotatedPage, Annotation, TopicResult
from repro.core.config import CeresConfig
from repro.core.pipeline import CeresPipeline
from repro.dom.parser import Document
from repro.kb.matcher import PageMatcher
from repro.kb.store import KnowledgeBase

__all__ = ["AllMentionsAnnotator", "make_ceres_topic_pipeline"]


class AllMentionsAnnotator(RelationAnnotator):
    """Annotate every mention of every object with every applicable relation."""

    def annotate(
        self,
        documents: list[Document],
        topics: dict[int, TopicResult],
    ) -> list[AnnotatedPage]:
        annotated_pages: list[AnnotatedPage] = []
        for page_index in sorted(topics):
            topic = topics[page_index]
            document = documents[page_index]
            annotations: list[Annotation] = []
            for predicate, objects in sorted(
                self.collect_object_mentions(document, topic).items()
            ):
                for obj in objects:
                    annotations.extend(
                        Annotation(predicate, mention, obj.object_key, obj.object_text)
                        for mention in obj.mentions
                    )
            if len(annotations) >= self.config.min_annotations_per_page:
                annotated_pages.append(
                    AnnotatedPage(
                        page_index=page_index,
                        document=document,
                        topic_entity_id=topic.entity_id,
                        topic_node=topic.node,
                        annotations=annotations,
                    )
                )
        return annotated_pages


def make_ceres_topic_pipeline(
    kb: KnowledgeBase, config: CeresConfig | None = None
) -> CeresPipeline:
    """A pipeline wired with the all-mentions annotator."""
    config = config or CeresConfig()
    pipeline = CeresPipeline(kb, config)
    pipeline.annotator = AllMentionsAnnotator(kb, config, pipeline.matcher)
    return pipeline
