"""Vertex++: supervised wrapper induction (Section 5.2, baseline 1).

"We implemented the Vertex wrapper learning algorithm [17], which uses
manual annotations to learn extraction patterns, expressed by XPaths.  We
further improved the extraction quality by using a richer feature set.
Training annotations were manually crafted ... Vertex++ required two pages
per site."

Given a handful of *perfectly annotated* pages, the learner:

1. groups each predicate's annotated node XPaths by shape and generalizes
   every group into an XPath pattern (wildcarding indices that vary —
   list members, page-to-page drift);
2. records, per pattern, the set of *anchor texts* observed near the
   annotated nodes (the "richer feature set"): the label string of the
   enclosing row or section.  At extraction time a node matching the
   pattern must also match an anchor when the training anchors were
   consistent — this is what lets Vertex++ distinguish a Director row
   from a Writer row that shares a template shape.

Extraction applies every pattern to every page, using the ``name``
pattern's match as the triple subject.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.extraction.extractor import Extraction
from repro.dom.node import TextNode
from repro.dom.parser import Document
from repro.dom.xpath import XPathPattern, generalize_paths, pattern_matches, xpath_steps
from repro.kb.ontology import NAME_PREDICATE

__all__ = ["VertexPlusPlus", "TrainingPage", "anchor_text"]


@dataclass
class TrainingPage:
    """A manually annotated page: predicate -> annotated text nodes."""

    document: Document
    annotations: dict[str, list[TextNode]]


@dataclass
class _Rule:
    """One learned extraction rule."""

    predicate: str
    pattern: XPathPattern
    anchors: frozenset[str]  # empty = no anchor check


def anchor_text(node: TextNode, max_levels: int = 2) -> str | None:
    """The label-like string nearest to ``node``.

    Looks for the last text field preceding ``node`` within its first
    ``max_levels`` enclosing elements — for key-value rows this is the row
    label ("Director:"), for list sections the section heading.
    """
    target_element = node.parent
    if target_element is None:
        return None
    ancestors = []
    element = target_element
    for _ in range(max_levels):
        if element.parent is None:
            break
        element = element.parent
        ancestors.append(element)
    for ancestor in ancestors:
        last_before: TextNode | None = None
        for text_node in ancestor.iter_text_nodes():
            if text_node is node:
                break
            if text_node.text.strip():
                last_before = text_node
        if last_before is not None and last_before is not node:
            return last_before.text.strip()
    return None


class VertexPlusPlus:
    """Wrapper-induction extractor learned from manual annotations."""

    def __init__(self) -> None:
        self.rules: list[_Rule] = []

    # -- learning ------------------------------------------------------------

    def fit(self, pages: list[TrainingPage]) -> VertexPlusPlus:
        """Learn XPath rules (+anchors) from annotated pages."""
        # predicate -> shape (tag tuple) -> (paths, anchors)
        grouped: dict[str, dict[tuple, tuple[list, set]]] = defaultdict(dict)
        for page in pages:
            for predicate, nodes in page.annotations.items():
                for node in nodes:
                    steps = xpath_steps(node)
                    shape = tuple(tag for tag, _ in steps)
                    paths, anchors = grouped[predicate].setdefault(shape, ([], set()))
                    paths.append(steps)
                    anchor = anchor_text(node)
                    if anchor is not None:
                        anchors.add(anchor)
        self.rules = []
        for predicate, shapes in grouped.items():
            for shape, (paths, anchors) in shapes.items():
                pattern = generalize_paths(paths)
                if pattern is None:
                    continue
                # Anchors are enforced only when training saw a consistent,
                # small anchor vocabulary (labels), not free text.
                use_anchors = 0 < len(anchors) <= 3
                self.rules.append(
                    _Rule(predicate, pattern, frozenset(anchors) if use_anchors else frozenset())
                )
        return self

    # -- extraction --------------------------------------------------------------

    def _matches(self, rule: _Rule, node: TextNode, steps: XPathPattern) -> bool:
        if not pattern_matches(rule.pattern, steps):
            return False
        if rule.anchors:
            return anchor_text(node) in rule.anchors
        return True

    def extract_page(self, document: Document, page_index: int = 0) -> list[Extraction]:
        """Apply all rules to one page."""
        fields = [
            (node, xpath_steps(node))
            for node in document.text_fields()
            if node.text.strip()
        ]
        subject: str | None = None
        for rule in self.rules:
            if rule.predicate != NAME_PREDICATE:
                continue
            for node, steps in fields:
                if self._matches(rule, node, steps):
                    subject = node.text.strip()
                    break
            if subject is not None:
                break
        if subject is None:
            return []
        extractions: list[Extraction] = []
        seen: set[tuple[str, int]] = set()
        for rule in self.rules:
            if rule.predicate == NAME_PREDICATE:
                continue
            for node, steps in fields:
                if self._matches(rule, node, steps):
                    key = (rule.predicate, id(node))
                    if key in seen:
                        continue
                    seen.add(key)
                    extractions.append(
                        Extraction(
                            subject=subject,
                            predicate=rule.predicate,
                            object=node.text.strip(),
                            confidence=1.0,
                            page_index=page_index,
                            node=node,
                        )
                    )
        return extractions

    def extract(self, documents: list[Document]) -> list[Extraction]:
        results: list[Extraction] = []
        for page_index, document in enumerate(documents):
            results.extend(self.extract_page(document, page_index))
        return results
