"""Page template clustering (Vertex-style structural shingling)."""

from repro.clustering.templates import TemplateCluster, cluster_pages, page_signature

__all__ = ["TemplateCluster", "cluster_pages", "page_signature"]
