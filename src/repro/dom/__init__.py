"""DOM tree, HTML parser, XPath engine, and serializer (lxml substitute)."""

from repro.dom.node import ElementNode, Node, TextNode
from repro.dom.parser import Document, parse_html
from repro.dom.serialize import to_html
from repro.dom.xpath import (
    XPathPattern,
    evaluate_xpath,
    format_steps,
    generalize_paths,
    parse_xpath,
    pattern_matches,
    xpath_steps,
)

__all__ = [
    "ElementNode",
    "Node",
    "TextNode",
    "Document",
    "parse_html",
    "to_html",
    "XPathPattern",
    "evaluate_xpath",
    "format_steps",
    "generalize_paths",
    "parse_xpath",
    "pattern_matches",
    "xpath_steps",
]
