"""DOM → HTML serialization.

Primarily used by tests (parse → serialize → parse stability) and for
debugging generated pages.  Serialization escapes text and attribute
values, renders void elements without closing tags, and emits no
insignificant whitespace, so a serialized tree re-parses to an identical
structure.
"""

from __future__ import annotations

from html import escape

from repro.dom.node import VOID_ELEMENTS, ElementNode, TextNode

__all__ = ["to_html"]


def to_html(node: ElementNode | TextNode) -> str:
    """Serialize a node (and its subtree) to an HTML string."""
    parts: list[str] = []
    _serialize(node, parts)
    return "".join(parts)


def _serialize(node: ElementNode | TextNode, parts: list[str]) -> None:
    if isinstance(node, TextNode):
        parts.append(escape(node.text, quote=False))
        return
    if node.tag == "#fragment":
        for child in node.children:
            _serialize(child, parts)
        return
    attrs = "".join(
        f' {name}="{escape(value, quote=True)}"' for name, value in node.attrs.items()
    )
    if node.tag in VOID_ELEMENTS:
        parts.append(f"<{node.tag}{attrs}>")
        return
    parts.append(f"<{node.tag}{attrs}>")
    for child in node.children:
        _serialize(child, parts)
    parts.append(f"</{node.tag}>")
