"""HTML → DOM tree parsing.

Built on the standard library's :class:`html.parser.HTMLParser`.  The paper
used lxml; this parser provides the same data model (see
:mod:`repro.dom.node`) for the well-formed-ish HTML that semi-structured
template engines emit.  It handles:

* void elements (``<br>``, ``<img>``, …) with or without self-closing
  slashes,
* implicit closing of ``<p>``/``<li>``/``<tr>``/``<td>``/… when a sibling
  opens,
* stray end tags (ignored) and unclosed tags at EOF (auto-closed),
* merging of adjacent text runs into a single :class:`TextNode`.

The resulting :class:`Document` exposes ``text_fields()`` — the
document-order list of visible, non-whitespace text nodes that CERES
annotates and classifies.

Hostile-input hardening: :func:`parse_html` accepts ``max_depth`` /
``max_nodes`` caps (the serving tier passes
:attr:`~repro.core.config.CeresConfig.max_parse_depth` /
:attr:`~repro.core.config.CeresConfig.max_parse_nodes`), raising
:class:`ParseLimitError` — a permanently-classified error — instead of
letting a POSTed ``<div><div><div>…`` bomb blow the recursion limit or
RAM.  Trusted corpus files parse uncapped by default.
"""

from __future__ import annotations

import itertools
from html.parser import HTMLParser

from repro.dom.node import NON_CONTENT_ELEMENTS, VOID_ELEMENTS, ElementNode, TextNode

__all__ = ["Document", "ParseLimitError", "parse_html"]


class ParseLimitError(ValueError):
    """Parsed HTML exceeded its structural budget (depth or node count).

    Classified *permanent* by
    :func:`repro.runtime.resilience.classify_error` (a ``ValueError``:
    retrying the same payload cannot help) — the serving tier answers it
    with a client-error status instead of melting down.
    """

#: Monotonic source of :attr:`Document.doc_id` values.  ``next()`` on an
#: ``itertools.count`` is atomic under the GIL, so concurrent parsing
#: threads still get distinct ids; worker processes each start their own
#: sequence, which is fine — caches never cross a process boundary.
_DOC_ID_COUNTER = itertools.count(1)

#: tag -> set of open tags it implicitly closes when encountered.
_IMPLICIT_CLOSERS: dict[str, frozenset[str]] = {
    "li": frozenset({"li"}),
    "p": frozenset({"p"}),
    "tr": frozenset({"tr", "td", "th"}),
    "td": frozenset({"td", "th"}),
    "th": frozenset({"td", "th"}),
    "option": frozenset({"option"}),
    "dt": frozenset({"dt", "dd"}),
    "dd": frozenset({"dt", "dd"}),
    "thead": frozenset({"tr", "td", "th"}),
    "tbody": frozenset({"tr", "td", "th", "thead"}),
}


class Document:
    """A parsed HTML page.

    Attributes:
        root: the ``<html>`` element (or a synthetic root for fragments).
        url: optional source identifier, carried through for reporting.
        doc_id: process-unique serial assigned at construction.  Unlike
            ``id(self)``, a ``doc_id`` is never recycled after garbage
            collection, so page-scoped caches (match results, feature
            registries) can key on it without ever serving one page's
            cached state for another.
    """

    def __init__(self, root: ElementNode, url: str = "") -> None:
        self.root = root
        self.url = url
        self.doc_id: int = next(_DOC_ID_COUNTER)
        self._text_fields: list[TextNode] | None = None
        self._xpath_index: dict[str, ElementNode | TextNode] | None = None
        #: memoized structural signature; written by
        #: :func:`repro.clustering.templates.page_signature` so clustering
        #: and cluster assignment traverse the DOM once per page, not once
        #: per batch.
        self._page_signature: frozenset[str] | None = None

    def __repr__(self) -> str:
        return f"<Document url={self.url!r} fields={len(self.text_fields())}>"

    def text_fields(self) -> list[TextNode]:
        """Document-order visible text nodes with non-whitespace content.

        The list is computed once and cached; CERES iterates it many times
        (matching, annotation, feature extraction, extraction).  The walk
        is inlined (no generator) because it runs once per freshly parsed
        page on the serving hot path.
        """
        if self._text_fields is None:
            fields: list[TextNode] = []
            append_field = fields.append
            stack: list = [self.root]
            pop = stack.pop
            extend = stack.extend
            while stack:
                node = pop()
                if node.is_text:
                    if node.text.strip():
                        append_field(node)
                elif node.tag not in NON_CONTENT_ELEMENTS:
                    extend(reversed(node.children))
            self._text_fields = fields
        return self._text_fields

    def iter_elements(self):
        """Document-order iteration over all elements."""
        return self.root.iter_elements()

    def node_at(self, xpath: str):
        """Return the node at an absolute XPath, or ``None``.

        Both element paths and ``.../text()[i]`` paths are supported.  An
        index over all node XPaths is built lazily on first use.
        """
        if self._xpath_index is None:
            index: dict[str, ElementNode | TextNode] = {}
            for element in self.root.iter_elements():
                index[element.xpath] = element
                for child in element.children:
                    if child.is_text:
                        index[child.xpath] = child
            self._xpath_index = index
        return self._xpath_index.get(xpath)


class _TreeBuilder(HTMLParser):
    """Incremental DOM construction driven by HTMLParser events.

    ``max_depth`` caps how deep the open-element stack may grow and
    ``max_nodes`` caps total nodes built (elements + text); exceeding
    either raises :class:`ParseLimitError` mid-feed, before the hostile
    payload can exhaust the recursion limit (xpath/feature walks recurse
    per level) or memory.  ``None`` disables a cap.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        max_nodes: int | None = None,
    ) -> None:
        super().__init__(convert_charrefs=True)
        self.synthetic_root = ElementNode("#fragment")
        self._stack: list[ElementNode] = [self.synthetic_root]
        self._pending_text: list[str] = []
        self._max_depth = max_depth
        self._max_nodes = max_nodes
        self._n_nodes = 0

    def _count_node(self) -> None:
        self._n_nodes += 1
        if self._max_nodes is not None and self._n_nodes > self._max_nodes:
            raise ParseLimitError(
                f"document exceeds max_parse_nodes={self._max_nodes}: "
                f"refusing to build node {self._n_nodes}"
            )

    # -- text buffering -------------------------------------------------

    def _flush_text(self) -> None:
        if not self._pending_text:
            return
        text = "".join(self._pending_text)
        self._pending_text.clear()
        parent = self._stack[-1]
        # Merge with a preceding text sibling if one exists (HTMLParser may
        # deliver one logical run as several handle_data calls).
        if parent.children and parent.children[-1].is_text:
            last = parent.children[-1]
            last.text += text
        else:
            if not text:
                return
            self._count_node()
            parent.append(TextNode(text))

    # -- HTMLParser callbacks --------------------------------------------

    def handle_starttag(self, tag: str, attrs: list[tuple[str, str | None]]) -> None:
        self._flush_text()
        closers = _IMPLICIT_CLOSERS.get(tag)
        if closers:
            while len(self._stack) > 1 and self._stack[-1].tag in closers:
                self._stack.pop()
        if (
            self._max_depth is not None
            and tag not in VOID_ELEMENTS
            and len(self._stack) > self._max_depth
        ):
            raise ParseLimitError(
                f"document exceeds max_parse_depth={self._max_depth} "
                f"at <{tag}>"
            )
        self._count_node()
        element = ElementNode(tag, {k: (v or "") for k, v in attrs})
        self._stack[-1].append(element)
        if tag not in VOID_ELEMENTS:
            self._stack.append(element)

    def handle_startendtag(self, tag: str, attrs: list[tuple[str, str | None]]) -> None:
        self._flush_text()
        self._count_node()
        element = ElementNode(tag, {k: (v or "") for k, v in attrs})
        self._stack[-1].append(element)

    def handle_endtag(self, tag: str) -> None:
        self._flush_text()
        if tag in VOID_ELEMENTS:
            return
        # Pop to the matching open tag; ignore stray end tags entirely.
        for i in range(len(self._stack) - 1, 0, -1):
            if self._stack[i].tag == tag:
                del self._stack[i:]
                return

    def handle_data(self, data: str) -> None:
        if data:
            self._pending_text.append(data)

    def handle_comment(self, data: str) -> None:
        # Comments carry no extractable content; drop them.
        self._flush_text()

    def close(self) -> None:
        super().close()
        self._flush_text()
        del self._stack[1:]


def parse_html(
    html: str,
    url: str = "",
    *,
    max_depth: int | None = None,
    max_nodes: int | None = None,
) -> Document:
    """Parse an HTML string into a :class:`Document`.

    If the markup contains an ``<html>`` element it becomes the document
    root; otherwise the synthetic fragment root is used (useful in tests
    operating on snippets).

    ``max_depth`` / ``max_nodes`` cap the tree a hostile payload may
    build (raising :class:`ParseLimitError`); untrusted input — anything
    POSTed to the serving tier — should always pass the
    :class:`~repro.core.config.CeresConfig` caps.  Defaults are
    uncapped, preserving behaviour for trusted corpus files.
    """
    builder = _TreeBuilder(max_depth=max_depth, max_nodes=max_nodes)
    builder.feed(html)
    builder.close()
    root = builder.synthetic_root
    for child in root.element_children():
        if child.tag == "html":
            # Detach so the <html> element is a true root with depth 0 and
            # an xpath of /html[1].
            child.parent = None
            child.tag_index = 1
            return Document(child, url=url)
    return Document(root, url=url)


def strip_non_content(document: Document) -> int:
    """Remove script/style subtrees in place; returns number removed.

    Parsing keeps non-content elements (their presence can matter for
    sibling indices); this helper exists for callers who want physically
    smaller trees, e.g. before serializing corpora to disk.
    """
    removed = 0
    for element in list(document.root.iter_elements()):
        kept = []
        for child in element.children:
            if isinstance(child, ElementNode) and child.tag in NON_CONTENT_ELEMENTS:
                removed += 1
            else:
                kept.append(child)
        if len(kept) != len(element.children):
            element.children = kept
            element.reindex_children()
    if removed:
        # The structural signature (and any cached signature-derived state)
        # no longer reflects the tree.
        document._page_signature = None
    return removed
