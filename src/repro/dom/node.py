"""DOM tree node types.

The paper represents each webpage as a DOM tree in which "a node in the
tree can be uniquely defined by an absolute XPath" (Section 2.1).  Two node
kinds exist:

* :class:`ElementNode` — an HTML element with a tag, attributes, and
  children.
* :class:`TextNode` — a run of visible text.  Text nodes are the unit of
  annotation and classification in CERES: "most entity names correspond to
  full texts in a DOM tree node".

Absolute XPaths use 1-based sibling indices counted per tag name, e.g.
``/html[1]/body[1]/div[2]/span[1]`` and ``.../span[1]/text()[1]`` for text
nodes.  XPaths are computed lazily and cached; trees are treated as
immutable once built by the parser.
"""

from __future__ import annotations

from collections.abc import Iterator

__all__ = ["ElementNode", "TextNode", "Node"]

#: HTML void elements: no closing tag, never have children.
VOID_ELEMENTS = frozenset(
    {
        "area", "base", "br", "col", "embed", "hr", "img", "input",
        "link", "meta", "param", "source", "track", "wbr",
    }
)

#: Elements whose text content is never a visible text field.
NON_CONTENT_ELEMENTS = frozenset({"script", "style", "noscript", "template"})


class ElementNode:
    """An HTML element in the DOM tree."""

    __slots__ = (
        "tag",
        "attrs",
        "parent",
        "children",
        "tag_index",
        "child_position",
        "element_index",
        "_element_children",
        "_xpath",
        "_depth",
        "_scoring",
    )

    def __init__(self, tag: str, attrs: dict[str, str] | None = None) -> None:
        self.tag = tag
        self.attrs: dict[str, str] = attrs or {}
        self.parent: ElementNode | None = None
        self.children: list[Node] = []
        #: 1-based index among same-tag siblings (the XPath step index).
        self.tag_index: int = 1
        #: 0-based position among *all* siblings (element and text).
        self.child_position: int = 0
        #: 0-based position among *element* siblings, assigned at append
        #: time so feature extraction never runs an O(siblings) index scan.
        self.element_index: int = 0
        self._element_children: list[ElementNode] = []
        self._xpath: str | None = None
        self._depth: int | None = None
        #: Scratch record for the batched scorer
        #: (:mod:`repro.core.extraction.scoring`): a token-validated list
        #: of per-scoring-pass caches.  Opaque to everything else; one
        #: scoring pass per document at a time.
        self._scoring: list | None = None

    def __repr__(self) -> str:
        return f"<ElementNode {self.xpath}>"

    @property
    def is_text(self) -> bool:
        return False

    @property
    def xpath(self) -> str:
        """Absolute XPath of this element, e.g. ``/html[1]/body[1]/div[2]``."""
        if self._xpath is None:
            if self.parent is None:
                self._xpath = f"/{self.tag}[{self.tag_index}]"
            else:
                self._xpath = f"{self.parent.xpath}/{self.tag}[{self.tag_index}]"
        return self._xpath

    @property
    def depth(self) -> int:
        """Number of ancestors (the root has depth 0)."""
        if self._depth is None:
            self._depth = 0 if self.parent is None else self.parent.depth + 1
        return self._depth

    @property
    def root(self) -> ElementNode:
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def append(self, child: Node) -> None:
        """Attach ``child`` as the last child, fixing up indices."""
        child.parent = self
        child.child_position = len(self.children)
        if isinstance(child, ElementNode):
            element_siblings = self._element_children
            child.tag_index = (
                sum(1 for sibling in element_siblings if sibling.tag == child.tag)
                + 1
            )
            child.element_index = len(element_siblings)
            element_siblings.append(child)
        else:
            child.text_index = (
                sum(1 for sibling in self.children if sibling.is_text) + 1
            )
        self.children.append(child)

    def ancestors(self, include_self: bool = False) -> Iterator[ElementNode]:
        """Yield ancestors from the parent upward (optionally self first)."""
        node: ElementNode | None = self if include_self else self.parent
        while node is not None:
            yield node
            node = node.parent

    def iter_elements(self) -> Iterator[ElementNode]:
        """Depth-first, document-order iteration over element descendants,
        including this node."""
        stack: list[Node] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, ElementNode):
                yield node
                stack.extend(reversed(node.children))

    def iter_text_nodes(self) -> Iterator[TextNode]:
        """Depth-first, document-order iteration over descendant text nodes.

        Text inside non-content elements (``script``/``style``/…) is skipped.
        """
        stack: list[Node] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, TextNode):
                yield node
            elif node.tag not in NON_CONTENT_ELEMENTS:
                stack.extend(reversed(node.children))

    def element_children(self) -> list[ElementNode]:
        """Child nodes that are elements, in document order.

        Maintained incrementally by :meth:`append` (trees are immutable
        once parsed), so this is O(1); the returned list is internal state
        and must not be mutated.  Each child's position in it is its
        ``element_index``.
        """
        return self._element_children

    def reindex_children(self) -> None:
        """Recompute element-sibling bookkeeping after direct ``children``
        surgery (e.g. :func:`repro.dom.parser.strip_non_content`)."""
        self._element_children = [
            child for child in self.children if isinstance(child, ElementNode)
        ]
        for index, child in enumerate(self._element_children):
            child.element_index = index

    def text_content(self, separator: str = " ") -> str:
        """Concatenated text of all descendant text nodes."""
        return separator.join(t.text for t in self.iter_text_nodes())

    def get(self, attr: str, default: str = "") -> str:
        """Attribute value lookup with a default."""
        return self.attrs.get(attr, default)

    def subtree_size(self) -> int:
        """Total number of nodes (elements + text) in this subtree."""
        count = 0
        stack: list[Node] = [self]
        while stack:
            node = stack.pop()
            count += 1
            if isinstance(node, ElementNode):
                stack.extend(node.children)
        return count

    def contains(self, other: Node) -> bool:
        """True if ``other`` is this node or a descendant of it."""
        node: Node | None = other
        while node is not None:
            if node is self:
                return True
            node = node.parent
        return False


class TextNode:
    """A run of visible text within an element."""

    __slots__ = ("text", "parent", "text_index", "child_position", "_xpath")

    def __init__(self, text: str) -> None:
        self.text = text
        self.parent: ElementNode | None = None
        #: 1-based index among text-node siblings (the ``text()[i]`` index).
        self.text_index: int = 1
        self.child_position: int = 0
        self._xpath: str | None = None

    def __repr__(self) -> str:
        preview = self.text if len(self.text) <= 30 else self.text[:27] + "..."
        return f"<TextNode {preview!r}>"

    @property
    def is_text(self) -> bool:
        return True

    @property
    def xpath(self) -> str:
        """Absolute XPath, e.g. ``/html[1]/body[1]/p[1]/text()[1]``."""
        if self._xpath is None:
            parent_path = "" if self.parent is None else self.parent.xpath
            self._xpath = f"{parent_path}/text()[{self.text_index}]"
        return self._xpath

    @property
    def element(self) -> ElementNode:
        """The enclosing element (raises if detached)."""
        if self.parent is None:
            raise ValueError("detached text node has no enclosing element")
        return self.parent

    @property
    def depth(self) -> int:
        return 0 if self.parent is None else self.parent.depth + 1

    def ancestors(self, include_self: bool = False) -> Iterator[ElementNode]:
        """Yield ancestor elements from the parent upward.

        ``include_self`` is accepted for interface parity with
        :class:`ElementNode` but ignored (a text node is not an element).
        """
        node = self.parent
        while node is not None:
            yield node
            node = node.parent


Node = ElementNode | TextNode
