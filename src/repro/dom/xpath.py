"""Absolute XPath parsing, evaluation, and generalization.

CERES manipulates XPaths in three ways:

* **as node identities** — every node is addressed by its absolute XPath
  (``/html[1]/body[1]/div[2]/span[1]/text()[1]``);
* **as cluster members** — relation annotation clusters mention XPaths by
  Levenshtein distance over their steps (Section 3.2.2);
* **as patterns** — negative-example filtering (Section 4.1) and the
  Vertex++ baseline generalize a set of XPaths into a pattern that wildcards
  the indices at which the set disagrees ("differ only in indices of their
  XPaths … part of the same list").

A *step* is ``(tag, index)`` with ``index=None`` meaning wildcard.  The
text-node pseudo-step uses tag ``"text()"``.
"""

from __future__ import annotations

import re

from repro.dom.node import ElementNode, TextNode

__all__ = [
    "XPathPattern",
    "parse_xpath",
    "format_steps",
    "xpath_steps",
    "evaluate_xpath",
    "generalize_paths",
    "pattern_matches",
]

_STEP_RE = re.compile(r"([^/\[\]]+)(?:\[(\d+|\*)\])?$")

Step = tuple[str, int | None]
XPathPattern = tuple[Step, ...]


def parse_xpath(xpath: str) -> XPathPattern:
    """Parse an absolute XPath string into a tuple of ``(tag, index)`` steps.

    A missing or ``*`` index parses as ``None`` (wildcard).

    >>> parse_xpath("/html[1]/body[1]/div[*]")
    (('html', 1), ('body', 1), ('div', None))
    """
    if not xpath.startswith("/"):
        raise ValueError(f"not an absolute XPath: {xpath!r}")
    steps: list[Step] = []
    for raw in xpath.strip("/").split("/"):
        match = _STEP_RE.match(raw)
        if not match:
            raise ValueError(f"malformed XPath step {raw!r} in {xpath!r}")
        tag, index = match.groups()
        if index is None or index == "*":
            steps.append((tag, None))
        else:
            steps.append((tag, int(index)))
    return tuple(steps)


def format_steps(steps: XPathPattern) -> str:
    """Render steps back into an XPath string (wildcards as ``[*]``).

    >>> format_steps((("html", 1), ("div", None)))
    '/html[1]/div[*]'
    """
    parts = []
    for tag, index in steps:
        parts.append(f"{tag}[{index if index is not None else '*'}]")
    return "/" + "/".join(parts)


def xpath_steps(node: ElementNode | TextNode) -> XPathPattern:
    """Steps of a live node's absolute XPath (cheap: no string round-trip)."""
    steps: list[Step] = []
    current = node
    while current is not None:
        if isinstance(current, TextNode):
            steps.append(("text()", current.text_index))
        else:
            steps.append((current.tag, current.tag_index))
        current = current.parent
    steps.reverse()
    return tuple(steps)


def evaluate_xpath(root: ElementNode, xpath: str | XPathPattern):
    """Return the node at an absolute (non-wildcard) XPath, or ``None``.

    The first step must match the root element.  Supports a trailing
    ``text()[i]`` step, returning the i-th text-node child.
    """
    steps = parse_xpath(xpath) if isinstance(xpath, str) else xpath
    if not steps:
        return None
    tag, index = steps[0]
    if tag != root.tag or (index is not None and index != root.tag_index):
        return None
    current: ElementNode | None = root
    for tag, index in steps[1:]:
        if current is None:
            return None
        if tag == "text()":
            wanted = 1 if index is None else index
            for child in current.children:
                if child.is_text and child.text_index == wanted:
                    return child
            return None
        found = None
        for child in current.children:
            if isinstance(child, ElementNode) and child.tag == tag:
                if index is None or child.tag_index == index:
                    found = child
                    break
        current = found
    return current


def generalize_paths(paths: list[XPathPattern]) -> XPathPattern | None:
    """Generalize same-shape paths by wildcarding disagreeing indices.

    Returns ``None`` when the paths differ in length or in any tag —
    generalization is only meaningful for nodes produced by the same
    template list.  With a single path, that path is returned unchanged.

    >>> a = parse_xpath("/html[1]/div[1]/span[2]")
    >>> b = parse_xpath("/html[1]/div[1]/span[5]")
    >>> format_steps(generalize_paths([a, b]))
    '/html[1]/div[1]/span[*]'
    """
    if not paths:
        return None
    first = paths[0]
    for other in paths[1:]:
        if len(other) != len(first):
            return None
        for (tag_a, _), (tag_b, _) in zip(first, other):
            if tag_a != tag_b:
                return None
    generalized: list[Step] = []
    for position, (tag, index) in enumerate(first):
        agreed: int | None = index
        for other in paths[1:]:
            if other[position][1] != agreed:
                agreed = None
                break
        generalized.append((tag, agreed))
    return tuple(generalized)


def pattern_matches(pattern: XPathPattern, path: XPathPattern) -> bool:
    """True if ``path`` matches ``pattern`` (wildcards match any index).

    ``path`` itself may not contain wildcards in matched positions — a
    concrete index is required wherever the pattern specifies one.
    """
    if len(pattern) != len(path):
        return False
    for (pattern_tag, pattern_index), (path_tag, path_index) in zip(pattern, path):
        if pattern_tag != path_tag:
            return False
        if pattern_index is not None and pattern_index != path_index:
            return False
    return True
