"""Cross-site transfer: zero-shot extraction for sites without models.

CERES trains one model per site; ZeroShotCeres (PAPERS.md) shows that
restricting the representation to topology-relative features lets one
model trained across the sites of a vertical extract from a site it has
never seen.  This package is that path:

* :mod:`repro.transfer.features` —
  :class:`~repro.transfer.features.TransferFeatureExtractor`, the
  ``xfer:``-namespace-only node representation (tag topology, depth and
  layout buckets, predicate-name overlap, text shapes);
* :mod:`repro.transfer.model` —
  :class:`~repro.transfer.model.GlobalCeresModel`, serving unseen sites
  through the standard candidate-assembly path with extractions tagged
  ``model="transfer"``;
* :mod:`repro.transfer.trainer` — :func:`~repro.transfer.trainer.train_global`
  over pooled per-site distant supervision, plus the corpus-level entry
  point behind ``python -m repro train-global``;
* :mod:`repro.transfer.upgrade` —
  :class:`~repro.transfer.upgrade.BackgroundUpgrader`, training the
  per-site model off-thread and atomically swapping it into a live
  :class:`~repro.runtime.service.ExtractionService`.

Exports resolve lazily (PEP 562), mirroring :mod:`repro.runtime`: the
serving layer imports pieces of this package without dragging in the
training stack, and vice versa.
"""

from __future__ import annotations

import importlib

#: export name -> defining submodule.
_EXPORTS = {
    "TransferFeatureExtractor": "repro.transfer.features",
    "predicate_tokens": "repro.transfer.features",
    "shape_classes": "repro.transfer.features",
    "GlobalCeresModel": "repro.transfer.model",
    "TRANSFER_MODEL": "repro.transfer.model",
    "SiteExamples": "repro.transfer.trainer",
    "collect_site_examples": "repro.transfer.trainer",
    "train_global": "repro.transfer.trainer",
    "train_global_from_corpus": "repro.transfer.trainer",
    "BackgroundUpgrader": "repro.transfer.upgrade",
    "UpgradeReport": "repro.transfer.upgrade",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache so subsequent access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
