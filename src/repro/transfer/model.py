"""The cross-site global model: zero-shot serving for unseen sites.

:class:`GlobalCeresModel` is the ``xfer:``-namespace counterpart of the
per-site :class:`~repro.core.extraction.trainer.CeresModel`: the same
softmax node classifier over ``{predicates} ∪ {name} ∪ {OTHER}``, but
fed exclusively by :class:`~repro.transfer.features.TransferFeatureExtractor`
and trained across *many* sites of a vertical
(:func:`repro.transfer.trainer.train_global`) — so it can score a site
no per-site artifact exists for.

It deliberately satisfies the model interface
:class:`~repro.core.extraction.extractor.CeresExtractor` consumes
(``labels`` + ``score_pages``), so candidate assembly — name-node
identification, argmax-non-OTHER candidates, thresholding — is the
per-site code path, not a fork of it.  Scoring runs through the dict
vectorizer rather than a compiled :class:`BatchScorer`: the transfer
feature families (depth, layout, predicate overlap, shape) are not
window-invertible, and the fallback path is the cold path by design.

Extractions are tagged ``model="transfer"`` so downstream consumers
(fusion, output rows, callers deciding whether to trigger a background
upgrade) can tell reduced-precision zero-shot triples from per-site
ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.config import CeresConfig
from repro.core.extraction.extractor import (
    CeresExtractor,
    Extraction,
    PageCandidates,
)
from repro.core.extraction.scoring import PageScores
from repro.dom.node import TextNode
from repro.dom.parser import Document
from repro.ml.features import FeatureVectorizer
from repro.ml.logistic import SoftmaxRegression
from repro.transfer.features import TransferFeatureExtractor

__all__ = ["TRANSFER_MODEL", "GlobalCeresModel"]

#: Value of :attr:`Extraction.model` on triples served zero-shot.
TRANSFER_MODEL = "transfer"


@dataclass
class GlobalCeresModel:
    """A site-agnostic extraction model over the ``xfer:`` namespace."""

    feature_extractor: TransferFeatureExtractor
    vectorizer: FeatureVectorizer
    classifier: SoftmaxRegression
    config: CeresConfig

    def __post_init__(self) -> None:
        self._extractor: CeresExtractor | None = None

    @property
    def labels(self) -> list[str]:
        return list(self.classifier.classes_)

    # -- scoring (the CeresExtractor model interface) ----------------------

    def score_pages(self, documents: Sequence[Document]) -> list[PageScores]:
        """``(nodes, probabilities)`` per page via the dict-feature path."""
        results: list[PageScores] = []
        n_labels = len(self.classifier.classes_)
        for document in documents:
            nodes, rows = self.feature_extractor.page_features(document)
            if not nodes:
                results.append(([], np.empty((0, n_labels))))
                continue
            X = self.vectorizer.transform(rows)
            results.append((nodes, self.classifier.predict_proba(X)))
        return results

    def predict_proba_for_nodes(
        self, nodes: list[TextNode], document: Document
    ) -> np.ndarray:
        """Per-node probabilities, rows aligned with ``nodes`` (interface
        parity with :class:`CeresModel`)."""
        samples = [self.feature_extractor.features(node, document) for node in nodes]
        X = self.vectorizer.transform(samples)
        return self.classifier.predict_proba(X)

    # -- extraction --------------------------------------------------------

    @property
    def extractor(self) -> CeresExtractor:
        """A (lazily built) extractor running candidate assembly over this
        model — :class:`CeresExtractor` only needs ``labels`` and
        ``score_pages``, both of which this class provides."""
        if self._extractor is None:
            self._extractor = CeresExtractor(self, self.config)
        return self._extractor

    def candidates(self, documents: list[Document]) -> list[PageCandidates]:
        """Unthresholded candidates per page."""
        return self.extractor.candidates(documents)

    def extract(
        self, documents: list[Document], threshold: float | None = None
    ) -> list[Extraction]:
        """Thresholded extractions, tagged ``model="transfer"``."""
        extractions = self.extractor.extract(documents, threshold)
        for extraction in extractions:
            extraction.model = TRANSFER_MODEL
        return extractions
