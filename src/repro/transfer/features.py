"""Transferable (``xfer:``) node features for the cross-site global model.

ZeroShotCeres (Lockard et al., 2020; PAPERS.md) observes that a node
classifier built *only* from topology-relative signals — DOM context,
relative layout, text similarity to predicate names — generalizes to
unseen sites of a vertical, while CERES's site-specific vocabulary
(CSS classes, frequent-string lexicons) does not.  This module produces
exactly that restricted representation:

* **tag topology** — the per-site extractor's structural ancestor/
  sibling-window features, filtered to the ``xfer:`` namespace (tag
  names only; attribute values stay behind in ``site:``);
* **depth buckets** — capped absolute DOM depth of the text node;
* **relative layout** — the node's decile position among the page's
  text fields, plus first/last markers;
* **predicate-name overlap** — token overlap between each ontology
  predicate's name and the node's own text or the immediately preceding
  text field (the field that usually holds the human-readable label);
* **text shape classes** — coarse surface shapes of the node text
  (numeric, year, title case, trailing colon, token/length buckets).

Every feature name this module emits is in the ``xfer:`` namespace, and
none embeds markup values: no attribute values, no XPaths, no site
strings.  CI greps this file to keep it that way.
"""

from __future__ import annotations

import re
from collections.abc import Iterable

from repro.core.config import CeresConfig
from repro.core.extraction.features import FeatureDict, NodeFeatureExtractor
from repro.dom.node import TextNode
from repro.dom.parser import Document
from repro.ml.features import NAMESPACE_SEPARATOR, TRANSFER_NAMESPACE
from repro.runtime.cache import CacheStats, LRUCache

__all__ = ["TransferFeatureExtractor", "predicate_tokens", "shape_classes"]

_XFER_PREFIX = TRANSFER_NAMESPACE + NAMESPACE_SEPARATOR

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")
_YEAR_PATTERN = re.compile(r"(?:18|19|20)\d\d")
_ISO_DATE_PATTERN = re.compile(r"\d{4}-\d{2}-\d{2}")

#: Absolute DOM depths at or beyond this collapse into one bucket.
_DEPTH_CAP = 15
#: Relative-layout resolution: position among the page's text fields.
_LAYOUT_BUCKETS = 10
#: Token counts at or beyond this collapse into one bucket.
_TOKEN_COUNT_CAP = 4
#: Upper bounds of the text-length buckets (longer → ``len|long``).
_LENGTH_BOUNDS = (4, 8, 16, 32, 64)


def predicate_tokens(name: str) -> frozenset[str]:
    """Lower-cased alphanumeric tokens of a predicate name or node text
    (``"directed_by"`` and ``"Directed by:"`` both → ``{directed, by}``)."""
    return frozenset(_TOKEN_PATTERN.findall(name.lower()))


def shape_classes(text: str) -> list[str]:
    """Coarse, site-agnostic surface shapes of one text field."""
    stripped = text.strip()
    shapes = [f"tokens|{min(len(stripped.split()), _TOKEN_COUNT_CAP)}"]
    length = len(stripped)
    for bound in _LENGTH_BOUNDS:
        if length <= bound:
            shapes.append(f"len|{bound}")
            break
    else:
        shapes.append("len|long")
    if stripped.isdigit():
        shapes.append("numeric")
    if _YEAR_PATTERN.fullmatch(stripped):
        shapes.append("year")
    if _ISO_DATE_PATTERN.fullmatch(stripped):
        shapes.append("iso-date")
    if any(ch.isdigit() for ch in stripped):
        shapes.append("has-digit")
    if stripped.isupper():
        shapes.append("upper")
    elif stripped.istitle():
        shapes.append("titlecase")
    elif stripped[:1].isupper():
        shapes.append("capitalized")
    if stripped.endswith(":"):
        shapes.append("label-colon")
    if "," in stripped:
        shapes.append("comma")
    return shapes


class TransferFeatureExtractor:
    """Produces the ``xfer:``-only feature dictionary for a text node.

    Needs no fitting: unlike :class:`NodeFeatureExtractor` there is no
    site lexicon to compile — the whole point is that every signal here
    is meaningful on a site the model has never seen.  ``predicates``
    (the vertical's ontology predicate names) parameterize the
    overlap features and are part of the model, not of any site.
    """

    def __init__(
        self, predicates: Iterable[str], config: CeresConfig | None = None
    ) -> None:
        self.config = config or CeresConfig()
        self.predicates = tuple(sorted(set(predicates)))
        self._predicate_tokens = {
            name: tokens
            for name in self.predicates
            if (tokens := predicate_tokens(name))
        }
        # The per-site extractor, unfitted: with an empty frequent-string
        # lexicon it emits structural features only, of which we keep the
        # xfer: namespace (tag topology) and drop site: (attr values).
        self._structural = NodeFeatureExtractor(self.config)
        # page rows are deterministic per document; bounded LRU keyed by
        # doc_id, same discipline as the per-site feature registries.
        self._page_cache: LRUCache[int, tuple[list[TextNode], list[FeatureDict]]] = (
            LRUCache(
                self.config.feature_registry_cache_size, name="transfer_features"
            )
        )

    # -- page-level extraction ---------------------------------------------

    def page_features(
        self, document: Document
    ) -> tuple[list[TextNode], list[FeatureDict]]:
        """``(nodes, feature dicts)`` for every non-empty text field.

        Layout features are relative positions within this list, so rows
        are built page-at-a-time (and cached per ``doc_id``); single-node
        access goes through :meth:`features`.
        """
        cached = self._page_cache.get(document.doc_id)
        if cached is not None:
            return cached
        nodes = [node for node in document.text_fields() if node.text.strip()]
        rows = [
            self._node_features(node, document, position, nodes)
            for position, node in enumerate(nodes)
        ]
        result = (nodes, rows)
        self._page_cache.put(document.doc_id, result)
        return result

    def features(self, node: TextNode, document: Document) -> FeatureDict:
        """The feature dictionary of one node (via the page rows)."""
        nodes, rows = self.page_features(document)
        for position, candidate in enumerate(nodes):
            if candidate is node:
                return rows[position]
        # Node not among the page's non-empty text fields (blank text):
        # no layout position exists; emit the position-free families.
        return self._node_features(node, document, None, nodes)

    def _node_features(
        self,
        node: TextNode,
        document: Document,
        position: int | None,
        page_nodes: list[TextNode],
    ) -> FeatureDict:
        result: FeatureDict = {}
        for name, value in self._structural.features(node, document).items():
            if name.startswith(_XFER_PREFIX):
                result[name] = value
        result[f"xfer:depth|{min(node.depth, _DEPTH_CAP)}"] = 1.0
        text = node.text
        previous_text = ""
        if position is not None and page_nodes:
            n_fields = len(page_nodes)
            bucket = (_LAYOUT_BUCKETS * position) // n_fields
            result[f"xfer:layout|pos|{bucket}"] = 1.0
            if position == 0:
                result["xfer:layout|first"] = 1.0
            if position == n_fields - 1:
                result["xfer:layout|last"] = 1.0
            if position > 0:
                previous_text = page_nodes[position - 1].text
        for shape in shape_classes(text):
            result[f"xfer:shape|{shape}"] = 1.0
        self._overlap_features(text, "self", result)
        if previous_text:
            self._overlap_features(previous_text, "prev", result)
        return result

    def _overlap_features(
        self, text: str, context: str, result: FeatureDict
    ) -> None:
        """Token overlap between ``text`` and each predicate's name.

        ``full`` means every token of the predicate name occurs in the
        text ("Directed by" vs ``directed_by``); ``part`` means at least
        one does.  ``context`` distinguishes the node's own text from the
        preceding field's (where label strings usually live).
        """
        tokens = predicate_tokens(text)
        if not tokens:
            return
        for predicate, wanted in self._predicate_tokens.items():
            if wanted <= tokens:
                result[f"xfer:pred|{predicate}|{context}|full"] = 1.0
            elif wanted & tokens:
                result[f"xfer:pred|{predicate}|{context}|part"] = 1.0

    # -- observability -----------------------------------------------------

    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the per-page row cache."""
        return self._page_cache.stats()
