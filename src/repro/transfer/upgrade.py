"""Background per-site upgrade while transfer-serving.

A site first served zero-shot from the global model does not have to
stay at reduced precision: :class:`BackgroundUpgrader` runs the full
per-site annotate+train path on a worker thread, persists the artifact,
and atomically swaps the trained model into the live
:class:`~repro.runtime.service.ExtractionService` — subsequent requests
for the site score through the per-site model with no downtime and no
serving-thread stalls.

The service wires an upgrader in via ``upgrade_hook``
(:meth:`ExtractionService.extract_pages` calls the hook after every
transfer-served request); each site is trained at most once per
upgrader unless training fails, in which case the next request may
resubmit it.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro import obs
from repro.dom.parser import Document

if TYPE_CHECKING:
    from repro.runtime.serialize import SiteModel
    from repro.runtime.service import ExtractionService

__all__ = ["BackgroundUpgrader", "UpgradeReport"]


@dataclass
class UpgradeReport:
    """Outcome of one background upgrade attempt."""

    site: str
    ok: bool
    error: str | None = None


class BackgroundUpgrader:
    """Trains per-site models off the serving thread and swaps them in."""

    def __init__(
        self,
        service: ExtractionService,
        train_site: Callable[[str, list[Document]], "SiteModel"],
        *,
        max_pending: int = 8,
    ) -> None:
        """``train_site(site, documents)`` runs the per-site training path
        and returns the :class:`SiteModel` to install; ``max_pending``
        bounds the queue so a flood of unseen sites degrades to "stay on
        transfer serving" instead of buffering every site's documents.
        """
        self.service = service
        self.train_site = train_site
        self.reports: list[UpgradeReport] = []
        self._queue: queue.Queue = queue.Queue(maxsize=max_pending)
        self._submitted: set[str] = set()
        self._lock = threading.Lock()
        self._worker = threading.Thread(
            target=self._run, name="transfer-upgrader", daemon=True
        )
        self._worker.start()

    # -- producer side (serving thread) ------------------------------------

    def submit(self, site: str, documents: list[Document]) -> bool:
        """Enqueue a site for upgrade; False if already submitted or the
        queue is full.  Never blocks the serving thread."""
        with self._lock:
            if site in self._submitted:
                return False
            self._submitted.add(site)
        try:
            self._queue.put_nowait((site, documents))
        except queue.Full:
            with self._lock:
                self._submitted.discard(site)
            obs.metrics().inc("transfer.upgrade.rejected")
            return False
        obs.metrics().inc("transfer.upgrade.queued")
        return True

    def __call__(self, site: str, documents: list[Document]) -> None:
        """The :attr:`ExtractionService.upgrade_hook` signature."""
        self.submit(site, documents)

    # -- worker side -------------------------------------------------------

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                self._queue.task_done()
                return
            site, documents = item
            report = UpgradeReport(site, ok=False)
            try:
                with obs.span(
                    "transfer.upgrade", site=site, pages=len(documents)
                ):
                    site_model = self.train_site(site, documents)
                    if self.service.registry is not None:
                        self.service.registry.save(site_model)
                    self.service.add_site_model(site_model)
                report.ok = True
                obs.metrics().inc("transfer.upgrade.trained")
            except Exception as exc:  # noqa: BLE001 — worker must survive
                report.error = f"{type(exc).__name__}: {exc}"
                obs.metrics().inc("transfer.upgrade.failed")
                with self._lock:
                    # Allow a later request to retry the site.
                    self._submitted.discard(site)
            self.reports.append(report)
            self._queue.task_done()

    # -- lifecycle ---------------------------------------------------------

    def join(self) -> None:
        """Block until every queued upgrade has been processed."""
        self._queue.join()

    def close(self) -> None:
        """Drain the queue and stop the worker thread."""
        self._queue.put(None)
        self._worker.join()
