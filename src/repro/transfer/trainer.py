"""Training the cross-site global model.

The global model consumes the *same distant supervision* per-site
training does — topic identification, relation annotation, negative
sampling via :meth:`~repro.core.pipeline.CeresPipeline.cluster_examples`
— but pools the examples of many sites and represents every node with
``xfer:`` features only (:mod:`repro.transfer.features`).  What changes
between sites is exactly what the representation cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

from repro import obs
from repro.core.annotation.examples import TrainingExample
from repro.core.config import CeresConfig
from repro.core.pipeline import CeresPipeline
from repro.dom.parser import Document
from repro.kb.store import KnowledgeBase
from repro.ml.features import FeatureVectorizer
from repro.ml.logistic import SoftmaxRegression
from repro.transfer.features import TransferFeatureExtractor
from repro.transfer.model import GlobalCeresModel

__all__ = [
    "SiteExamples",
    "collect_site_examples",
    "train_global",
    "train_global_from_corpus",
]


@dataclass
class SiteExamples:
    """One site's contribution to global training."""

    site: str
    documents: list[Document]
    examples: list[TrainingExample]


def collect_site_examples(
    site: str,
    kb: KnowledgeBase,
    documents: list[Document],
    config: CeresConfig | None = None,
    annotator=None,
) -> SiteExamples:
    """Annotate one site and flatten its per-cluster training examples.

    Identical annotation path to per-site training (clustering, topics,
    relations, 3:1 negatives) — only the downstream representation
    differs.
    """
    pipeline = CeresPipeline(kb, config, annotator)
    result = pipeline.annotate(documents)
    examples = [
        example
        for _, cluster_examples in pipeline.cluster_examples(result)
        for example in cluster_examples
    ]
    return SiteExamples(site, documents, examples)


def train_global(
    site_examples: Iterable[SiteExamples],
    predicates: Iterable[str],
    config: CeresConfig | None = None,
) -> GlobalCeresModel:
    """Fit one global classifier over the pooled examples of many sites.

    ``predicates`` (the vertical's ontology predicate names) drive the
    predicate-name-overlap features and travel with the model.
    """
    config = config or CeresConfig()
    pools = [pool for pool in site_examples if pool.examples]
    if not pools:
        raise ValueError(
            "no training examples across sites — annotation produced nothing"
        )
    extractor = TransferFeatureExtractor(predicates, config)
    samples = []
    labels = []
    with obs.stage("stage.train_global", sites=len(pools)) as stage:
        for pool in pools:
            for example in pool.examples:
                samples.append(
                    extractor.features(
                        example.node, pool.documents[example.page_index]
                    )
                )
                labels.append(example.label)
        vectorizer = FeatureVectorizer()
        X = vectorizer.fit_transform(samples)
        classifier = SoftmaxRegression(
            C=config.classifier_C, max_iter=config.classifier_max_iter
        )
        classifier.fit(X, labels)
        stage.set(examples=len(samples), features=vectorizer.n_features)
    registry = obs.metrics()
    registry.inc("transfer.train.sites", len(pools))
    registry.inc("transfer.train.examples", len(samples))
    return GlobalCeresModel(extractor, vectorizer, classifier, config)


def train_global_from_corpus(
    corpus: str | Path,
    kb_path: str | Path,
    *,
    config: CeresConfig | None = None,
    registry_root: str | Path | None = None,
    exclude: Iterable[str] = (),
    log: Callable[[str], None] | None = None,
) -> tuple[GlobalCeresModel, Path | None]:
    """Train a global model over every site of a corpus.

    ``exclude`` holds out sites (the leave-one-site-out evaluation in
    :mod:`repro.evaluation.transfer_eval` trains N models this way);
    ``registry_root`` persists the model as the registry's global
    artifact.  Returns the model and the artifact path (None when not
    persisted).
    """
    # Lazy imports: the runner stack pulls in the serving layer, which
    # imports this package lazily in turn — keep module import acyclic.
    from repro.kb.io import load_kb
    from repro.runtime.runner import discover_corpus, load_site_documents

    config = config or CeresConfig()
    emit = log or (lambda message: None)
    excluded = set(exclude)
    kb = load_kb(str(kb_path))
    predicates = kb.ontology.names()
    pools: list[SiteExamples] = []
    for spec in discover_corpus(corpus):
        if spec.site in excluded:
            continue
        documents = load_site_documents(spec.pages_dir)
        pool = collect_site_examples(spec.site, kb, documents, config)
        emit(
            f"site={spec.site} pages={len(documents)} "
            f"examples={len(pool.examples)}"
        )
        pools.append(pool)
    model = train_global(pools, predicates, config)
    path: Path | None = None
    if registry_root is not None:
        from repro.runtime.registry import ModelRegistry

        path = ModelRegistry(registry_root).save_global(model)
        emit(f"global model -> {path}")
    return model, path
