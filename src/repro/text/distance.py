"""Sequence distance and set similarity measures.

Two measures drive CERES:

* **Levenshtein distance** between XPaths (Section 3.2.2) — the clustering
  step that supplies global evidence for relation annotation measures how
  far apart two mention locations are structurally.  The implementation is
  generic over sequences, so callers may pass strings (character-level, as
  in the paper) or XPath step tuples (token-level, a 50x cheaper measure
  with the same ordering behaviour under index drift; see DESIGN.md).

* **Jaccard similarity** between entity sets (Section 3.1.1, Equation 1) —
  the topic-candidate score.
"""

from __future__ import annotations

from collections.abc import Sequence, Set
from typing import TypeVar

__all__ = ["levenshtein", "normalized_levenshtein", "jaccard"]

T = TypeVar("T")


def levenshtein(a: Sequence[T], b: Sequence[T], limit: int | None = None) -> int:
    """Edit distance between sequences ``a`` and ``b``.

    Uses the classic two-row dynamic program with an optional early-exit
    ``limit``: if the true distance exceeds ``limit``, some value
    ``> limit`` is returned (callers treating distances above a cap as
    "far" can use this to skip work).

    >>> levenshtein("kitten", "sitting")
    3
    >>> levenshtein(("a", "b"), ("a", "c", "b"))
    1
    """
    if a is b or a == b:
        return 0
    la, lb = len(a), len(b)
    if la == 0:
        return lb
    if lb == 0:
        return la
    # Ensure the inner loop runs over the shorter sequence.
    if lb > la:
        a, b = b, a
        la, lb = lb, la
    if limit is not None and la - lb > limit:
        return la - lb
    previous = list(range(lb + 1))
    current = [0] * (lb + 1)
    for i in range(1, la + 1):
        current[0] = i
        ai = a[i - 1]
        row_min = current[0]
        for j in range(1, lb + 1):
            cost = 0 if ai == b[j - 1] else 1
            current[j] = min(
                previous[j] + 1,        # deletion
                current[j - 1] + 1,     # insertion
                previous[j - 1] + cost, # substitution
            )
            if current[j] < row_min:
                row_min = current[j]
        if limit is not None and row_min > limit:
            return row_min
        previous, current = current, previous
    return previous[lb]


def normalized_levenshtein(a: Sequence[T], b: Sequence[T]) -> float:
    """Levenshtein distance scaled to ``[0, 1]`` by the longer length.

    Returns 0.0 for two empty sequences.
    """
    longest = max(len(a), len(b))
    if longest == 0:
        return 0.0
    return levenshtein(a, b) / longest


def jaccard(a: Set[T], b: Set[T]) -> float:
    """Jaccard similarity ``|a ∩ b| / |a ∪ b|`` (Equation 1 of the paper).

    Returns 0.0 when both sets are empty (no evidence either way).

    >>> jaccard({1, 2}, {2, 3})
    0.3333333333333333
    """
    if not a and not b:
        return 0.0
    intersection = len(a & b)
    if intersection == 0:
        return 0.0
    return intersection / (len(a) + len(b) - intersection)
