"""Sequence distance and set similarity measures.

Two measures drive CERES:

* **Levenshtein distance** between XPaths (Section 3.2.2) — the clustering
  step that supplies global evidence for relation annotation measures how
  far apart two mention locations are structurally.  The implementation is
  generic over sequences, so callers may pass strings (character-level, as
  in the paper) or XPath step tuples (token-level, a 50x cheaper measure
  with the same ordering behaviour under index drift; see DESIGN.md).

* **Jaccard similarity** between entity sets (Section 3.1.1, Equation 1) —
  the topic-candidate score.

Two Levenshtein implementations coexist:

* :func:`levenshtein` — the classic pure-Python two-row DP over one pair,
  with an optional early-exit ``limit``.  This is the reference
  implementation and the equivalence oracle for the batched engine.
* :func:`levenshtein_matrix` — the vectorized engine: tokens are interned
  into small ints once (:func:`encode_token_sequences`), and the full
  pairwise distance matrix is produced by a numpy DP that advances all
  pairs' DP rows together, collapsing the insertion recurrence into a
  running minimum (``cur[j] = min_{k<=j}(t[k] + j - k)``).  Distances are
  exact integers, so the two implementations agree exactly.
"""

from __future__ import annotations

from collections.abc import Sequence, Set
from typing import TypeVar

import numpy as np

__all__ = [
    "levenshtein",
    "normalized_levenshtein",
    "jaccard",
    "encode_token_sequences",
    "batched_levenshtein",
    "levenshtein_matrix",
]

T = TypeVar("T")

#: Pairs processed per DP batch by :func:`levenshtein_matrix`; bounds the
#: temporary arrays to a few MB regardless of how many pairs are requested.
_PAIR_CHUNK = 1 << 17


def levenshtein(a: Sequence[T], b: Sequence[T], limit: int | None = None) -> int:
    """Edit distance between sequences ``a`` and ``b``.

    Uses the classic two-row dynamic program with an optional early-exit
    ``limit``: if the true distance exceeds ``limit``, some value
    ``> limit`` is returned (callers treating distances above a cap as
    "far" can use this to skip work).

    >>> levenshtein("kitten", "sitting")
    3
    >>> levenshtein(("a", "b"), ("a", "c", "b"))
    1
    """
    if a is b or a == b:
        return 0
    la, lb = len(a), len(b)
    if la == 0:
        return lb
    if lb == 0:
        return la
    # Ensure the inner loop runs over the shorter sequence.
    if lb > la:
        a, b = b, a
        la, lb = lb, la
    if limit is not None and la - lb > limit:
        return la - lb
    previous = list(range(lb + 1))
    current = [0] * (lb + 1)
    for i in range(1, la + 1):
        current[0] = i
        ai = a[i - 1]
        row_min = current[0]
        for j in range(1, lb + 1):
            cost = 0 if ai == b[j - 1] else 1
            current[j] = min(
                previous[j] + 1,        # deletion
                current[j - 1] + 1,     # insertion
                previous[j - 1] + cost, # substitution
            )
            if current[j] < row_min:
                row_min = current[j]
        if limit is not None and row_min > limit:
            return row_min
        previous, current = current, previous
    return previous[lb]


def encode_token_sequences(
    sequences: Sequence[Sequence],
) -> tuple[np.ndarray, np.ndarray]:
    """Intern the tokens of ``sequences`` into a padded int matrix.

    Every distinct token (compared by equality, exactly as
    :func:`levenshtein` compares elements) is assigned a small int code
    once; the sequences are packed into a ``(n, max_len)`` int32 matrix
    padded with ``-1``.  Padding can never corrupt a distance because the
    DP cell read for a pair only depends on the un-padded prefixes.

    Returns ``(codes, lengths)``.
    """
    n = len(sequences)
    lengths = np.fromiter(
        (len(sequence) for sequence in sequences), dtype=np.int32, count=n
    )
    width = int(lengths.max()) if n else 0
    codes = np.full((n, width), -1, dtype=np.int32)
    interned: dict = {}
    for row, sequence in enumerate(sequences):
        target = codes[row]
        for column, token in enumerate(sequence):
            code = interned.get(token)
            if code is None:
                code = len(interned)
                interned[token] = code
            target[column] = code
    return codes, lengths


def batched_levenshtein(
    a_codes: np.ndarray,
    a_lengths: np.ndarray,
    b_codes: np.ndarray,
    b_lengths: np.ndarray,
) -> np.ndarray:
    """Levenshtein distance for aligned pairs of encoded sequences.

    ``a_codes``/``b_codes`` are ``(p, width)`` int matrices (one row per
    pair, from :func:`encode_token_sequences`), ``a_lengths``/``b_lengths``
    the true sequence lengths.  All ``p`` pairs advance through the DP
    together: row ``i`` of every pair is computed with three vectorized
    ops plus a running-minimum pass that resolves the insertion
    recurrence (``cur[j] = min(t[j], cur[j-1] + 1)`` unrolls to
    ``min_{k<=j}(t[k] + j - k)``, a ``minimum.accumulate`` over
    ``t - arange``).

    Returns an int32 array of exact distances, one per pair.
    """
    p = len(a_lengths)
    out = np.empty(p, dtype=np.int32)
    if p == 0:
        return out
    max_a = int(a_lengths.max())
    max_b = int(b_lengths.max())
    zero_a = a_lengths == 0
    if zero_a.any():
        out[zero_a] = b_lengths[zero_a]
    if max_a == 0:
        return out
    columns = np.arange(max_b + 1, dtype=np.int32)
    previous = np.broadcast_to(columns, (p, max_b + 1)).copy()
    boundary = np.empty((p, 1), dtype=np.int32)
    rows = np.arange(p)
    for i in range(1, max_a + 1):
        cost = (a_codes[:, i - 1 : i] != b_codes[:, :max_b]).astype(np.int32)
        candidate = np.minimum(previous[:, :-1] + cost, previous[:, 1:] + 1)
        boundary.fill(i)
        stacked = np.concatenate([boundary, candidate], axis=1)
        np.subtract(stacked, columns, out=stacked)
        np.minimum.accumulate(stacked, axis=1, out=stacked)
        current = np.add(stacked, columns, out=stacked)
        finished = a_lengths == i
        if finished.any():
            out[finished] = current[rows[finished], b_lengths[finished]]
        previous = current  # next iteration's concatenate allocates afresh
    return out


def levenshtein_matrix(sequences: Sequence[Sequence]) -> np.ndarray:
    """Full pairwise Levenshtein distance matrix over ``sequences``.

    Tokens are interned once; pairs are processed in bounded chunks
    through :func:`batched_levenshtein`.  Entries are exact: the matrix
    equals ``pairwise_distance_matrix(sequences, levenshtein)``.
    """
    n = len(sequences)
    matrix = np.zeros((n, n))
    if n < 2:
        return matrix
    codes, lengths = encode_token_sequences(sequences)
    upper_i, upper_j = np.triu_indices(n, k=1)
    for start in range(0, len(upper_i), _PAIR_CHUNK):
        chunk_i = upper_i[start : start + _PAIR_CHUNK]
        chunk_j = upper_j[start : start + _PAIR_CHUNK]
        distances = batched_levenshtein(
            codes[chunk_i], lengths[chunk_i], codes[chunk_j], lengths[chunk_j]
        )
        matrix[chunk_i, chunk_j] = distances
        matrix[chunk_j, chunk_i] = distances
    return matrix


def normalized_levenshtein(a: Sequence[T], b: Sequence[T]) -> float:
    """Levenshtein distance scaled to ``[0, 1]`` by the longer length.

    Returns 0.0 for two empty sequences.
    """
    longest = max(len(a), len(b))
    if longest == 0:
        return 0.0
    return levenshtein(a, b) / longest


def jaccard(a: Set[T], b: Set[T]) -> float:
    """Jaccard similarity ``|a ∩ b| / |a ∪ b|`` (Equation 1 of the paper).

    Returns 0.0 when both sets are empty (no evidence either way).

    >>> jaccard({1, 2}, {2, 3})
    0.3333333333333333
    """
    if not a and not b:
        return 0.0
    intersection = len(a & b)
    if intersection == 0:
        return 0.0
    return intersection / (len(a) + len(b) - intersection)
