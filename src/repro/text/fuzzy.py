"""Fuzzy string matching between webpage text and KB surface forms.

Implements the matching process the paper adopts from Gulhane et al. [18]
("Exploiting content redundancy for web information extraction"): each text
field on a page is matched against the knowledge base through an inverted
index of *normalized surface variants*.  A surface form generates several
variants:

* the normalized string itself,
* the string with a trailing parenthetical removed ("Crooklyn (1994)"),
* the comma-inverted form for person-like names ("Lee, Spike" → "spike lee").

Matching is exact on variants — the variant generation supplies the
"fuzziness".  This mirrors the high-precision matching regime the paper
needs: annotation quality depends on not hallucinating matches.
"""

from __future__ import annotations

import functools
from collections import defaultdict
from collections.abc import Hashable, Iterable
from typing import TypeVar

from repro.text.normalize import normalize_text, strip_parenthetical

__all__ = ["surface_variants", "StringIndex"]

V = TypeVar("V", bound=Hashable)


#: Surfaces longer than this bypass the variant memo (mirrors
#: ``repro.text.normalize``'s cache guard): one-off long strings must not
#: pin cache memory for the process lifetime.
_VARIANT_CACHE_MAX_LEN = 256


def surface_variants(text: str) -> frozenset[str]:
    """All normalized variants under which ``text`` should be indexed/looked up.

    The result is a shared, memoized frozenset — variant generation is
    pure and the same surfaces recur across every page of a site, so each
    distinct string expands once per process, not once per lookup.  Treat
    the returned set as immutable.

    >>> sorted(surface_variants("Lee, Spike"))
    ['lee spike', 'spike lee']
    """
    if len(text) <= _VARIANT_CACHE_MAX_LEN:
        return _variants_cached(text)
    return _variants(text)


def _variants(text: str) -> frozenset[str]:
    variants: set[str] = set()
    base = normalize_text(text)
    if base:
        variants.add(base)
    stripped = strip_parenthetical(text)
    if stripped and stripped != text:
        normalized = normalize_text(stripped)
        if normalized:
            variants.add(normalized)
    # Comma inversion: "Last, First" <-> "First Last".  Only applied when
    # there is exactly one comma and both sides are short name-like spans.
    # Tested on the parenthetical-stripped form: a comma inside a trailing
    # qualifier — "Gladiator (2000, UK)" — is not a name inversion, and
    # indexing its inverted form would fabricate KB matches.
    if stripped.count(",") == 1:
        last, first = (part.strip() for part in stripped.split(","))
        if last and first and len(last.split()) <= 3 and len(first.split()) <= 3:
            inverted = normalize_text(f"{first} {last}")
            if inverted:
                variants.add(inverted)
    return frozenset(variants)


_variants_cached = functools.lru_cache(maxsize=1 << 16)(_variants)


class StringIndex:
    """Inverted index from normalized surface variants to payload values.

    Payloads are typically entity identifiers (for entity mentions) or
    ``("literal", predicate)`` style keys (for literal values).  The same
    payload may be registered under many surfaces (aliases).
    """

    def __init__(self) -> None:
        self._index: dict[str, set] = defaultdict(set)
        self._size = 0

    def __len__(self) -> int:
        """Number of distinct indexed variants."""
        return len(self._index)

    def add(self, surface: str, value: V) -> None:
        """Index ``value`` under all variants of ``surface``."""
        for variant in surface_variants(surface):
            bucket = self._index[variant]
            if value not in bucket:
                bucket.add(value)
                self._size += 1

    def add_exact(self, normalized: str, value: V) -> None:
        """Index ``value`` under the already-normalized key ``normalized``."""
        if not normalized:
            return
        bucket = self._index[normalized]
        if value not in bucket:
            bucket.add(value)
            self._size += 1

    def lookup(self, text: str) -> set:
        """Return the union of payloads for all variants of ``text``."""
        return self.lookup_variants(surface_variants(text))

    def lookup_variants(self, variants: Iterable[str]) -> set:
        """Union of payloads for precomputed ``variants``.

        Callers probing several indexes with the same text (e.g.
        :meth:`repro.kb.matcher.PageMatcher.match`) compute
        :func:`surface_variants` once and reuse it here.
        """
        result: set = set()
        for variant in variants:
            found = self._index.get(variant)
            if found:
                result |= found
        return result

    def lookup_normalized(self, normalized: str) -> set:
        """Return payloads indexed under the exact normalized key."""
        found = self._index.get(normalized)
        return set(found) if found else set()

    def contains(self, text: str) -> bool:
        """True if any variant of ``text`` has at least one payload."""
        return any(variant in self._index for variant in surface_variants(text))

    def update(self, surfaces: Iterable[str], value: V) -> None:
        """Index ``value`` under each surface in ``surfaces``."""
        for surface in surfaces:
            self.add(surface, value)
