"""Text normalization utilities used throughout the CERES pipeline.

All string matching between webpage text fields and the knowledge base is
performed on *normalized* forms: case-folded, punctuation-stripped,
whitespace-collapsed strings.  Normalization is deliberately aggressive —
the paper's fuzzy matching step (Gulhane et al. [18]) tolerates surface
variation such as differing punctuation, accents-as-typed, and extra
whitespace, but we stop short of stemming or token reordering (token
reordering variants are generated separately in :mod:`repro.text.fuzzy`).
"""

from __future__ import annotations

import functools
import re
import unicodedata

__all__ = [
    "normalize_text",
    "tokenize",
    "strip_parenthetical",
    "is_year",
    "is_low_information",
    "COUNTRY_NAMES",
]

# Matches one or more characters that are neither word characters nor
# whitespace (i.e. punctuation and symbols), in any script.
_PUNCT_RE = re.compile(r"[^\w\s]+", re.UNICODE)
_WS_RE = re.compile(r"\s+")
_PAREN_RE = re.compile(r"\s*\([^)]*\)\s*$")
_YEAR_RE = re.compile(r"^(1[89]\d\d|20\d\d|21\d\d)$")

#: Country names are treated as low-information strings during topic
#: identification (Section 3.1.1 step 1 of the paper): they appear on vast
#: numbers of pages and are never useful topic candidates.
COUNTRY_NAMES = frozenset(
    s.casefold()
    for s in (
        "United States", "USA", "United Kingdom", "UK", "France", "Germany",
        "Italy", "Spain", "Canada", "Australia", "Japan", "China", "India",
        "Brazil", "Mexico", "Russia", "South Korea", "Korea", "Nigeria",
        "Denmark", "Iceland", "Indonesia", "Slovakia", "Czech Republic",
        "Czechia", "Ireland", "Sweden", "Norway", "Finland", "Netherlands",
        "Belgium", "Austria", "Switzerland", "Poland", "Portugal", "Greece",
        "Turkey", "Egypt", "South Africa", "Argentina", "Chile", "Colombia",
        "New Zealand", "Hong Kong", "Taiwan", "Thailand", "Vietnam",
        "Philippines", "Malaysia", "Singapore", "Israel", "Iran", "Iraq",
        "Hungary", "Romania", "Bulgaria", "Croatia", "Serbia", "Ukraine",
    )
)


#: Strings longer than this bypass the normalization memo: long prose
#: fields rarely recur, and caching them would pin arbitrarily large
#: (input, output) string pairs for the process lifetime.  Mention-sized
#: strings (KB surfaces, labels, names) all sit far below it.
_NORMALIZE_CACHE_MAX_LEN = 256


def normalize_text(text: str) -> str:
    """Return the canonical matching form of ``text``.

    The transformation is: NFKC unicode normalization, case folding,
    punctuation removal, and whitespace collapsing.  The result is stable
    under repeated application (idempotent), a property covered by tests.

    Mention-sized inputs are memoized in a bounded LRU: normalization is
    pure, strings are immutable, and the same field texts and KB surfaces
    recur on every page of a template site, so the regex passes run once
    per distinct string rather than once per occurrence.  Long prose
    fields skip the cache so it never pins large one-off page strings.

    >>> normalize_text("  Do the Right  Thing! ")
    'do the right thing'
    """
    if len(text) <= _NORMALIZE_CACHE_MAX_LEN:
        return _normalize_cached(text)
    return _normalize(text)


def _normalize(text: str) -> str:
    text = unicodedata.normalize("NFKC", text)
    text = text.casefold()
    text = _PUNCT_RE.sub(" ", text)
    text = _WS_RE.sub(" ", text)
    return text.strip()


_normalize_cached = functools.lru_cache(maxsize=1 << 16)(_normalize)


def tokenize(text: str) -> list[str]:
    """Split ``text`` into normalized tokens.

    >>> tokenize("Spike Lee (director)")
    ['spike', 'lee', 'director']
    """
    normalized = normalize_text(text)
    if not normalized:
        return []
    return normalized.split(" ")


def strip_parenthetical(text: str) -> str:
    """Remove a single trailing parenthetical qualifier.

    Websites frequently decorate names with disambiguators such as
    ``"Crooklyn (1994)"`` or ``"John Smith (actor)"``; the KB stores the
    bare name.  Only a *trailing* parenthetical is removed so that titles
    containing internal parentheses are untouched.

    >>> strip_parenthetical("Crooklyn (1994)")
    'Crooklyn'
    """
    return _PAREN_RE.sub("", text).strip()


def is_year(text: str) -> bool:
    """True if ``text`` is a bare 4-digit year between 1800 and 2199."""
    return bool(_YEAR_RE.match(text.strip()))


def is_low_information(text: str) -> bool:
    """True if ``text`` should never be considered a topic candidate.

    Implements the filter from Section 3.1.1: "we discard strings with low
    information content, such as single digit numbers, years, and names of
    countries".  We additionally discard empty/whitespace strings, strings
    of three or fewer characters, and strings that normalize to nothing
    (pure punctuation).
    """
    stripped = text.strip()
    if not stripped:
        return True
    if is_year(stripped):
        return True
    normalized = normalize_text(stripped)
    if len(normalized) <= 3:
        return True
    # Numbers (integers or decimals) carry no topical identity.
    if re.fullmatch(r"[\d\s.,:/-]+", stripped):
        return True
    if normalized in COUNTRY_NAMES:
        return True
    return False
