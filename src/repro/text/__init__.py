"""String normalization, distance, and fuzzy-matching utilities."""

from repro.text.distance import jaccard, levenshtein, normalized_levenshtein
from repro.text.fuzzy import StringIndex, surface_variants
from repro.text.normalize import (
    is_low_information,
    is_year,
    normalize_text,
    strip_parenthetical,
    tokenize,
)

__all__ = [
    "jaccard",
    "levenshtein",
    "normalized_levenshtein",
    "StringIndex",
    "surface_variants",
    "is_low_information",
    "is_year",
    "normalize_text",
    "strip_parenthetical",
    "tokenize",
]
