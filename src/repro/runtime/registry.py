"""The on-disk model registry.

Layout — one versioned JSON artifact per site under a root directory::

    <root>/
        <site-key>.json        # site_model_to_dict() payload
        <site-key>.json        # ... one per trained site

``site-key`` is the site name percent-encoded (``urllib.parse.quote``
with no safe characters), so arbitrary site names — hostnames, paths,
unicode — map to flat, filesystem-safe, reversible file names.

Artifacts are self-describing: they carry ``format_version`` (schema
revision, checked on load) and ``kind`` (sanity tag).  Writes are atomic
(temp file + ``os.replace``) so a crashed or concurrent writer never
leaves a torn artifact behind.  Any failure to decode, validate, or
rebuild an artifact surfaces as :class:`RegistryError` with the path and
reason — never a raw ``KeyError`` five frames deep.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from urllib.parse import quote, unquote

from repro.runtime.serialize import (
    ARTIFACT_KIND,
    FORMAT_VERSION,
    SiteModel,
    site_model_from_dict,
    site_model_to_dict,
)

__all__ = ["RegistryError", "ModelRegistry"]

_SUFFIX = ".json"


class RegistryError(Exception):
    """A registry artifact is missing, corrupt, or incompatible."""


def _site_key(site: str) -> str:
    return quote(site, safe="")


class ModelRegistry:
    """Stores and loads :class:`SiteModel` artifacts, keyed by site."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # -- paths -------------------------------------------------------------

    def path_for(self, site: str) -> Path:
        """Where ``site``'s artifact lives (whether or not it exists)."""
        return self.root / (_site_key(site) + _SUFFIX)

    def has(self, site: str) -> bool:
        return self.path_for(site).is_file()

    def sites(self) -> list[str]:
        """Sorted site names with an artifact in the registry."""
        if not self.root.is_dir():
            return []
        return sorted(
            unquote(path.name[: -len(_SUFFIX)])
            for path in self.root.glob("*" + _SUFFIX)
        )

    # -- save / load -------------------------------------------------------

    def save(self, site_model: SiteModel) -> Path:
        """Atomically write ``site_model``'s artifact; returns its path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(site_model.site)
        payload = json.dumps(
            site_model_to_dict(site_model), ensure_ascii=False, sort_keys=True
        )
        # A unique temp file per call (not per PID): concurrent saves from
        # threads of one process must not interleave into a torn artifact.
        descriptor, temp = tempfile.mkstemp(
            dir=self.root, prefix=path.name + ".tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(temp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(temp)
            raise
        return path

    def load(self, site: str) -> SiteModel:
        """Load ``site``'s artifact, validating version and structure."""
        path = self.path_for(site)
        if not path.is_file():
            known = ", ".join(self.sites()) or "<registry empty>"
            raise RegistryError(
                f"no artifact for site {site!r} in {self.root} (have: {known})"
            )
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RegistryError(f"corrupt artifact {path}: {exc}") from exc
        if not isinstance(data, dict):
            raise RegistryError(
                f"corrupt artifact {path}: expected a JSON object, "
                f"got {type(data).__name__}"
            )
        kind = data.get("kind")
        if kind != ARTIFACT_KIND:
            raise RegistryError(
                f"{path} is not a site-model artifact (kind={kind!r}, "
                f"expected {ARTIFACT_KIND!r})"
            )
        version = data.get("format_version")
        if version != FORMAT_VERSION:
            raise RegistryError(
                f"artifact {path} has format_version {version!r}; this build "
                f"reads version {FORMAT_VERSION} — retrain or migrate it"
            )
        try:
            return site_model_from_dict(data)
        except (KeyError, TypeError, ValueError) as exc:
            raise RegistryError(
                f"malformed artifact {path}: {type(exc).__name__}: {exc}"
            ) from exc

    def delete(self, site: str) -> bool:
        """Remove a site's artifact; returns whether one existed."""
        path = self.path_for(site)
        if path.is_file():
            path.unlink()
            return True
        return False
