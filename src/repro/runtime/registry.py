"""The on-disk model registry.

Layout — one versioned JSON artifact per site under a root directory,
plus (optionally) one cross-site global model in a reserved
subdirectory::

    <root>/
        <site-key>.json        # site_model_to_dict() payload
        <site-key>.json        # ... one per trained site
        _global/
            model.json         # global_model_to_dict() payload

``site-key`` is the site name percent-encoded (``urllib.parse.quote``
with no safe characters), so arbitrary site names — hostnames, paths,
unicode — map to flat, filesystem-safe, reversible file names.  The
global model lives in a subdirectory precisely so it can never collide
with a percent-encoded site key and never shows up in :meth:`sites`.

Artifacts are self-describing: they carry ``format_version`` (schema
revision, checked on load) and ``kind`` (sanity tag).  Writes go through
:func:`repro.runtime.resilience.atomic_write` (temp file + fsync +
``os.replace`` + directory fsync) so a crash at any instant leaves
either the old artifact or the complete new one — never an empty or torn
file, and never a leftover temp.  Any failure to decode, validate, or
rebuild an artifact surfaces as :class:`RegistryError` with the path and
reason — never a raw ``KeyError`` five frames deep.
"""

from __future__ import annotations

import json
from pathlib import Path
from urllib.parse import quote, unquote

from repro.runtime.resilience import atomic_write
from repro.runtime.serialize import (
    ARTIFACT_KIND,
    FORMAT_VERSION,
    GLOBAL_ARTIFACT_KIND,
    SiteModel,
    global_model_from_dict,
    global_model_to_dict,
    site_model_from_dict,
    site_model_to_dict,
)

__all__ = ["RegistryError", "ModelRegistry"]

_SUFFIX = ".json"
#: Reserved subdirectory of the global-model artifact (site keys are
#: percent-encoded flat file names, so no site can claim this path).
_GLOBAL_DIR = "_global"
#: How many known sites a missing-artifact error names before eliding.
_ERROR_SITE_LIMIT = 10


class RegistryError(Exception):
    """A registry artifact is missing, corrupt, or incompatible."""


def _site_key(site: str) -> str:
    return quote(site, safe="")


class ModelRegistry:
    """Stores and loads :class:`SiteModel` artifacts, keyed by site."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # -- paths -------------------------------------------------------------

    def path_for(self, site: str) -> Path:
        """Where ``site``'s artifact lives (whether or not it exists)."""
        return self.root / (_site_key(site) + _SUFFIX)

    def has(self, site: str) -> bool:
        return self.path_for(site).is_file()

    def sites(self) -> list[str]:
        """Sorted site names with an artifact in the registry."""
        if not self.root.is_dir():
            return []
        return sorted(
            unquote(path.name[: -len(_SUFFIX)])
            for path in self.root.glob("*" + _SUFFIX)
        )

    # -- save / load -------------------------------------------------------

    def _write_atomic(self, path: Path, payload: dict) -> Path:
        """Atomically write one artifact's JSON payload."""
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(payload, ensure_ascii=False, sort_keys=True)
        with atomic_write(path, fault="registry.write_temp") as handle:
            handle.write(text)
        return path

    def _read_artifact(self, path: Path, kind: str) -> dict:
        """Read one artifact, validating JSON shape, kind, and version."""
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RegistryError(f"corrupt artifact {path}: {exc}") from exc
        if not isinstance(data, dict):
            raise RegistryError(
                f"corrupt artifact {path}: expected a JSON object, "
                f"got {type(data).__name__}"
            )
        found = data.get("kind")
        if found != kind:
            article = (
                "a site-model" if kind == ARTIFACT_KIND else "a global-model"
            )
            raise RegistryError(
                f"{path} is not {article} artifact (kind={found!r}, "
                f"expected {kind!r})"
            )
        version = data.get("format_version")
        if version != FORMAT_VERSION:
            raise RegistryError(
                f"artifact {path} has format_version {version!r}; this build "
                f"reads version {FORMAT_VERSION} — retrain or migrate it"
            )
        return data

    def save(self, site_model: SiteModel) -> Path:
        """Atomically write ``site_model``'s artifact; returns its path."""
        return self._write_atomic(
            self.path_for(site_model.site), site_model_to_dict(site_model)
        )

    def load(self, site: str) -> SiteModel:
        """Load ``site``'s artifact, validating version and structure."""
        path = self.path_for(site)
        if not path.is_file():
            sites = self.sites()
            shown = sites[:_ERROR_SITE_LIMIT]
            known = ", ".join(shown) or "<registry empty>"
            if len(sites) > len(shown):
                known += f" (+{len(sites) - len(shown)} more)"
            raise RegistryError(
                f"no artifact for site {site!r} in {self.root} (have: {known})"
            )
        data = self._read_artifact(path, ARTIFACT_KIND)
        try:
            return site_model_from_dict(data)
        except (KeyError, TypeError, ValueError) as exc:
            raise RegistryError(
                f"malformed artifact {path}: {type(exc).__name__}: {exc}"
            ) from exc

    def delete(self, site: str) -> bool:
        """Remove a site's artifact; returns whether one existed."""
        path = self.path_for(site)
        if path.is_file():
            path.unlink()
            return True
        return False

    # -- the cross-site global model ---------------------------------------

    @property
    def global_path(self) -> Path:
        """Where the global-model artifact lives (existing or not)."""
        return self.root / _GLOBAL_DIR / ("model" + _SUFFIX)

    def has_global(self) -> bool:
        return self.global_path.is_file()

    def save_global(self, model) -> Path:
        """Atomically write the global model's artifact; returns its path."""
        return self._write_atomic(self.global_path, global_model_to_dict(model))

    def load_global(self):
        """Load the global model, validating version and structure.

        Returns a :class:`~repro.transfer.model.GlobalCeresModel`.
        """
        path = self.global_path
        if not path.is_file():
            raise RegistryError(
                f"no global model in {self.root} — train one with "
                f"`python -m repro train-global`"
            )
        data = self._read_artifact(path, GLOBAL_ARTIFACT_KIND)
        try:
            return global_model_from_dict(data)
        except (KeyError, TypeError, ValueError) as exc:
            raise RegistryError(
                f"malformed artifact {path}: {type(exc).__name__}: {exc}"
            ) from exc

    def delete_global(self) -> bool:
        """Remove the global-model artifact; returns whether one existed."""
        path = self.global_path
        if path.is_file():
            path.unlink()
            return True
        return False
