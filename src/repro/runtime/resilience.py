"""Fault-tolerant corpus runs: the crash-safe run journal and the
hardened-worker primitives (:mod:`repro.runtime.runner` wires them in).

CERES ran over 439K CommonCrawl sites; at that scale worker crashes,
hung pages, torn writes, and interrupted runs are the norm, not the
exception.  This module gives ``run_corpus`` the machinery to survive
them:

* :class:`RunJournal` — a write-ahead JSONL journal under a per-run
  directory.  Appends are single-``write`` + ``fsync`` (so a SIGKILL
  never interleaves two records), replay tolerates exactly one torn
  trailing line (the record being appended when the process died), and
  per-site extraction rows land in ``rows/<site>.jsonl`` via temp file +
  ``fsync`` + atomic rename.  Sites are keyed by a content fingerprint
  of their pages plus a config fingerprint, so ``--resume`` re-runs a
  site iff its inputs (or the config) changed.
* :func:`backoff_delay` / :func:`sleep_backoff` — bounded exponential
  backoff with *deterministic* jitter (seeded by the retry key, so chaos
  tests replay exactly).  ``sleep_backoff`` is the **only** sanctioned
  retry sleep in the codebase; CI greps for bare ``time.sleep`` retry
  loops elsewhere.
* :func:`deadline` — a per-site wall-clock timeout (SIGALRM-based on the
  main thread, where the alarm is deliverable; off the main thread it
  degrades to the cooperative :func:`soft_deadline` check).
* :func:`soft_deadline` / :class:`Deadline` — a monotonic-clock
  cooperative deadline usable from *any* thread (the serving tier's
  request handlers and batch workers), with a timer-armed event as the
  wake-up fallback for blocked waiters.
* :func:`classify_error` — transient (worth retrying: timeouts,
  connection resets, ENOSPC-style OS hiccups, injected transient
  faults) vs overload (the system is busy, not broken: bounded queues
  full, EAGAIN/EBUSY contention — retry later, never trip a breaker)
  vs permanent (retrying cannot help: missing files, value errors,
  injected permanent faults).
"""

from __future__ import annotations

import contextlib
import errno
import hashlib
import json
import os
import random
import signal
import tempfile
import threading
import time
from pathlib import Path
from typing import Iterable, Iterator, TextIO
from urllib.parse import quote

from repro.testing.faults import (
    FaultError,
    OverloadFaultError,
    TransientFaultError,
    fault_point,
)

__all__ = [
    "Deadline",
    "JournalError",
    "OverloadError",
    "RunJournal",
    "SiteTimeoutError",
    "STATE_DONE",
    "STATE_FAILED",
    "STATE_QUARANTINED",
    "STATE_RUNNING",
    "atomic_write",
    "backoff_delay",
    "classify_error",
    "config_fingerprint",
    "deadline",
    "fsync_directory",
    "site_fingerprint",
    "sleep_backoff",
    "soft_deadline",
]


class SiteTimeoutError(TimeoutError):
    """A site exceeded its wall-clock budget (see :func:`deadline`)."""


class OverloadError(RuntimeError):
    """The system is too busy to take the work right now.

    Raised by bounded admission paths (the serving tier's queue, a
    breaker open with no fallback).  Classified ``"overload"`` by
    :func:`classify_error`: worth retrying *later* (it is not broken),
    but never counted toward a circuit breaker and never treated as a
    permanent failure.
    """


class JournalError(ValueError):
    """The run journal is unusable: corrupt, config-mismatched, or a
    fresh run was pointed at an existing journal without ``resume``."""


# -- error classification ----------------------------------------------------

#: OS-level errnos worth retrying: flaky resources that can clear on
#: their own.  Missing files (ENOENT & friends) are *not* here —
#: retrying a nonexistent pages directory cannot help.
_TRANSIENT_ERRNOS = frozenset(
    {
        errno.EINTR,
        errno.EIO,
        errno.ENOSPC,
        errno.ESTALE,
        errno.ETIMEDOUT,
    }
)

#: OS-level errnos meaning "busy", not "broken": the resource exists and
#: works, there is just contention for it right now.  Distinct from
#: transient so shed/breaker decisions never conflate load with damage.
_OVERLOAD_ERRNOS = frozenset({errno.EAGAIN, errno.EBUSY})


def classify_error(exc: BaseException) -> str:
    """``"transient"`` (retry with backoff), ``"overload"`` (busy — back
    off and retry later, never trips a breaker), or ``"permanent"``
    (retrying cannot help).

    Injected faults carry their own classification
    (:class:`TransientFaultError` / :class:`OverloadFaultError` vs
    :class:`FaultError`); timeouts and connection failures are
    transient; OS errors split into contended-resource (overload) and
    flaky-resource (transient) errnos; everything else — logic errors,
    missing inputs, malformed data — is permanent.
    """
    if isinstance(exc, OverloadFaultError):
        return "overload"
    if isinstance(exc, TransientFaultError):
        return "transient"
    if isinstance(exc, FaultError):
        return "permanent"
    if isinstance(exc, OverloadError):
        return "overload"
    if isinstance(exc, (FileNotFoundError, NotADirectoryError,
                        IsADirectoryError, PermissionError)):
        return "permanent"
    if isinstance(exc, (TimeoutError, ConnectionError, InterruptedError)):
        return "transient"
    if isinstance(exc, OSError):
        if exc.errno in _OVERLOAD_ERRNOS:
            return "overload"
        return "transient" if exc.errno in _TRANSIENT_ERRNOS else "permanent"
    return "permanent"


# -- retry backoff -----------------------------------------------------------


def backoff_delay(
    attempt: int, *, base: float = 0.5, cap: float = 30.0, key: str = ""
) -> float:
    """Delay before retry ``attempt + 1`` (``attempt`` counts from 1).

    Exponential window ``base * 2**(attempt-1)`` capped at ``cap``, with
    jitter drawn uniformly from the window's upper half.  The jitter is
    *deterministic* — seeded by ``(key, attempt)`` — so a replayed chaos
    run sleeps exactly as long as the original, while distinct sites
    still decorrelate (each site passes its own key).
    """
    if attempt < 1:
        raise ValueError("attempt counts from 1")
    window = min(cap, base * (2.0 ** (attempt - 1)))
    rng = random.Random(f"{key}\x00{attempt}")
    return window * (0.5 + 0.5 * rng.random())


def sleep_backoff(
    attempt: int, *, base: float = 0.5, cap: float = 30.0, key: str = ""
) -> float:
    """Sleep :func:`backoff_delay` and return the delay slept.

    The only sanctioned retry sleep in the codebase — CI greps for bare
    ``time.sleep`` retry loops outside this helper.
    """
    delay = backoff_delay(attempt, base=base, cap=cap, key=key)
    time.sleep(delay)
    return delay


# -- wall-clock deadlines ----------------------------------------------------


class Deadline:
    """A monotonic-clock cooperative deadline, usable from any thread.

    Unlike :func:`deadline` (SIGALRM — main-thread-only, preemptive),
    a ``Deadline`` never interrupts anything by itself: code *checks* it
    at safe points (:meth:`check`, :meth:`expired`) and sizes its
    blocking waits by :meth:`remaining`.  :attr:`expired_event` is a
    :class:`threading.Event` that :func:`soft_deadline` arms with a
    timer at expiry, so a waiter multiplexing on it (or on an event via
    :meth:`wait`) wakes without polling even when nothing else fires.
    """

    __slots__ = ("seconds", "_expires_at", "expired_event", "_timer")

    def __init__(self, seconds: float | None) -> None:
        #: the budget this deadline was created with (None = unbounded).
        self.seconds = seconds
        self._expires_at = (
            None if seconds is None else time.monotonic() + seconds
        )
        #: set once the budget is exhausted (by the fallback timer, or by
        #: the first expiry-observing call on any thread).
        self.expired_event = threading.Event()
        self._timer: threading.Timer | None = None

    def _arm_timer(self) -> None:
        """Start the fallback timer that flips :attr:`expired_event`."""
        if self.seconds is not None and self._timer is None:
            self._timer = threading.Timer(
                self.seconds, self.expired_event.set
            )
            self._timer.daemon = True
            self._timer.start()

    def cancel(self) -> None:
        """Stop the fallback timer (the guarded block finished)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def remaining(self) -> float | None:
        """Seconds left (never negative); ``None`` when unbounded."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - time.monotonic())

    def expired(self) -> bool:
        """Whether the budget is exhausted (monotonic clock is truth)."""
        if self._expires_at is None:
            return False
        if time.monotonic() >= self._expires_at:
            self.expired_event.set()
            return True
        return False

    def check(self) -> None:
        """Raise :class:`SiteTimeoutError` if the budget is exhausted."""
        if self.expired():
            raise SiteTimeoutError(
                f"soft deadline of {self.seconds}s exceeded"
            )

    def wait(self, event: threading.Event, grace: float = 0.0) -> bool:
        """Wait for ``event`` up to the remaining budget (+ ``grace``).

        Returns whether the event was set — ``False`` means the deadline
        ran out first.  With no budget, waits indefinitely.
        """
        left = self.remaining()
        return event.wait(None if left is None else left + grace)


@contextlib.contextmanager
def soft_deadline(seconds: float | None) -> Iterator[Deadline]:
    """Cooperative, any-thread counterpart of :func:`deadline`.

    Yields a :class:`Deadline` the guarded code checks at safe points;
    the fallback timer arms :attr:`Deadline.expired_event` so blocked
    waiters wake at expiry without polling.  ``seconds`` None/<= 0
    yields an unbounded deadline (checks never fire), mirroring
    :func:`deadline`'s no-op contract.
    """
    unbounded = seconds is None or seconds <= 0
    handle = Deadline(None if unbounded else seconds)
    handle._arm_timer()
    try:
        yield handle
    finally:
        handle.cancel()


@contextlib.contextmanager
def deadline(seconds: float | None) -> Iterator[Deadline | None]:
    """Raise :class:`SiteTimeoutError` if the block outlives ``seconds``.

    SIGALRM-based on the main thread, so it interrupts blocking waits (a
    hung page read, an injected ``hang`` fault sleeping in C ``sleep``);
    both ``run_corpus`` inline mode and pool workers run site work on
    their process's main thread, where the alarm is deliverable.  Off
    the main thread (or without SIGALRM) it degrades to the cooperative
    :func:`soft_deadline`: the block cannot be preempted, but an overrun
    is still detected — and raised — when the block exits, and the
    yielded :class:`Deadline` lets cooperative code check mid-flight.
    A no-op when ``seconds`` is None/<= 0.
    """
    if seconds is None or seconds <= 0:
        yield None
        return
    usable = (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        with soft_deadline(seconds) as handle:
            yield handle
            handle.check()
        return

    def _expire(signum, frame):  # noqa: ARG001 — signal handler signature
        raise SiteTimeoutError(
            f"wall-clock budget of {seconds}s exceeded"
        )

    previous = signal.signal(signal.SIGALRM, _expire)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# -- fingerprints ------------------------------------------------------------


def config_fingerprint(config_data: dict, threshold: float | None = None) -> str:
    """Hash of everything that shapes a site's output besides its pages."""
    payload = json.dumps(
        {"config": config_data, "threshold": threshold},
        sort_keys=True, ensure_ascii=False,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def site_fingerprint(page_paths: Iterable[Path]) -> str:
    """Content hash of a site's page files (names + bytes, in order).

    Any edit, addition, removal, or rename of a page changes the
    fingerprint, so ``--resume`` re-runs exactly the sites whose inputs
    changed.
    """
    digest = hashlib.sha256()
    for path in page_paths:
        digest.update(path.name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x01")
    return digest.hexdigest()


# -- durable-write helpers ---------------------------------------------------


def fsync_directory(path: Path | str) -> None:
    """fsync a directory so a just-renamed entry survives power loss.

    Best-effort: some filesystems refuse directory fsync; the rename
    itself is still atomic there.
    """
    with contextlib.suppress(OSError):
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


@contextlib.contextmanager
def atomic_write(
    path: Path | str,
    *,
    fault: str | None = None,
    fault_fields: dict | None = None,
) -> Iterator[TextIO]:
    """Write ``path`` atomically: temp file + fsync + ``os.replace``.

    Yields a text handle onto a uniquely-named temp file in ``path``'s
    directory (unique per call, not per PID: concurrent saves from
    threads of one process must not interleave into a torn artifact).
    On clean exit the handle is flushed and fsynced before the rename —
    ``os.replace`` is only atomic about *names*; without the fsync a
    crash after the rename could still surface an empty or torn file
    under the final path — then the directory entry itself is persisted.
    On any failure the temp file is removed and the previous contents of
    ``path`` remain untouched.

    ``fault`` names an optional :func:`repro.testing.faults.fault_point`
    fired between close and rename (with ``path=<temp>`` so corrupt-write
    fault actions scribble on the staged file, never the live one).
    """
    path = Path(path)
    descriptor, temp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".tmp"
    )
    try:
        handle = os.fdopen(descriptor, "w", encoding="utf-8")
        try:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        finally:
            handle.close()
        if fault is not None:
            fault_point(fault, path=temp, **(fault_fields or {}))
        os.replace(temp, path)
        fsync_directory(path.parent)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(temp)
        raise


# -- the run journal ---------------------------------------------------------

STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"
STATE_QUARANTINED = "quarantined"

#: Journal schema revision (bumped on incompatible record changes).
JOURNAL_VERSION = 1


def _site_key(site: str) -> str:
    """Filesystem-safe, reversible key (same scheme as the registry)."""
    return quote(site, safe="")


class RunJournal:
    """Write-ahead journal for one corpus run directory.

    Layout::

        <run_dir>/
            journal.jsonl          # append-only state records
            rows/<site>.jsonl      # per-site extraction rows (atomic)

    Record shapes (one JSON object per line)::

        {"event": "run", "journal_version": 1, "config_hash": ..., "resume": ...}
        {"event": "site", "site": S, "state": "running", "fingerprint": F}
        {"event": "site", "site": S, "state": "done"|"failed"|"quarantined",
         "fingerprint": F, "report": {...trimmed SiteReport...}}

    Every append is a single ``write`` + flush + ``fsync``, so a record
    is either fully on disk or (for the one being written at the moment
    of death) a torn trailing line that :meth:`replay` discards.  A torn
    line anywhere *else* means real corruption and raises
    :class:`JournalError`.
    """

    JOURNAL_NAME = "journal.jsonl"
    ROWS_DIR = "rows"

    def __init__(self, run_dir: str | Path) -> None:
        self.run_dir = Path(run_dir)
        self.path = self.run_dir / self.JOURNAL_NAME
        self.rows_dir = self.run_dir / self.ROWS_DIR
        self._handle: TextIO | None = None

    # -- lifecycle ---------------------------------------------------------

    def open(self, *, config_hash: str, resume: bool = False) -> dict[str, dict]:
        """Create/replay the journal; returns each site's last record.

        A fresh run refuses an existing journal (pass ``resume=True`` to
        continue one); a resumed run refuses a journal written under a
        different config hash — silently mixing configs would make the
        "resumed ≡ uninterrupted" guarantee a lie.
        """
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.rows_dir.mkdir(exist_ok=True)
        states: dict[str, dict] = {}
        if self.path.exists():
            if not resume:
                raise JournalError(
                    f"{self.path} already exists — resume the run "
                    f"(--resume) or point --run-dir at a fresh directory"
                )
            for record in self.replay():
                if record.get("event") == "run":
                    found = record.get("config_hash")
                    if found != config_hash:
                        raise JournalError(
                            f"{self.path} was written under a different "
                            f"config (hash {found!r}, current "
                            f"{config_hash!r}) — a resumed run must use "
                            f"the original config, or start a fresh run-dir"
                        )
                elif record.get("event") == "site":
                    states[record["site"]] = record
        self._handle = open(self.path, "a", encoding="utf-8")
        fsync_directory(self.run_dir)
        self._append(
            {
                "event": "run",
                "journal_version": JOURNAL_VERSION,
                "config_hash": config_hash,
                "resume": resume,
            }
        )
        return states

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- appends -----------------------------------------------------------

    def _append(self, record: dict) -> None:
        if self._handle is None:
            raise JournalError("journal is not open (call open() first)")
        fault_point("journal.append", site=record.get("site"))
        # One write + fsync per record: the line is fully durable before
        # the caller proceeds, and a crash tears at most the final line.
        self._handle.write(json.dumps(record, ensure_ascii=False) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def record_site(self, site: str, state: str, **fields) -> None:
        """Append one site-state record (write-ahead: callers record
        ``running`` *before* dispatching work)."""
        self._append({"event": "site", "site": site, "state": state, **fields})

    # -- replay ------------------------------------------------------------

    def replay(self) -> list[dict]:
        """All durable records, oldest first; a torn final line (the
        append in flight when the process died) is discarded."""
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return []
        lines = text.splitlines()
        records: list[dict] = []
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if index == len(lines) - 1:
                    break  # torn tail — the crash-interrupted append
                raise JournalError(
                    f"{self.path}:{index + 1}: corrupt journal record: {exc}"
                ) from exc
        return records

    # -- per-site rows -----------------------------------------------------

    def rows_path(self, site: str) -> Path:
        return self.rows_dir / (_site_key(site) + ".jsonl")

    def write_rows(self, site: str, rows: Iterable[dict]) -> Path:
        """Atomically persist a site's extraction rows (temp + fsync +
        rename): readers see the old rows or all the new ones, never a
        torn file."""
        path = self.rows_path(site)
        with atomic_write(
            path, fault="rows.write", fault_fields={"site": site}
        ) as handle:
            for row in rows:
                handle.write(json.dumps(row, ensure_ascii=False) + "\n")
        return path

    def read_rows_text(self, site: str) -> str:
        """A site's persisted rows, verbatim (JSONL text)."""
        return self.rows_path(site).read_text(encoding="utf-8")

    def read_rows(self, site: str) -> list[dict]:
        return [
            json.loads(line)
            for line in self.read_rows_text(site).splitlines()
            if line.strip()
        ]
