"""The serving fast path: extraction without annotation or training.

:class:`ExtractionService` fronts a :class:`~repro.runtime.registry.ModelRegistry`
for read traffic.  Per site it loads the artifact once, builds one
:class:`~repro.core.extraction.extractor.CeresExtractor` per modeled
cluster (via the shared :class:`ClusterExtractorPool`), and memoizes the
``page_signature → cluster`` assignment — so a warm ``extract_pages()``
call does only feature extraction and a matrix multiply per page.  The
cold pipeline re-runs clustering, topic identification, annotation, and
L-BFGS training on every call; the throughput benchmark
(``benchmarks/bench_runtime_throughput.py``) tracks the gap.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.config import CeresConfig
from repro.core.extraction.extractor import (
    ClusterExtractorPool,
    Extraction,
    PageCandidates,
)
from repro.dom.parser import Document
from repro.runtime.registry import ModelRegistry, RegistryError
from repro.runtime.serialize import SiteModel

__all__ = ["ExtractionService"]


class ExtractionService:
    """Serves extractions from registry artifacts, caching per site."""

    def __init__(self, registry: ModelRegistry | str | Path | None = None) -> None:
        """``registry`` may be a :class:`ModelRegistry`, a root path, or
        None for a purely in-memory service fed via :meth:`add_site_model`."""
        if registry is None or isinstance(registry, ModelRegistry):
            self.registry = registry
        else:
            self.registry = ModelRegistry(registry)
        self._site_models: dict[str, SiteModel] = {}
        self._pools: dict[str, ClusterExtractorPool] = {}

    # -- loading -----------------------------------------------------------

    def add_site_model(self, site_model: SiteModel) -> None:
        """Register an in-memory model (e.g. fresh from training)."""
        self._site_models[site_model.site] = site_model
        self._pools.pop(site_model.site, None)

    def site_model(self, site: str) -> SiteModel:
        """The site's model, loading from the registry on first use."""
        cached = self._site_models.get(site)
        if cached is not None:
            return cached
        if self.registry is None:
            raise RegistryError(
                f"site {site!r} is not loaded and the service has no registry"
            )
        model = self.registry.load(site)
        self._site_models[site] = model
        return model

    def pool(self, site: str) -> ClusterExtractorPool:
        """The site's extractor pool (one extractor per cluster, cached)."""
        cached = self._pools.get(site)
        if cached is None:
            site_model = self.site_model(site)
            cached = ClusterExtractorPool(
                [(c.signature, c.model) for c in site_model.clusters],
                site_model.config,
            )
            self._pools[site] = cached
        return cached

    def loaded_sites(self) -> list[str]:
        """Sites currently resident in memory."""
        return sorted(self._site_models)

    def available_sites(self) -> list[str]:
        """Sites loadable right now: resident ∪ registry artifacts."""
        names = set(self._site_models)
        if self.registry is not None:
            names.update(self.registry.sites())
        return sorted(names)

    def evict(self, site: str) -> None:
        """Drop a site's cached model and extractors (e.g. after retrain)."""
        self._site_models.pop(site, None)
        self._pools.pop(site, None)

    # -- serving -----------------------------------------------------------

    def extract_pages(
        self,
        site: str,
        documents: list[Document],
        threshold: float | None = None,
    ) -> list[Extraction]:
        """Batched, thresholded extraction using cached extractors only.

        ``threshold`` defaults to the trained config's
        ``confidence_threshold``.  No annotation or training happens here.
        """
        pool = self.pool(site)
        try:
            return pool.extract(documents, threshold)
        finally:
            # Batch boundary: per-page feature registries are keyed by
            # id(document) and must not outlive the documents.
            pool.clear_page_caches()

    def candidates(
        self, site: str, documents: list[Document]
    ) -> list[PageCandidates]:
        """Unthresholded candidates per page (for sweeps / re-thresholding)."""
        pool = self.pool(site)
        try:
            return pool.candidates(documents)
        finally:
            pool.clear_page_caches()
