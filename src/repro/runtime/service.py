"""The serving fast path: extraction without annotation or training.

:class:`ExtractionService` fronts a :class:`~repro.runtime.registry.ModelRegistry`
for read traffic.  Per site it loads the artifact once, builds one
:class:`~repro.core.extraction.extractor.CeresExtractor` per modeled
cluster (via the shared :class:`ClusterExtractorPool`), and memoizes the
``page_signature → cluster`` assignment — so a warm ``extract_pages()``
call groups the batch by cluster and runs the batched,
vocabulary-compiled scoring engine once per cluster model (one CSR
matrix over every node of every page, one matmul; see
:mod:`repro.core.extraction.scoring`).  The cold pipeline re-runs
clustering, topic identification, annotation, and L-BFGS training on
every call.

Memory is bounded on both axes of a long-lived server:

* **per page** — feature registries and cluster assignments live in
  bounded LRUs keyed by ``Document.doc_id`` (see
  :mod:`repro.runtime.cache`), so nothing accumulates across batches and
  a recycled object id can never resurface another page's state;
* **per site** — at most ``max_resident_sites`` site models (and their
  extractor pools) stay loaded; the least recently *served* site is
  evicted and transparently reloaded from the registry on next use.

Zero-shot fallback (``transfer_fallback=True``): a request for a site
with no registry artifact is served immediately from the cross-site
global model (:mod:`repro.transfer`) at reduced precision — extractions
come back tagged ``model="transfer"`` — and, when an ``upgrade_hook``
is installed (usually a
:class:`~repro.transfer.upgrade.BackgroundUpgrader`), the per-site
model is trained off-thread and atomically swapped in.  Site residency
is guarded by a lock so that swap is safe against concurrent serving.

:meth:`ExtractionService.cache_stats` exposes every counter; the CLI
(``python -m repro stats``) and the memory benchmark
(``benchmarks/bench_cache_memory.py``) read it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro import obs
from repro.core.config import CeresConfig
from repro.core.extraction.extractor import (
    ClusterExtractorPool,
    Extraction,
    PageCandidates,
)
from repro.dom.parser import Document
from repro.runtime.cache import LRUCache
from repro.runtime.registry import ModelRegistry, RegistryError
from repro.runtime.serialize import SiteModel

if TYPE_CHECKING:
    from repro.transfer.model import GlobalCeresModel

__all__ = ["ExtractionService"]


@dataclass
class _ResidentSite:
    """One site's in-memory serving state: the model + its lazy pool."""

    model: SiteModel
    pool: ClusterExtractorPool | None = None


class ExtractionService:
    """Serves extractions from registry artifacts, caching per site."""

    def __init__(
        self,
        registry: ModelRegistry | str | Path | None = None,
        *,
        max_resident_sites: int | None = None,
        transfer_fallback: bool = False,
    ) -> None:
        """``registry`` may be a :class:`ModelRegistry`, a root path, or
        None for a purely in-memory service fed via :meth:`add_site_model`.

        ``max_resident_sites`` caps how many site models stay loaded at
        once (default: :attr:`CeresConfig.max_resident_sites`); the least
        recently served site is evicted, to be reloaded from the registry
        if asked for again.

        ``transfer_fallback`` serves sites *without* an artifact from the
        registry's global model (or one installed via
        :meth:`set_global_model`) instead of raising — zero-shot, tagged
        ``model="transfer"``.  Corrupt or version-incompatible artifacts
        still raise: the fallback covers absence, never masks damage.
        """
        if registry is None or isinstance(registry, ModelRegistry):
            self.registry = registry
        else:
            self.registry = ModelRegistry(registry)
        if max_resident_sites is None:
            max_resident_sites = CeresConfig().max_resident_sites
        self._sites: LRUCache[str, _ResidentSite] = LRUCache(
            max_resident_sites, name="resident_sites"
        )
        #: Guards the residency LRU and the served-site history — the
        #: background upgrader swaps trained models in from its worker
        #: thread, and LRU mutation is not atomic.
        self._residency_lock = threading.RLock()
        #: Sites this process has ever had resident — lets a reload-after-
        #: eviction failure distinguish "deleted mid-run" from "never
        #: existed" and say so.
        self._ever_resident: set[str] = set()
        self._transfer_fallback = transfer_fallback
        self._global: GlobalCeresModel | None = None
        #: Optional ``hook(site, documents)`` invoked after every
        #: transfer-served request — typically
        #: :class:`~repro.transfer.upgrade.BackgroundUpgrader`, which
        #: trains the per-site model off-thread and swaps it in.  Must
        #: not block: it runs on the serving thread.
        self.upgrade_hook: Callable[[str, list[Document]], None] | None = None

    # -- loading -----------------------------------------------------------

    def add_site_model(self, site_model: SiteModel) -> None:
        """Register an in-memory model (e.g. fresh from training).

        Thread-safe: this is also the background upgrader's atomic swap —
        the next request for the site scores through the new model.
        """
        with self._residency_lock:
            self._sites.put(site_model.site, _ResidentSite(site_model))
            self._ever_resident.add(site_model.site)

    def _resident(self, site: str) -> _ResidentSite:
        with self._residency_lock:
            cached = self._sites.get(site)
            was_resident = site in self._ever_resident
        if cached is not None:
            return cached
        if self.registry is None:
            raise RegistryError(
                f"site {site!r} is not loaded and the service has no registry"
            )
        try:
            model = self.registry.load(site)
        except RegistryError as exc:
            if was_resident and not self.registry.has(site):
                raise RegistryError(
                    f"site {site!r} was served by this process but its "
                    f"artifact has since been deleted from "
                    f"{self.registry.root}; retrain the site "
                    f"(`python -m repro train` / `run-corpus`) or serve it "
                    f"zero-shot via the transfer fallback "
                    f"(`serve --transfer-fallback`)"
                ) from exc
            raise
        resident = _ResidentSite(model)
        with self._residency_lock:
            self._sites.put(site, resident)
            self._ever_resident.add(site)
        return resident

    def site_model(self, site: str) -> SiteModel:
        """The site's model, loading from the registry on first use."""
        return self._resident(site).model

    def pool(self, site: str) -> ClusterExtractorPool:
        """The site's extractor pool (one extractor per cluster, cached)."""
        resident = self._resident(site)
        if resident.pool is None:
            site_model = resident.model
            resident.pool = ClusterExtractorPool(
                [(c.signature, c.model) for c in site_model.clusters],
                site_model.config,
            )
        return resident.pool

    def loaded_sites(self) -> list[str]:
        """Sites currently resident in memory."""
        with self._residency_lock:
            return sorted(self._sites.keys())

    def available_sites(self) -> list[str]:
        """Sites loadable right now: resident ∪ registry artifacts."""
        with self._residency_lock:
            names = set(self._sites.keys())
        if self.registry is not None:
            names.update(self.registry.sites())
        return sorted(names)

    def evict(self, site: str) -> None:
        """Drop a site's cached model and extractors (e.g. after retrain)."""
        with self._residency_lock:
            self._sites.pop(site)

    # -- the cross-site global model ---------------------------------------

    def set_global_model(self, model: GlobalCeresModel) -> None:
        """Install an in-memory global model (e.g. fresh from
        :func:`repro.transfer.trainer.train_global`)."""
        self._global = model

    def global_model(self) -> GlobalCeresModel | None:
        """The global model, loading the registry artifact on first use.

        Re-probes the registry while unset, so a ``train-global`` run
        that lands mid-serve is picked up without restarting.
        """
        if (
            self._global is None
            and self.registry is not None
            and self.registry.has_global()
        ):
            self._global = self.registry.load_global()
        return self._global

    def has_site_model(self, site: str) -> bool:
        """True if ``site`` would be served by its *own* model — resident
        or with a registry artifact — rather than zero-shot.  Never
        loads anything; never raises."""
        with self._residency_lock:
            if site in self._sites:
                return True
        return self.registry is not None and self.registry.has(site)

    # -- observability -----------------------------------------------------

    def cache_stats(self) -> dict:
        """Every cache counter of the service, JSON-friendly.

        ``sites`` is the site-residency LRU; ``per_site`` holds each
        resident site's pool caches (feature registries merged across
        cluster extractors, plus the signature→cluster memo).  Reading
        stats does not touch recency.
        """
        per_site: dict[str, dict] = {}
        with self._residency_lock:
            residents = {
                site: self._sites.peek(site) for site in self._sites.keys()
            }
            site_stats = self._sites.stats().to_dict()
        for site, resident in residents.items():
            if resident is None or resident.pool is None:
                continue
            per_site[site] = {
                name: stats.to_dict()
                for name, stats in resident.pool.cache_stats().items()
            }
        return {"sites": site_stats, "per_site": per_site}

    def publish_metrics(self, registry=None) -> None:
        """Fold :meth:`cache_stats` into a metrics registry (default: the
        active :func:`repro.obs.metrics` one).

        Per-site pool counters merge into one ``cache.<name>.*`` family
        per cache kind, matching what pool workers report — so a parent
        registry that merges many workers' snapshots and a single-process
        run produce the same counter names.  Cache counters are
        cumulative: publish once per service lifetime, at report time.
        """
        registry = obs.metrics() if registry is None else registry
        stats = self.cache_stats()
        registry.record_cache(stats["sites"])
        for site_stats in stats["per_site"].values():
            for data in site_stats.values():
                registry.record_cache(data)

    # -- serving -----------------------------------------------------------

    def extract_pages(
        self,
        site: str,
        documents: list[Document],
        threshold: float | None = None,
    ) -> list[Extraction]:
        """Batched, thresholded extraction using cached extractors only.

        The whole document list is scored in cluster-grouped batches by
        the compiled scoring engine — not page by page.  ``threshold``
        defaults to the trained config's ``confidence_threshold``.  No
        annotation or training happens here, and no per-batch cleanup is
        needed: per-page state lives in bounded LRUs keyed by ``doc_id``.

        With ``transfer_fallback`` on, a site with no artifact is served
        zero-shot from the global model instead (tagged
        ``model="transfer"``), and the ``upgrade_hook`` — if any — is
        invited to train the real model in the background.
        """
        try:
            pool = self.pool(site)
        except RegistryError:
            if not self._transfer_fallback or (
                self.registry is not None and self.registry.has(site)
            ):
                # Fallback disabled, or the artifact exists but failed to
                # load (corrupt / wrong version) — absence is servable,
                # damage is not.
                raise
            global_model = self.global_model()
            if global_model is None:
                raise
            return self._extract_transfer(site, documents, threshold, global_model)
        with obs.span(
            "service.extract_pages", site=site, pages=len(documents)
        ) as request_span:
            extractions = pool.extract(documents, threshold)
            request_span.set(extractions=len(extractions))
        registry = obs.metrics()
        registry.inc("service.requests")
        registry.inc("service.pages", len(documents))
        registry.inc("service.extractions", len(extractions))
        return extractions

    def extract_pages_transfer(
        self,
        site: str,
        documents: list[Document],
        threshold: float | None = None,
    ) -> list[Extraction]:
        """Serve one request zero-shot through the global model,
        *regardless* of whether a per-site artifact exists.

        This is the serving tier's graceful-degradation path: a site
        whose per-site model keeps failing (circuit breaker open) is
        served from the cross-site transfer model — rows tagged
        ``model="transfer"`` — instead of 500ing.  Unlike the implicit
        absence fallback in :meth:`extract_pages`, the ``upgrade_hook``
        is *not* invited: the per-site model exists and is suspect, so
        retraining policy belongs to whoever opened the breaker.

        Raises :class:`RegistryError` when no global model is available.
        """
        global_model = self.global_model()
        if global_model is None:
            raise RegistryError(
                f"cannot serve {site!r} zero-shot: no cross-site global "
                f"model is installed (train one with "
                f"`python -m repro train-global`)"
            )
        return self._extract_transfer(
            site, documents, threshold, global_model, invoke_hook=False
        )

    def _extract_transfer(
        self,
        site: str,
        documents: list[Document],
        threshold: float | None,
        global_model: GlobalCeresModel,
        invoke_hook: bool = True,
    ) -> list[Extraction]:
        """Zero-shot serving of one request through the global model."""
        with obs.span(
            "service.transfer_extract", site=site, pages=len(documents)
        ) as request_span:
            extractions = global_model.extract(documents, threshold)
            request_span.set(extractions=len(extractions))
        registry = obs.metrics()
        registry.inc("service.requests")
        registry.inc("transfer.requests")
        registry.inc("transfer.pages", len(documents))
        registry.inc("transfer.extractions", len(extractions))
        hook = self.upgrade_hook
        if invoke_hook and hook is not None:
            hook(site, documents)
        return extractions

    def candidates(
        self, site: str, documents: list[Document]
    ) -> list[PageCandidates]:
        """Unthresholded candidates per page (for sweeps / re-thresholding)."""
        return self.pool(site).candidates(documents)

    # -- fusion ------------------------------------------------------------

    def fused_facts(
        self,
        documents_by_site: dict[str, list[Document]],
        threshold: float | None = None,
        *,
        min_score: float = 0.0,
        min_sites: int = 1,
        site_reliability: dict[str, float] | None = None,
    ):
        """Cross-site fused facts over served extractions.

        Each site's documents are extracted through the warm batched path
        (loading models from the registry as needed), then fused with the
        Knowledge-Vault-style noisy-OR (see :mod:`repro.fusion`).  Sites
        are served in sorted name order and the fused output carries a
        total deterministic order, so the result is reproducible across
        calls and residency states.

        Returns a list of :class:`~repro.fusion.fuse.FusedFact`.
        """
        # Imported lazily like the trainer stack: minimal serving
        # deployments that never fuse don't pay for the fusion layer.
        from repro.fusion.store import FactStore

        store = FactStore(site_reliability=site_reliability)
        for site in sorted(documents_by_site):
            store.add_extractions(
                site,
                self.extract_pages(site, documents_by_site[site], threshold),
            )
        return store.finalize(min_score=min_score, min_sites=min_sites)
