"""The parallel corpus runner: annotate/train/extract over many sites.

CERES was run over 439,000 CommonCrawl sites; per-site work is
embarrassingly parallel (each site has its own templates, lexicon, and
model).  The runner shards a corpus across a ``concurrent.futures``
process pool, writes each trained site's artifact into the
:class:`~repro.runtime.registry.ModelRegistry`, and streams extraction
rows to JSONL as sites finish.

Corpus formats (:func:`discover_corpus`):

* **directory-of-directories** — every immediate subdirectory containing
  at least one HTML page (``.html``/``.htm``, any case) is one site
  (named after the subdirectory);
* **JSONL manifest** — one object per line:
  ``{"site": "name", "pages": "path/to/html/dir"}``, relative paths
  resolved against the manifest's directory (the pages directory must
  exist — a missing one is a manifest error at discovery time, not a
  worker-side surprise).

Failure isolation and resilience (:mod:`repro.runtime.resilience`):

* each site runs inside its own try/except (in its own worker process
  under ``max_workers > 1``); a site that raises produces a failed
  :class:`SiteReport` carrying the error and traceback while every other
  site proceeds — one bad site never kills the run;
* site work honors a wall-clock ``site_timeout`` and transient failures
  are retried up to ``max_attempts`` times with exponential backoff and
  deterministic jitter (``runner.retries`` counts them, each attempt is
  a ``site.attempt`` span);
* a site whose full-batch run fails is retried once in **degraded
  page-isolation mode**: pages are loaded one at a time, poison pages
  are quarantined (``SiteReport.n_quarantined_pages``,
  ``runner.quarantined``) and the site completes on the survivors
  instead of being lost;
* with ``run_dir`` set, a write-ahead :class:`~repro.runtime.resilience.
  RunJournal` records per-site state (running/done/failed/quarantined,
  keyed by a content fingerprint of the site's pages plus the config
  hash), per-site rows land in ``run_dir/rows/`` via atomic rename, and
  the final output JSONL is assembled in sorted-site order — so a run
  killed at any point and restarted with ``resume=True`` skips
  hash-unchanged completed sites and produces byte-identical final
  extraction and fused output.
"""

from __future__ import annotations

import concurrent.futures
import json
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, TextIO

if TYPE_CHECKING:
    from repro.fusion.store import FactStore

from repro import obs
from repro.core.config import CeresConfig
from repro.dom.parser import Document, parse_html
from repro.runtime import resilience
from repro.runtime.registry import ModelRegistry
from repro.runtime.serialize import (
    SiteModel,
    config_from_dict,
    config_to_dict,
)
from repro.runtime.service import ExtractionService
from repro.testing.faults import fault_point

__all__ = [
    "SiteSpec",
    "SiteReport",
    "discover_corpus",
    "extraction_row",
    "load_site_documents",
    "run_corpus",
]


@dataclass(frozen=True)
class SiteSpec:
    """One site's unit of work: a name and a directory of HTML pages."""

    site: str
    pages_dir: str


@dataclass
class SiteReport:
    """Outcome of processing one site."""

    site: str
    ok: bool
    error: str | None = None
    traceback: str | None = None
    n_pages: int = 0
    n_clusters: int = 0
    n_extractions: int = 0
    #: template clusters (and the pages inside them) dropped during
    #: annotation for falling below ``min_cluster_size`` — surfaced so
    #: unmodeled pages never disappear silently.
    n_skipped_clusters: int = 0
    n_skipped_pages: int = 0
    #: seed-KB adjudication of this site's extractions: how many the KB
    #: could check (it knows the subject and predicate) and how many of
    #: those agreed — the inputs to fusion's site-reliability weight.
    kb_checked: int = 0
    kb_agreed: int = 0
    artifact_path: str | None = None
    seconds: float = 0.0
    #: full-batch attempts made (1 = first try succeeded); the degraded
    #: page-isolation pass, when taken, is on top of these.
    attempts: int = 1
    #: the site completed in degraded page-isolation mode.
    degraded: bool = False
    #: poison pages quarantined by the degraded pass (file names).
    n_quarantined_pages: int = 0
    quarantined_pages: list = field(default_factory=list)
    #: a resumed run skipped this site (journal said done, fingerprint
    #: unchanged) and replayed its persisted rows instead of re-running.
    resumed: bool = False
    #: the worker's :class:`~repro.obs.metrics.MetricsRegistry` snapshot
    #: (stage timings, cache counters, scoring/fusion counters).  Always
    #: present on reports produced by :func:`_run_site`; the parent
    #: merges it so per-site telemetry no longer dies with the worker.
    metrics: dict | None = None
    #: the worker's finished spans (only when the parent had tracing
    #: enabled — spans are bulkier than the metrics snapshot).
    spans: list | None = None

    def summary(self) -> str:
        """One progress line for logs."""
        if self.resumed:
            return (
                f"site={self.site} resumed (unchanged: "
                f"pages={self.n_pages} extractions={self.n_extractions})"
            )
        if not self.ok:
            attempts = (
                f", {self.attempts} attempts" if self.attempts > 1 else ""
            )
            return (
                f"site={self.site} FAILED "
                f"({self.seconds:.1f}s{attempts}): {self.error}"
            )
        skipped = ""
        if self.n_skipped_pages:
            skipped = (
                f" skipped={self.n_skipped_pages}p/"
                f"{self.n_skipped_clusters}c"
            )
        kb_note = ""
        if self.kb_checked:
            kb_note = f" kb={self.kb_agreed}/{self.kb_checked}"
        resilience_note = ""
        if self.attempts > 1:
            resilience_note += f" attempts={self.attempts}"
        if self.degraded:
            resilience_note += " degraded"
        if self.n_quarantined_pages:
            resilience_note += f" quarantined={self.n_quarantined_pages}p"
        return (
            f"site={self.site} ok pages={self.n_pages} "
            f"clusters={self.n_clusters} extractions={self.n_extractions}"
            f"{skipped}{kb_note}{resilience_note}{self._cache_note()} "
            f"({self.seconds:.1f}s)"
        )

    def _cache_note(self) -> str:
        """Feature-registry hit rate from the worker metrics snapshot —
        the counter that used to be computed in the worker and thrown
        away with the process."""
        counters = (self.metrics or {}).get("counters", {})
        hits = counters.get("cache.feature_registry.hits", 0)
        misses = counters.get("cache.feature_registry.misses", 0)
        if not hits and not misses:
            return ""
        return f" feat_cache={hits / (hits + misses):.0%}"


def _journal_view(report: SiteReport) -> dict:
    """The report fields worth persisting in the journal: everything
    except the bulky telemetry payloads and the resume marker."""
    data = dict(report.__dict__)
    for transient in ("metrics", "spans", "resumed"):
        data.pop(transient, None)
    return data


#: Page file suffixes accepted by discovery and loading, matched
#: case-insensitively: real crawls mix ``.html``, ``.htm``, and
#: uppercase-suffixed pages freely.
PAGE_SUFFIXES = frozenset({".html", ".htm"})


def _page_files(pages_dir: Path) -> list[Path]:
    """HTML page files of one site directory, sorted by file name."""
    return sorted(
        child
        for child in pages_dir.iterdir()
        if child.is_file() and child.suffix.lower() in PAGE_SUFFIXES
    )


def discover_corpus(corpus: str | Path) -> list[SiteSpec]:
    """Resolve a corpus path into per-site work units (sorted by name)."""
    path = Path(corpus)
    if path.is_dir():
        specs = [
            SiteSpec(child.name, str(child))
            for child in sorted(path.iterdir())
            if child.is_dir() and _page_files(child)
        ]
        if not specs:
            raise ValueError(
                f"no site subdirectories with .html/.htm files under {path}"
            )
        return specs
    if path.is_file():
        specs = []
        base = path.parent
        #: site name -> manifest line that first claimed it.  Duplicates
        #: would race last-writer-wins on one registry artifact and
        #: interleave output rows under a single site label.
        first_claim: dict[str, int] = {}
        for line_no, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                entry = json.loads(line)
                site, pages = entry["site"], entry["pages"]
                if not isinstance(site, str) or not isinstance(pages, str):
                    raise TypeError("site and pages must be strings")
            except (json.JSONDecodeError, TypeError, KeyError) as exc:
                raise ValueError(
                    f"{path}:{line_no}: bad manifest line "
                    f'(need {{"site": ..., "pages": ...}}): {exc}'
                ) from exc
            claimed = first_claim.setdefault(site, line_no)
            if claimed != line_no:
                raise ValueError(
                    f"{path}:{line_no}: duplicate site {site!r} "
                    f"(first defined on line {claimed}); each site may "
                    f"appear only once per manifest"
                )
            pages_path = Path(pages)
            if not pages_path.is_absolute():
                pages_path = base / pages_path
            specs.append((line_no, SiteSpec(str(site), str(pages_path))))
        if not specs:
            raise ValueError(f"manifest {path} lists no sites")
        # Second pass, so structural manifest errors (bad JSON, duplicate
        # sites) surface before filesystem ones.  Validating existence at
        # discovery time — with the manifest line in hand — beats the
        # confusing FileNotFoundError it used to become deep inside a
        # pool worker.
        for line_no, spec in specs:
            if not Path(spec.pages_dir).is_dir():
                raise ValueError(
                    f"{path}:{line_no}: pages directory does not exist "
                    f"for site {spec.site!r}: {spec.pages_dir}"
                )
        specs = [spec for _, spec in specs]
        return sorted(specs, key=lambda spec: spec.site)
    raise FileNotFoundError(f"corpus path does not exist: {path}")


def load_site_documents(pages_dir: str | Path) -> list[Document]:
    """Parse every HTML page of one site (``.html``/``.htm``, any case),
    sorted by file name."""
    paths = _page_files(Path(pages_dir))
    if not paths:
        raise FileNotFoundError(f"no .html/.htm files found in {pages_dir!r}")
    return [
        parse_html(
            page.read_text(encoding="utf-8", errors="replace"), url=page.name
        )
        for page in paths
    ]


def _load_documents(
    pages_dir: str,
    site: str,
    *,
    isolate: bool = False,
    page_timeout: float | None = None,
) -> tuple[list[Document], list[str]]:
    """The runner's page loader: like :func:`load_site_documents` but
    with per-page fault injection points and an optional **isolation
    mode** for the degraded retry — each page loads inside its own
    try/except (and its own wall-clock budget), and a page that raises
    is quarantined by name instead of sinking the whole site."""
    paths = _page_files(Path(pages_dir))
    if not paths:
        raise FileNotFoundError(f"no .html/.htm files found in {pages_dir!r}")
    documents: list[Document] = []
    quarantined: list[str] = []
    for path in paths:
        try:
            with resilience.deadline(page_timeout if isolate else None):
                fault_point("page.parse", site=site, page=path.name)
                documents.append(
                    parse_html(
                        path.read_text(encoding="utf-8", errors="replace"),
                        url=path.name,
                    )
                )
        except Exception:  # noqa: BLE001 — quarantine is the contract
            if not isolate:
                raise
            quarantined.append(path.name)
    if isolate and not documents:
        raise RuntimeError(
            f"all {len(paths)} page(s) of {pages_dir!r} were quarantined"
        )
    return documents, quarantined


def extraction_row(extraction, page_url: str, site: str | None = None) -> dict:
    """The canonical JSONL row — shared by extract, serve, and run-corpus
    so the three streams never drift apart.

    ``confidence`` is emitted at full precision: JSON floats round-trip
    exactly, so fusing from rows on disk is bit-identical to fusing the
    in-memory extractions.  Rounding belongs in human-facing summaries
    only — a rounded row made the two paths diverge.

    Rows carry a ``model`` key only for non-default provenance
    (``"transfer"`` for zero-shot serving) — per-site rows stay
    byte-identical to what they were before the tag existed.
    """
    row: dict = {"site": site} if site is not None else {}
    row.update(
        {
            "page": page_url,
            "subject": extraction.subject,
            "predicate": extraction.predicate,
            "object": extraction.object,
            "confidence": extraction.confidence,
        }
    )
    model = getattr(extraction, "model", "site")
    if model != "site":
        row["model"] = model
    return row


# -- worker ----------------------------------------------------------------


def _attempt_site(
    report: SiteReport,
    site: str,
    pages_dir: str,
    kb_path: str,
    registry_root: str | None,
    config_data: dict,
    threshold: float | None,
    site_metrics,
    *,
    isolate_pages: bool = False,
    site_timeout: float | None = None,
) -> list[dict]:
    """One attempt at a site, end to end; raises on failure.

    In the normal (full-batch) mode the caller wraps the whole call in a
    single :func:`~repro.runtime.resilience.deadline`.  In degraded
    ``isolate_pages`` mode this function budgets itself instead: each
    page load gets the site budget (so one hung page is quarantined, not
    fatal), and the pipeline over the surviving pages gets it again.
    """
    from repro.core.pipeline import CeresPipeline
    from repro.kb.io import load_kb

    fault_point("site.run", site=site)
    config = config_from_dict(config_data)
    kb = load_kb(kb_path)
    report.n_quarantined_pages = 0
    report.quarantined_pages = []
    documents, quarantined = _load_documents(
        pages_dir, site, isolate=isolate_pages, page_timeout=site_timeout
    )
    report.quarantined_pages = quarantined
    report.n_quarantined_pages = len(quarantined)
    report.n_pages = len(documents)

    with resilience.deadline(site_timeout if isolate_pages else None):
        pipeline = CeresPipeline(kb, config)
        result = pipeline.annotate(documents)
        report.n_skipped_clusters = result.skipped_clusters
        report.n_skipped_pages = result.skipped_pages
        pipeline.train(documents, result)
        site_model = SiteModel.from_result(site, config, result)
        report.n_clusters = len(site_model.clusters)

        if registry_root is not None:
            artifact = ModelRegistry(registry_root).save(site_model)
            report.artifact_path = str(artifact)

        service = ExtractionService()
        service.add_site_model(site_model)
        # Batched serving path: one CSR matrix + matmul per cluster model
        # over the whole site, same engine the long-lived service runs.
        # Wrapped as the canonical extract stage — in corpus mode this
        # call *is* the site's extraction stage (CeresPipeline.extract
        # never runs here).
        fault_point("site.extract", site=site)
        with obs.stage(
            "stage.extract", pages=len(documents)
        ) as extract_stage:
            extractions = service.extract_pages(site, documents, threshold)
            extract_stage.set(extractions=len(extractions))
        report.n_extractions = len(extractions)

        # Seed-KB agreement for fusion's reliability weights — computed
        # here, where the KB is already resident, so the coordinator
        # never has to load it.
        from repro.fusion.reliability import extraction_agreement

        report.kb_checked, report.kb_agreed = extraction_agreement(
            kb, extractions
        )
        rows = [
            extraction_row(
                extraction, documents[extraction.page_index].url, site
            )
            for extraction in extractions
        ]
        # Cache counters, published once at end of site (they are
        # cumulative per instance).
        service.publish_metrics(site_metrics)
        site_metrics.record_cache(pipeline.matcher.cache_stats())
    return rows


def _run_site(
    site: str,
    pages_dir: str,
    kb_path: str,
    registry_root: str | None,
    config_data: dict,
    threshold: float | None,
    trace: bool = False,
    site_timeout: float | None = None,
    max_attempts: int = 1,
    retry_backoff: float = 0.5,
) -> dict:
    """Process one site with retries and quarantine; never raises.

    Runs in a pool worker, so every argument and the return value are
    plain picklable data.  The KB is (re)loaded from disk per site — each
    worker process needs its own copy anyway, and sharing via pickle
    would ship the whole KB with every task.

    Attempt schedule: up to ``max_attempts`` full-batch attempts, each
    under ``site_timeout`` wall-clock, retrying **transient** and
    **overload** failures (``classify_error`` — busy is worth waiting
    out just like flaky; only *permanent* aborts the schedule) after a
    deterministic-jitter exponential backoff.  If the full batch never succeeds (permanent error, or
    retries exhausted), one final **degraded** attempt isolates pages:
    poison pages are quarantined by name and the site completes on the
    survivors — a bad page costs a page, not a site.

    Telemetry: the site runs under a scoped metrics registry (plus a
    scoped tracer when ``trace`` is set), and the snapshot/spans ride
    home inside the report — each attempt is a ``site.attempt`` span,
    retries count into ``runner.retries`` and quarantined pages into
    ``runner.quarantined``.
    """
    report = SiteReport(site=site, ok=False)
    rows: list[dict] = []
    max_attempts = max(1, max_attempts)
    with obs.scoped(tracing=trace, metrics=True) as (site_tracer, site_metrics):
        timing = site_metrics.timer("runner.site_seconds")
        with timing, obs.span("site.run", site=site):
            for attempt in range(1, max_attempts + 1):
                report.attempts = attempt
                try:
                    with obs.span("site.attempt", site=site, attempt=attempt):
                        with resilience.deadline(site_timeout):
                            rows = _attempt_site(
                                report, site, pages_dir, kb_path,
                                registry_root, config_data, threshold,
                                site_metrics,
                            )
                    report.ok = True
                    report.error = None
                    report.traceback = None
                    break
                except Exception as exc:  # noqa: BLE001 — isolation is the contract
                    report.error = f"{type(exc).__name__}: {exc}"
                    report.traceback = traceback.format_exc()
                    rows = []
                    if resilience.classify_error(exc) == "permanent":
                        break
                    if attempt < max_attempts:
                        site_metrics.inc("runner.retries")
                        resilience.sleep_backoff(
                            attempt, base=retry_backoff, key=site
                        )
            if not report.ok:
                # Degraded page-isolation pass: the last line of defense
                # between a poison page and a lost site.
                try:
                    with obs.span(
                        "site.attempt", site=site,
                        attempt=report.attempts + 1, degraded=True,
                    ):
                        rows = _attempt_site(
                            report, site, pages_dir, kb_path,
                            registry_root, config_data, threshold,
                            site_metrics,
                            isolate_pages=True, site_timeout=site_timeout,
                        )
                    report.ok = True
                    report.degraded = True
                    report.error = None
                    report.traceback = None
                # repro: allow[exception-taxonomy] last-ditch degraded pass — the error was already classified permanent upstream; record it on the report and keep the corpus running
                except Exception as exc:  # noqa: BLE001
                    report.error = f"{type(exc).__name__}: {exc}"
                    report.traceback = traceback.format_exc()
                    rows = []
            if report.ok and report.n_quarantined_pages:
                site_metrics.inc(
                    "runner.quarantined", report.n_quarantined_pages
                )
        report.seconds = timing.elapsed
        site_metrics.inc("runner.sites_ok" if report.ok else "runner.sites_failed")
        report.metrics = site_metrics.snapshot()
        if trace:
            report.spans = site_tracer.export()
    return {"report": report.__dict__, "rows": rows}


# -- coordinator -----------------------------------------------------------


def run_corpus(
    corpus: str | Path,
    kb_path: str | Path,
    registry_root: str | Path | None,
    *,
    config: CeresConfig | None = None,
    threshold: float | None = None,
    max_workers: int | None = None,
    output: TextIO | None = None,
    fuse: "FactStore | TextIO | None" = None,
    train_global: bool = False,
    log: Callable[[str], None] | None = None,
    run_dir: str | Path | None = None,
    resume: bool = False,
    site_timeout: float | None = None,
    max_attempts: int = 3,
    retry_backoff: float = 0.5,
) -> list[SiteReport]:
    """Train and extract every site of ``corpus``; returns per-site reports.

    Args:
        corpus: directory-of-directories or JSONL manifest
            (see :func:`discover_corpus`).
        kb_path: seed KB JSON, loaded independently by each worker.
        registry_root: where artifacts land (None to skip persisting).
        config: pipeline config applied to every site.
        threshold: extraction confidence override (default: config's).
        max_workers: process count; ``None`` lets the executor pick,
            ``<= 1`` runs inline (no subprocesses — simplest to debug).
        output: writable text stream receiving extraction JSONL rows.
            Without ``run_dir`` they stream per site in completion order;
            with ``run_dir`` they are assembled at the end in sorted-site
            order from the journal's rows files, so the bytes are
            deterministic and resume-invariant.
        fuse: a :class:`~repro.fusion.store.FactStore` ingests each
            site's rows (and seed-KB agreement counts) as the site
            completes — the caller finalizes it; a plain text stream
            instead receives fused-fact JSONL from a default
            reliability-weighted store (matching the CLI's
            ``--fuse-output`` default), finalized after the last site.
            The fused output is bit-identical regardless of worker
            completion order.
        train_global: after every site completes, additionally train the
            cross-site global model over the corpus and persist it as the
            registry's global artifact (requires ``registry_root``) —
            future unseen sites can then be served zero-shot via
            ``serve --transfer-fallback``.
        log: per-site progress callback (e.g. ``print`` to stderr).
        run_dir: per-run directory for the crash-safe journal and
            per-site rows (see :class:`~repro.runtime.resilience.
            RunJournal`).  Required for ``resume``.
        resume: continue a journaled run: sites whose journal state is
            done/quarantined *and* whose page-content fingerprint is
            unchanged are skipped (their persisted rows are replayed into
            ``output``/``fuse``); everything else re-runs.  The final
            extraction and fused JSONL are byte-identical to an
            uninterrupted run.
        site_timeout: per-site wall-clock budget in seconds (None = no
            limit); enforced per attempt.
        max_attempts: full-batch attempts per site (transient failures
            retry with backoff; permanent ones don't).
        retry_backoff: base of the exponential backoff window, seconds.

    Reports come back with resumed sites first (sorted by name), then
    executed sites in completion order; failed sites carry their error
    and traceback instead of aborting the run.
    """
    specs = discover_corpus(corpus)
    config_data = config_to_dict(config or CeresConfig())
    registry = str(registry_root) if registry_root is not None else None
    emit = log or (lambda message: None)
    if resume and run_dir is None:
        raise ValueError("resume=True requires run_dir")
    if max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    # Workers always collect metrics (the snapshot is small and carries
    # cache/skip telemetry into the summaries); spans only when the
    # parent actually traces — they are bulkier to pickle.
    trace = obs.tracing_enabled()

    store = None
    fused_sink: TextIO | None = None
    if fuse is not None:
        from repro.fusion.store import FactStore

        if isinstance(fuse, FactStore):
            store = fuse
        else:
            store = FactStore(use_reliability=True)
            fused_sink = fuse

    journal: resilience.RunJournal | None = None
    fingerprints: dict[str, str] = {}
    skipped: list[SiteReport] = []
    to_run = specs
    if run_dir is not None:
        journal = resilience.RunJournal(run_dir)
        states = journal.open(
            config_hash=resilience.config_fingerprint(config_data, threshold),
            resume=resume,
        )
        for spec in specs:
            fingerprints[spec.site] = resilience.site_fingerprint(
                _page_files(Path(spec.pages_dir))
            )
        to_run = []
        for spec in specs:
            record = states.get(spec.site)
            if (
                resume
                and record is not None
                and record.get("state")
                in (resilience.STATE_DONE, resilience.STATE_QUARANTINED)
                and record.get("fingerprint") == fingerprints[spec.site]
                and journal.rows_path(spec.site).is_file()
            ):
                report = SiteReport(**(record.get("report") or {}))
                report.resumed = True
                skipped.append(report)
            else:
                to_run.append(spec)
        # Replay skipped sites into the fusion store up front — the
        # FactStore's fused output is ingestion-order-invariant, so
        # "replayed rows + fresh rows" fuses byte-identically to an
        # uninterrupted run.
        for report in skipped:
            if store is not None and report.ok:
                store.ingest_rows(journal.read_rows(report.site))
                store.observe_agreement(
                    report.site, report.kb_checked, report.kb_agreed
                )
            emit(report.summary())

    def mark_running(spec: SiteSpec) -> None:
        """Write-ahead: the journal learns about a site before any work
        happens, so a crash mid-site re-runs it on resume."""
        if journal is not None:
            journal.record_site(
                spec.site, resilience.STATE_RUNNING,
                fingerprint=fingerprints[spec.site],
            )

    def handle(payload: dict) -> SiteReport:
        report = SiteReport(**payload["report"])
        # Fold the worker's telemetry into the parent's instruments —
        # both are no-ops when the parent runs with obs disabled.
        if report.metrics:
            obs.metrics().merge_snapshot(report.metrics)
        if report.spans:
            obs.tracer().absorb(report.spans)
        if journal is None:
            if output is not None:
                for row in payload["rows"]:
                    output.write(json.dumps(row, ensure_ascii=False) + "\n")
                output.flush()
        else:
            if report.ok:
                journal.write_rows(report.site, payload["rows"])
            if not report.ok:
                state = resilience.STATE_FAILED
            elif report.n_quarantined_pages:
                state = resilience.STATE_QUARANTINED
            else:
                state = resilience.STATE_DONE
            journal.record_site(
                report.site, state,
                fingerprint=fingerprints[report.site],
                report=_journal_view(report),
            )
        if store is not None and report.ok:
            store.ingest_rows(payload["rows"])
            store.observe_agreement(
                report.site, report.kb_checked, report.kb_agreed
            )
        emit(report.summary())
        # Chaos hook for resume tests: "crash" the coordinator right
        # after this site is fully committed.
        fault_point("runner.site_committed", site=report.site)
        return report

    def finish(reports: list[SiteReport]) -> list[SiteReport]:
        if journal is not None and output is not None:
            # Deterministic assembly: every ok site's persisted rows, in
            # sorted-site order — identical bytes whether the run was
            # uninterrupted, killed-and-resumed, or differently sharded.
            for report in sorted(
                (r for r in reports if r.ok), key=lambda r: r.site
            ):
                output.write(journal.read_rows_text(report.site))
            output.flush()
        if fused_sink is not None:
            from repro.fusion.store import write_fused_jsonl

            write_fused_jsonl(store.finalize(), fused_sink)
            fused_sink.flush()
        if train_global:
            if registry is None:
                raise ValueError(
                    "train_global requires registry_root (the global "
                    "artifact needs somewhere to live)"
                )
            # Re-annotates the corpus in this process: workers cannot ship
            # their example streams home, and global training is a once-
            # per-corpus cost, not a per-site one.
            from repro.transfer.trainer import train_global_from_corpus

            train_global_from_corpus(
                corpus,
                kb_path,
                config=config_from_dict(config_data),
                registry_root=registry,
                log=log,
            )
        return reports

    worker_args = dict(
        site_timeout=site_timeout,
        max_attempts=max_attempts,
        retry_backoff=retry_backoff,
    )
    reports: list[SiteReport] = list(skipped)
    try:
        if max_workers is not None and max_workers <= 1:
            for spec in to_run:
                mark_running(spec)
                reports.append(
                    handle(
                        _run_site(
                            spec.site, spec.pages_dir, str(kb_path),
                            registry, config_data, threshold, trace,
                            **worker_args,
                        )
                    )
                )
            return finish(reports)

        # Workers inherit the parent's sys.path under every start method
        # (fork directly; spawn/forkserver via multiprocessing's preparation
        # data), so `import repro` resolves in children exactly as it did
        # here.
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=max_workers
        ) as pool:
            futures = {}
            for spec in to_run:
                mark_running(spec)
                futures[
                    pool.submit(
                        _run_site,
                        spec.site, spec.pages_dir, str(kb_path),
                        registry, config_data, threshold, trace,
                        **worker_args,
                    )
                ] = spec
            for future in concurrent.futures.as_completed(futures):
                spec = futures[future]
                try:
                    payload = future.result()
                # repro: allow[exception-taxonomy] worker crashed outside _run_site's own taxonomy (e.g. BrokenProcessPool); fold it into a failed SiteReport so one site can't sink the run
                except Exception as exc:  # worker crashed outside _run_site
                    payload = {
                        "report": SiteReport(
                            site=spec.site,
                            ok=False,
                            error=(
                                f"worker crashed: "
                                f"{type(exc).__name__}: {exc}"
                            ),
                            # The parent-side traceback is all that's
                            # left of a dead worker — record it rather
                            # than nothing.
                            traceback="".join(traceback.format_exception(exc)),
                            # A metrics snapshot a crashed worker never
                            # got to produce: the failure still counts in
                            # the parent's merged registry.
                            metrics={
                                "counters": {"runner.sites_failed": 1},
                                "histograms": {},
                            },
                        ).__dict__,
                        "rows": [],
                    }
                reports.append(handle(payload))
        return finish(reports)
    finally:
        if journal is not None:
            journal.close()
        if fused_sink is not None:
            # We own this store; close() is a no-op after a clean
            # finish() but reclaims spill files if the run aborted.
            store.close()
