"""The parallel corpus runner: annotate/train/extract over many sites.

CERES was run over 439,000 CommonCrawl sites; per-site work is
embarrassingly parallel (each site has its own templates, lexicon, and
model).  The runner shards a corpus across a ``concurrent.futures``
process pool, writes each trained site's artifact into the
:class:`~repro.runtime.registry.ModelRegistry`, and streams extraction
rows to JSONL as sites finish.

Corpus formats (:func:`discover_corpus`):

* **directory-of-directories** — every immediate subdirectory containing
  at least one HTML page (``.html``/``.htm``, any case) is one site
  (named after the subdirectory);
* **JSONL manifest** — one object per line:
  ``{"site": "name", "pages": "path/to/html/dir"}``, relative paths
  resolved against the manifest's directory.

Failure isolation: each site runs inside its own try/except (in its own
worker process under ``max_workers > 1``); a site that raises produces a
failed :class:`SiteReport` carrying the error and traceback while every
other site proceeds.  One bad site never kills the run.
"""

from __future__ import annotations

import concurrent.futures
import json
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, TextIO

if TYPE_CHECKING:
    from repro.fusion.store import FactStore

from repro import obs
from repro.core.config import CeresConfig
from repro.dom.parser import Document, parse_html
from repro.runtime.registry import ModelRegistry
from repro.runtime.serialize import (
    SiteModel,
    config_from_dict,
    config_to_dict,
)
from repro.runtime.service import ExtractionService

__all__ = [
    "SiteSpec",
    "SiteReport",
    "discover_corpus",
    "extraction_row",
    "load_site_documents",
    "run_corpus",
]


@dataclass(frozen=True)
class SiteSpec:
    """One site's unit of work: a name and a directory of HTML pages."""

    site: str
    pages_dir: str


@dataclass
class SiteReport:
    """Outcome of processing one site."""

    site: str
    ok: bool
    error: str | None = None
    traceback: str | None = None
    n_pages: int = 0
    n_clusters: int = 0
    n_extractions: int = 0
    #: template clusters (and the pages inside them) dropped during
    #: annotation for falling below ``min_cluster_size`` — surfaced so
    #: unmodeled pages never disappear silently.
    n_skipped_clusters: int = 0
    n_skipped_pages: int = 0
    #: seed-KB adjudication of this site's extractions: how many the KB
    #: could check (it knows the subject and predicate) and how many of
    #: those agreed — the inputs to fusion's site-reliability weight.
    kb_checked: int = 0
    kb_agreed: int = 0
    artifact_path: str | None = None
    seconds: float = 0.0
    #: the worker's :class:`~repro.obs.metrics.MetricsRegistry` snapshot
    #: (stage timings, cache counters, scoring/fusion counters).  Always
    #: present on reports produced by :func:`_run_site`; the parent
    #: merges it so per-site telemetry no longer dies with the worker.
    metrics: dict | None = None
    #: the worker's finished spans (only when the parent had tracing
    #: enabled — spans are bulkier than the metrics snapshot).
    spans: list | None = None

    def summary(self) -> str:
        """One progress line for logs."""
        if not self.ok:
            return f"site={self.site} FAILED ({self.seconds:.1f}s): {self.error}"
        skipped = ""
        if self.n_skipped_pages:
            skipped = (
                f" skipped={self.n_skipped_pages}p/"
                f"{self.n_skipped_clusters}c"
            )
        kb_note = ""
        if self.kb_checked:
            kb_note = f" kb={self.kb_agreed}/{self.kb_checked}"
        return (
            f"site={self.site} ok pages={self.n_pages} "
            f"clusters={self.n_clusters} extractions={self.n_extractions}"
            f"{skipped}{kb_note}{self._cache_note()} ({self.seconds:.1f}s)"
        )

    def _cache_note(self) -> str:
        """Feature-registry hit rate from the worker metrics snapshot —
        the counter that used to be computed in the worker and thrown
        away with the process."""
        counters = (self.metrics or {}).get("counters", {})
        hits = counters.get("cache.feature_registry.hits", 0)
        misses = counters.get("cache.feature_registry.misses", 0)
        if not hits and not misses:
            return ""
        return f" feat_cache={hits / (hits + misses):.0%}"


#: Page file suffixes accepted by discovery and loading, matched
#: case-insensitively: real crawls mix ``.html``, ``.htm``, and
#: uppercase-suffixed pages freely.
PAGE_SUFFIXES = frozenset({".html", ".htm"})


def _page_files(pages_dir: Path) -> list[Path]:
    """HTML page files of one site directory, sorted by file name."""
    return sorted(
        child
        for child in pages_dir.iterdir()
        if child.is_file() and child.suffix.lower() in PAGE_SUFFIXES
    )


def discover_corpus(corpus: str | Path) -> list[SiteSpec]:
    """Resolve a corpus path into per-site work units (sorted by name)."""
    path = Path(corpus)
    if path.is_dir():
        specs = [
            SiteSpec(child.name, str(child))
            for child in sorted(path.iterdir())
            if child.is_dir() and _page_files(child)
        ]
        if not specs:
            raise ValueError(
                f"no site subdirectories with .html/.htm files under {path}"
            )
        return specs
    if path.is_file():
        specs = []
        base = path.parent
        #: site name -> manifest line that first claimed it.  Duplicates
        #: would race last-writer-wins on one registry artifact and
        #: interleave output rows under a single site label.
        first_claim: dict[str, int] = {}
        for line_no, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                entry = json.loads(line)
                site, pages = entry["site"], entry["pages"]
                if not isinstance(site, str) or not isinstance(pages, str):
                    raise TypeError("site and pages must be strings")
            except (json.JSONDecodeError, TypeError, KeyError) as exc:
                raise ValueError(
                    f"{path}:{line_no}: bad manifest line "
                    f'(need {{"site": ..., "pages": ...}}): {exc}'
                ) from exc
            claimed = first_claim.setdefault(site, line_no)
            if claimed != line_no:
                raise ValueError(
                    f"{path}:{line_no}: duplicate site {site!r} "
                    f"(first defined on line {claimed}); each site may "
                    f"appear only once per manifest"
                )
            pages_path = Path(pages)
            if not pages_path.is_absolute():
                pages_path = base / pages_path
            specs.append(SiteSpec(str(site), str(pages_path)))
        if not specs:
            raise ValueError(f"manifest {path} lists no sites")
        return sorted(specs, key=lambda spec: spec.site)
    raise FileNotFoundError(f"corpus path does not exist: {path}")


def load_site_documents(pages_dir: str | Path) -> list[Document]:
    """Parse every HTML page of one site (``.html``/``.htm``, any case),
    sorted by file name."""
    paths = _page_files(Path(pages_dir))
    if not paths:
        raise FileNotFoundError(f"no .html/.htm files found in {pages_dir!r}")
    return [
        parse_html(
            page.read_text(encoding="utf-8", errors="replace"), url=page.name
        )
        for page in paths
    ]


def extraction_row(extraction, page_url: str, site: str | None = None) -> dict:
    """The canonical JSONL row — shared by extract, serve, and run-corpus
    so the three streams never drift apart.

    ``confidence`` is emitted at full precision: JSON floats round-trip
    exactly, so fusing from rows on disk is bit-identical to fusing the
    in-memory extractions.  Rounding belongs in human-facing summaries
    only — a rounded row made the two paths diverge.

    Rows carry a ``model`` key only for non-default provenance
    (``"transfer"`` for zero-shot serving) — per-site rows stay
    byte-identical to what they were before the tag existed.
    """
    row: dict = {"site": site} if site is not None else {}
    row.update(
        {
            "page": page_url,
            "subject": extraction.subject,
            "predicate": extraction.predicate,
            "object": extraction.object,
            "confidence": extraction.confidence,
        }
    )
    model = getattr(extraction, "model", "site")
    if model != "site":
        row["model"] = model
    return row


# -- worker ----------------------------------------------------------------


def _run_site(
    site: str,
    pages_dir: str,
    kb_path: str,
    registry_root: str | None,
    config_data: dict,
    threshold: float | None,
    trace: bool = False,
) -> dict:
    """Process one site end to end; never raises.

    Runs in a pool worker, so every argument and the return value are
    plain picklable data.  The KB is (re)loaded from disk per site — each
    worker process needs its own copy anyway, and sharing via pickle
    would ship the whole KB with every task.

    Telemetry: the site runs under a scoped metrics registry (plus a
    scoped tracer when ``trace`` is set), and the snapshot/spans ride
    home inside the report — per-site cache counters and stage timings
    used to die with the worker process.
    """
    # Imported here, not at module top: workers only pay for the pipeline
    # stack when they actually process a site, and the runner module stays
    # importable in minimal serving deployments.
    from repro.core.pipeline import CeresPipeline
    from repro.kb.io import load_kb

    report = SiteReport(site=site, ok=False)
    rows: list[dict] = []
    with obs.scoped(tracing=trace, metrics=True) as (site_tracer, site_metrics):
        timing = site_metrics.timer("runner.site_seconds")
        with timing, obs.span("site.run", site=site):
            try:
                config = config_from_dict(config_data)
                kb = load_kb(kb_path)
                documents = load_site_documents(pages_dir)
                report.n_pages = len(documents)

                pipeline = CeresPipeline(kb, config)
                result = pipeline.annotate(documents)
                report.n_skipped_clusters = result.skipped_clusters
                report.n_skipped_pages = result.skipped_pages
                pipeline.train(documents, result)
                site_model = SiteModel.from_result(site, config, result)
                report.n_clusters = len(site_model.clusters)

                if registry_root is not None:
                    artifact = ModelRegistry(registry_root).save(site_model)
                    report.artifact_path = str(artifact)

                service = ExtractionService()
                service.add_site_model(site_model)
                # Batched serving path: one CSR matrix + matmul per
                # cluster model over the whole site, same engine the
                # long-lived service runs.  Wrapped as the canonical
                # extract stage — in corpus mode this call *is* the
                # site's extraction stage (CeresPipeline.extract never
                # runs here).
                with obs.stage(
                    "stage.extract", pages=len(documents)
                ) as extract_stage:
                    extractions = service.extract_pages(
                        site, documents, threshold
                    )
                    extract_stage.set(extractions=len(extractions))
                report.n_extractions = len(extractions)

                # Seed-KB agreement for fusion's reliability weights —
                # computed here, where the KB is already resident, so the
                # coordinator never has to load it.
                from repro.fusion.reliability import extraction_agreement

                report.kb_checked, report.kb_agreed = extraction_agreement(
                    kb, extractions
                )
                rows = [
                    extraction_row(
                        extraction, documents[extraction.page_index].url, site
                    )
                    for extraction in extractions
                ]
                # Cache counters, published once at end of site (they
                # are cumulative per instance).
                service.publish_metrics(site_metrics)
                site_metrics.record_cache(pipeline.matcher.cache_stats())
                report.ok = True
            except Exception as exc:  # noqa: BLE001 — isolation is the contract
                report.error = f"{type(exc).__name__}: {exc}"
                report.traceback = traceback.format_exc()
                rows = []
        report.seconds = timing.elapsed
        site_metrics.inc("runner.sites_ok" if report.ok else "runner.sites_failed")
        report.metrics = site_metrics.snapshot()
        if trace:
            report.spans = site_tracer.export()
    return {"report": report.__dict__, "rows": rows}


# -- coordinator -----------------------------------------------------------


def run_corpus(
    corpus: str | Path,
    kb_path: str | Path,
    registry_root: str | Path | None,
    *,
    config: CeresConfig | None = None,
    threshold: float | None = None,
    max_workers: int | None = None,
    output: TextIO | None = None,
    fuse: "FactStore | TextIO | None" = None,
    train_global: bool = False,
    log: Callable[[str], None] | None = None,
) -> list[SiteReport]:
    """Train and extract every site of ``corpus``; returns per-site reports.

    Args:
        corpus: directory-of-directories or JSONL manifest
            (see :func:`discover_corpus`).
        kb_path: seed KB JSON, loaded independently by each worker.
        registry_root: where artifacts land (None to skip persisting).
        config: pipeline config applied to every site.
        threshold: extraction confidence override (default: config's).
        max_workers: process count; ``None`` lets the executor pick,
            ``<= 1`` runs inline (no subprocesses — simplest to debug).
        output: writable text stream receiving extraction JSONL rows,
            streamed per site as each finishes.
        fuse: a :class:`~repro.fusion.store.FactStore` ingests each
            site's rows (and seed-KB agreement counts) as the site
            completes — the caller finalizes it; a plain text stream
            instead receives fused-fact JSONL from a default
            reliability-weighted store (matching the CLI's
            ``--fuse-output`` default), finalized after the last site.
            The fused output is bit-identical regardless of worker
            completion order.
        train_global: after every site completes, additionally train the
            cross-site global model over the corpus and persist it as the
            registry's global artifact (requires ``registry_root``) —
            future unseen sites can then be served zero-shot via
            ``serve --transfer-fallback``.
        log: per-site progress callback (e.g. ``print`` to stderr).

    Reports come back in completion order; failed sites carry their error
    and traceback instead of aborting the run.
    """
    specs = discover_corpus(corpus)
    config_data = config_to_dict(config or CeresConfig())
    registry = str(registry_root) if registry_root is not None else None
    emit = log or (lambda message: None)
    # Workers always collect metrics (the snapshot is small and carries
    # cache/skip telemetry into the summaries); spans only when the
    # parent actually traces — they are bulkier to pickle.
    trace = obs.tracing_enabled()

    store = None
    fused_sink: TextIO | None = None
    if fuse is not None:
        from repro.fusion.store import FactStore

        if isinstance(fuse, FactStore):
            store = fuse
        else:
            store = FactStore(use_reliability=True)
            fused_sink = fuse

    def handle(payload: dict) -> SiteReport:
        report = SiteReport(**payload["report"])
        # Fold the worker's telemetry into the parent's instruments —
        # both are no-ops when the parent runs with obs disabled.
        if report.metrics:
            obs.metrics().merge_snapshot(report.metrics)
        if report.spans:
            obs.tracer().absorb(report.spans)
        if output is not None:
            for row in payload["rows"]:
                output.write(json.dumps(row, ensure_ascii=False) + "\n")
            output.flush()
        if store is not None and report.ok:
            store.ingest_rows(payload["rows"])
            store.observe_agreement(
                report.site, report.kb_checked, report.kb_agreed
            )
        emit(report.summary())
        return report

    def finish(reports: list[SiteReport]) -> list[SiteReport]:
        if fused_sink is not None:
            from repro.fusion.store import write_fused_jsonl

            write_fused_jsonl(store.finalize(), fused_sink)
            fused_sink.flush()
        if train_global:
            if registry is None:
                raise ValueError(
                    "train_global requires registry_root (the global "
                    "artifact needs somewhere to live)"
                )
            # Re-annotates the corpus in this process: workers cannot ship
            # their example streams home, and global training is a once-
            # per-corpus cost, not a per-site one.
            from repro.transfer.trainer import train_global_from_corpus

            train_global_from_corpus(
                corpus,
                kb_path,
                config=config_from_dict(config_data),
                registry_root=registry,
                log=log,
            )
        return reports

    reports: list[SiteReport] = []
    try:
        if max_workers is not None and max_workers <= 1:
            for spec in specs:
                reports.append(
                    handle(
                        _run_site(
                            spec.site, spec.pages_dir, str(kb_path),
                            registry, config_data, threshold, trace,
                        )
                    )
                )
            return finish(reports)

        # Workers inherit the parent's sys.path under every start method
        # (fork directly; spawn/forkserver via multiprocessing's preparation
        # data), so `import repro` resolves in children exactly as it did
        # here.
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=max_workers
        ) as pool:
            futures = {
                pool.submit(
                    _run_site,
                    spec.site, spec.pages_dir, str(kb_path),
                    registry, config_data, threshold, trace,
                ): spec
                for spec in specs
            }
            for future in concurrent.futures.as_completed(futures):
                spec = futures[future]
                try:
                    payload = future.result()
                except Exception as exc:  # worker crashed outside _run_site
                    payload = {
                        "report": SiteReport(
                            site=spec.site,
                            ok=False,
                            error=f"worker crashed: {type(exc).__name__}: {exc}",
                        ).__dict__,
                        "rows": [],
                    }
                reports.append(handle(payload))
        return finish(reports)
    finally:
        if fused_sink is not None:
            # We own this store; close() is a no-op after a clean
            # finish() but reclaims spill files if the run aborted.
            store.close()
