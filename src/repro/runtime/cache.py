"""Bounded LRU caching for long-lived extraction processes.

Every hot-path cache in the pipeline used to be a bare dict keyed by
``id(document)``: unbounded retention across batches, and — worse — a
CPython id recycled after garbage collection could silently return a
*different page's* cached value.  This module provides the replacement:

* :class:`LRUCache` — a generic bounded mapping with least-recently-used
  eviction and hit/miss/eviction counters.  Keys are ordinary hashable
  values; callers key page-scoped entries by ``Document.doc_id`` (a
  process-unique serial assigned at parse time, never recycled).
* :class:`CacheStats` — an immutable snapshot of one cache's counters,
  aggregatable across caches and JSON-friendly via :meth:`to_dict`.

The module is intentionally dependency-free (stdlib only) so the low
layers (``repro.kb.matcher``, ``repro.core.extraction.features``) can
import it without dragging in the runtime stack.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import Generic, Hashable, TypeVar

__all__ = ["CacheStats", "LRUCache"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters for one (or a merged group of) cache(s)."""

    name: str
    capacity: int
    size: int
    hits: int
    misses: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        """Hits over total lookups (0.0 when the cache was never read)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        """JSON-friendly representation (used by the stats CLI surface)."""
        return {
            "name": self.name,
            "capacity": self.capacity,
            "size": self.size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }

    def merged(self, other: CacheStats, name: str | None = None) -> CacheStats:
        """Combine counters of two caches (e.g. one per cluster extractor)."""
        return CacheStats(
            name=name if name is not None else self.name,
            capacity=self.capacity + other.capacity,
            size=self.size + other.size,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
        )


class LRUCache(Generic[K, V]):
    """A bounded mapping with least-recently-used eviction.

    Both :meth:`get` and :meth:`put` refresh an entry's recency; once
    ``capacity`` entries are resident, inserting a new key evicts the
    least recently used one.  Lookups update hit/miss counters so a
    long-lived service can report cache effectiveness (:meth:`stats`).

    Not thread-safe by design: every current caller is confined to one
    process/thread (pool workers each build their own caches).
    """

    def __init__(self, capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"LRU capacity must be >= 1, got {capacity}")
        self.name = name
        self._capacity = capacity
        self._entries: OrderedDict[K, V] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- mapping protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        """Membership test; does not touch recency or counters."""
        return key in self._entries

    def __iter__(self) -> Iterator[K]:
        """Keys from least to most recently used (no recency update)."""
        return iter(self._entries)

    @property
    def capacity(self) -> int:
        return self._capacity

    # -- core operations ---------------------------------------------------

    def get(self, key: K, default: V | None = None) -> V | None:
        """Return the cached value (refreshing recency) or ``default``."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self._misses += 1
            return default
        self._entries.move_to_end(key)
        self._hits += 1
        return value

    def put(self, key: K, value: V) -> None:
        """Insert or update ``key``, evicting the LRU entry if over capacity."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self._evictions += 1

    def get_or_create(self, key: K, factory: Callable[[], V]) -> V:
        """Return the cached value, computing and caching it on a miss."""
        value = self._entries.get(key, _MISSING)
        if value is not _MISSING:
            self._entries.move_to_end(key)
            self._hits += 1
            return value
        self._misses += 1
        created = factory()
        self.put(key, created)
        return created

    def peek(self, key: K, default: V | None = None) -> V | None:
        """Read a value without touching recency or counters (stats paths)."""
        return self._entries.get(key, default)

    def pop(self, key: K, default: V | None = None) -> V | None:
        """Remove and return an entry (not counted as an eviction)."""
        return self._entries.pop(key, default)

    def clear(self) -> None:
        """Drop every entry; counters are preserved (stats keep history)."""
        self._entries.clear()

    def resize(self, capacity: int) -> None:
        """Change capacity, evicting LRU entries if shrinking below size."""
        if capacity < 1:
            raise ValueError(f"LRU capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self._evictions += 1

    def keys(self) -> list[K]:
        """Keys from least to most recently used."""
        return list(self._entries)

    def stats(self) -> CacheStats:
        """A snapshot of this cache's counters."""
        return CacheStats(
            name=self.name,
            capacity=self._capacity,
            size=len(self._entries),
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
        )
