"""Production runtime: model registry, serving fast path, corpus runner.

The pipeline in :mod:`repro.core` learns one site in one process and
forgets everything on exit.  This package makes trained models durable
and reusable:

* :mod:`repro.runtime.serialize` — versioned JSON codecs for trained
  state (:class:`SiteModel` = config + per-cluster signatures + models);
* :mod:`repro.runtime.registry` — :class:`ModelRegistry`, one atomic
  artifact per site on disk, validated on load;
* :mod:`repro.runtime.service` — :class:`ExtractionService`, the warm
  path: load once, cache one extractor per cluster, batch-extract with
  no annotation or training;
* :mod:`repro.runtime.runner` — :func:`run_corpus`, sharding a
  multi-site corpus over a process pool with per-site failure isolation.

The CLI (``python -m repro train | serve | run-corpus``) fronts all
three; see the root README for a quickstart.
"""

from repro.runtime.registry import ModelRegistry, RegistryError
from repro.runtime.runner import (
    SiteReport,
    SiteSpec,
    discover_corpus,
    extraction_row,
    load_site_documents,
    run_corpus,
)
from repro.runtime.serialize import (
    ARTIFACT_KIND,
    FORMAT_VERSION,
    ClusterModel,
    SiteModel,
    config_from_dict,
    config_to_dict,
    model_from_dict,
    model_to_dict,
    site_model_from_dict,
    site_model_to_dict,
)
from repro.runtime.service import ExtractionService

__all__ = [
    "ModelRegistry",
    "RegistryError",
    "SiteReport",
    "SiteSpec",
    "discover_corpus",
    "extraction_row",
    "load_site_documents",
    "run_corpus",
    "ARTIFACT_KIND",
    "FORMAT_VERSION",
    "ClusterModel",
    "SiteModel",
    "config_from_dict",
    "config_to_dict",
    "model_from_dict",
    "model_to_dict",
    "site_model_from_dict",
    "site_model_to_dict",
    "ExtractionService",
]
