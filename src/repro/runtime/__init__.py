"""Production runtime: model registry, serving fast path, corpus runner.

The pipeline in :mod:`repro.core` learns one site in one process and
forgets everything on exit.  This package makes trained models durable
and reusable:

* :mod:`repro.runtime.cache` — :class:`LRUCache`/:class:`CacheStats`,
  the bounded per-page caching layer (keyed by ``Document.doc_id``);
* :mod:`repro.runtime.serialize` — versioned JSON codecs for trained
  state (:class:`SiteModel` = config + per-cluster signatures + models);
* :mod:`repro.runtime.registry` — :class:`ModelRegistry`, one atomic
  artifact per site on disk, validated on load;
* :mod:`repro.runtime.service` — :class:`ExtractionService`, the warm
  path: load once, cache one extractor per cluster, batch-extract with
  no annotation or training, bounded site residency;
* :mod:`repro.runtime.runner` — :func:`run_corpus`, sharding a
  multi-site corpus over a process pool with per-site failure isolation;
* :mod:`repro.runtime.resilience` — the fault-tolerance layer under the
  runner: :class:`RunJournal` (write-ahead checkpoint/resume journal),
  error classification, deterministic backoff, and per-site deadlines.

Exports resolve lazily (PEP 562): the low layers (``repro.kb.matcher``,
``repro.core.extraction.features``) import :mod:`repro.runtime.cache`
without dragging in the serving stack — which would otherwise be a
circular import, since the serving stack imports those same layers.

The CLI (``python -m repro train | serve | run-corpus | fuse | stats``)
fronts all of it; see the root README for a quickstart.  Cross-site
fusion of the runner's output lives in :mod:`repro.fusion`
(``run_corpus(..., fuse=...)`` streams completed sites into a
:class:`~repro.fusion.store.FactStore`).
"""

from __future__ import annotations

import importlib

#: export name -> defining submodule.
_EXPORTS = {
    "CacheStats": "repro.runtime.cache",
    "LRUCache": "repro.runtime.cache",
    "ModelRegistry": "repro.runtime.registry",
    "RegistryError": "repro.runtime.registry",
    "Deadline": "repro.runtime.resilience",
    "JournalError": "repro.runtime.resilience",
    "OverloadError": "repro.runtime.resilience",
    "RunJournal": "repro.runtime.resilience",
    "SiteTimeoutError": "repro.runtime.resilience",
    "backoff_delay": "repro.runtime.resilience",
    "classify_error": "repro.runtime.resilience",
    "deadline": "repro.runtime.resilience",
    "soft_deadline": "repro.runtime.resilience",
    "SiteReport": "repro.runtime.runner",
    "SiteSpec": "repro.runtime.runner",
    "discover_corpus": "repro.runtime.runner",
    "extraction_row": "repro.runtime.runner",
    "load_site_documents": "repro.runtime.runner",
    "run_corpus": "repro.runtime.runner",
    "ARTIFACT_KIND": "repro.runtime.serialize",
    "FORMAT_VERSION": "repro.runtime.serialize",
    "GLOBAL_ARTIFACT_KIND": "repro.runtime.serialize",
    "ClusterModel": "repro.runtime.serialize",
    "SiteModel": "repro.runtime.serialize",
    "config_from_dict": "repro.runtime.serialize",
    "config_to_dict": "repro.runtime.serialize",
    "global_model_from_dict": "repro.runtime.serialize",
    "global_model_to_dict": "repro.runtime.serialize",
    "model_from_dict": "repro.runtime.serialize",
    "model_to_dict": "repro.runtime.serialize",
    "site_model_from_dict": "repro.runtime.serialize",
    "site_model_to_dict": "repro.runtime.serialize",
    "ExtractionService": "repro.runtime.service",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache so subsequent access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
