"""Model artifacts: versioned JSON codecs for trained CERES state.

Everything a trained site needs to extract again later — the
:class:`~repro.core.config.CeresConfig`, per-cluster leader signatures,
and each cluster's :class:`~repro.core.extraction.trainer.CeresModel`
(feature vocabulary, classifier weights) — is captured by
:class:`SiteModel` and round-trips through plain JSON-compatible
dictionaries.  The cross-site global model
(:class:`~repro.transfer.model.GlobalCeresModel`) has its own artifact
kind with the same discipline.

Exactness: classifier weights are emitted with ``float.__repr__``
(shortest round-trip) via ``ndarray.tolist()`` + ``json``, so a loaded
model reproduces the in-memory model's extractions *byte for byte*; the
registry tests assert this.

Format version 2 (the namespaced-feature schema):

* vocabularies are stored per namespace with the ``site:`` / ``xfer:``
  prefixes stripped — ``{"site": [...], "xfer": [...]}`` — which both
  shrinks the artifact and makes the namespace split auditable on disk.
  Column order is recovered exactly because ``"site:" < "xfer:"``
  lexicographically and prefix-stripping preserves each namespace's
  internal sort, so *sorted full names = sorted site-locals ++ sorted
  xfer-locals*;
* the per-cluster ``frequent_strings`` list is gone: the lexicon is
  reconstructed from the ``site:t|…`` vocabulary names.  Strings that
  never produced a fitted feature are dropped by reconstruction, and
  dropping them cannot change any score — their feature names were
  unknown to the vectorizer and the compiled scorer alike, so they were
  filtered at transform/compile time anyway.

The codecs are deliberately dumb — no pickling, no code references —
so artifacts are portable across processes, machines, and (with the
``format_version`` gate in :mod:`repro.runtime.registry`) releases.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.config import CeresConfig
from repro.core.extraction.features import NodeFeatureExtractor
from repro.core.extraction.trainer import CeresModel
from repro.ml.features import (
    NAMESPACE_SEPARATOR,
    SITE_NAMESPACE,
    TRANSFER_NAMESPACE,
    FeatureVectorizer,
)
from repro.ml.logistic import SoftmaxRegression
from repro.transfer.features import TransferFeatureExtractor
from repro.transfer.model import GlobalCeresModel

if TYPE_CHECKING:  # avoid importing the pipeline at runtime (heavy, unneeded)
    from repro.core.pipeline import CeresResult

__all__ = [
    "FORMAT_VERSION",
    "ARTIFACT_KIND",
    "GLOBAL_ARTIFACT_KIND",
    "ClusterModel",
    "SiteModel",
    "config_to_dict",
    "config_from_dict",
    "model_to_dict",
    "model_from_dict",
    "site_model_to_dict",
    "site_model_from_dict",
    "global_model_to_dict",
    "global_model_from_dict",
]

#: Bump on any incompatible change to the artifact schema.  Version 2:
#: namespaced per-namespace vocabularies, no stored frequent-string
#: lexicon, and the global-model artifact kind.
FORMAT_VERSION = 2
#: Sanity tag distinguishing site-model artifacts from other JSON files.
ARTIFACT_KIND = "ceres-site-model"
#: Sanity tag of the cross-site global-model artifact.
GLOBAL_ARTIFACT_KIND = "ceres-global-model"

_SITE_PREFIX = SITE_NAMESPACE + NAMESPACE_SEPARATOR
_XFER_PREFIX = TRANSFER_NAMESPACE + NAMESPACE_SEPARATOR


@dataclass
class ClusterModel:
    """One modeled template cluster: leader signature + trained model."""

    signature: frozenset[str]
    model: CeresModel


@dataclass
class SiteModel:
    """Everything needed to extract from one site without retraining."""

    site: str
    config: CeresConfig
    clusters: list[ClusterModel]

    @classmethod
    def from_result(
        cls, site: str, config: CeresConfig, result: CeresResult
    ) -> SiteModel:
        """Snapshot the modeled clusters of a pipeline result."""
        return cls(
            site,
            config,
            [
                ClusterModel(cluster.signature, cluster.model)
                for cluster in result.cluster_results
                if cluster.model is not None
            ],
        )


# -- config ----------------------------------------------------------------


def config_to_dict(config: CeresConfig) -> dict:
    """Serialize a config (tuples become JSON lists)."""
    return dataclasses.asdict(config)


def config_from_dict(data: dict) -> CeresConfig:
    """Rebuild a config; unknown keys are ignored, missing keys default.

    Tuple-typed fields (``struct_attributes``) are restored from JSON
    lists so the round-tripped config compares equal to the original.
    """
    defaults = CeresConfig()
    overrides = {}
    for field in dataclasses.fields(CeresConfig):
        if field.name not in data:
            continue
        value = data[field.name]
        if isinstance(getattr(defaults, field.name), tuple):
            value = tuple(value)
        overrides[field.name] = value
    return CeresConfig(**overrides)


# -- model components ------------------------------------------------------


def _classifier_to_dict(classifier: SoftmaxRegression) -> dict:
    if classifier.coef_ is None or classifier.classes_ is None:
        raise ValueError("cannot serialize an unfitted classifier")
    return {
        "C": classifier.C,
        "max_iter": classifier.max_iter,
        "tol": classifier.tol,
        "classes": [str(label) for label in classifier.classes_],
        "coef": classifier.coef_.tolist(),
        "intercept": classifier.intercept_.tolist(),
    }


def _classifier_from_dict(data: dict) -> SoftmaxRegression:
    classifier = SoftmaxRegression(
        C=data["C"], max_iter=data["max_iter"], tol=data["tol"]
    )
    classifier.classes_ = np.asarray(data["classes"])
    classifier.coef_ = np.asarray(data["coef"], dtype=float)
    classifier.intercept_ = np.asarray(data["intercept"], dtype=float)
    return classifier


def _vocabulary_to_jsonable(vectorizer: FeatureVectorizer) -> dict | list:
    """Per-namespace, prefix-stripped vocabulary in column order.

    Falls back to the flat name list when any name lies outside the two
    namespaces (hand-built vocabularies); the extraction stack itself
    always produces fully namespaced names.
    """
    names = vectorizer.feature_names()
    site_names: list[str] = []
    xfer_names: list[str] = []
    for name in names:
        if name.startswith(_SITE_PREFIX):
            site_names.append(name[len(_SITE_PREFIX):])
        elif name.startswith(_XFER_PREFIX):
            xfer_names.append(name[len(_XFER_PREFIX):])
        else:
            return names
    return {"site": site_names, "xfer": xfer_names}


def _vocabulary_from_jsonable(data: dict | list) -> FeatureVectorizer:
    """Rebuild a fitted vectorizer from either vocabulary encoding.

    Concatenating re-prefixed site names before xfer names reproduces the
    original column order exactly: ``"site:" < "xfer:"`` and the shared
    prefix preserves each namespace's internal sort.
    """
    if isinstance(data, dict):
        names = [_SITE_PREFIX + local for local in data.get("site", [])]
        names += [_XFER_PREFIX + local for local in data.get("xfer", [])]
    else:
        names = list(data)
    vectorizer = FeatureVectorizer()
    vectorizer.vocabulary_ = {name: index for index, name in enumerate(names)}
    vectorizer._fitted = True
    return vectorizer


def _frequent_strings_from_vocabulary(names) -> set[str]:
    """Reconstruct the frequent-string lexicon from ``site:t|…`` names.

    Inverse of the text-feature name format (same parse the compiled
    scorer uses).  Only strings that produced at least one fitted feature
    come back — a safe narrowing, because features of absent strings
    would be dropped at transform/compile time regardless.
    """
    text_prefix = _SITE_PREFIX + "t|"
    strings: set[str] = set()
    for name in names:
        if not name.startswith(text_prefix):
            continue
        head, _, _down_path = name.rpartition("|")
        head, separator, ups_token = head.rpartition("|")
        if not separator or len(head) < len(text_prefix):
            continue
        if not ups_token.startswith("u") or not ups_token[1:].isdigit():
            continue
        strings.add(head[len(text_prefix):])
    return strings


def model_to_dict(model: CeresModel) -> dict:
    """Serialize one cluster's trained model (config stored separately).

    The frequent-string lexicon is not stored: it is implied by the
    ``site:t|…`` vocabulary names and reconstructed on load.
    """
    return {
        "vocabulary": _vocabulary_to_jsonable(model.vectorizer),
        "classifier": _classifier_to_dict(model.classifier),
    }


def model_from_dict(data: dict, config: CeresConfig) -> CeresModel:
    """Rebuild a :class:`CeresModel` written by :func:`model_to_dict`."""
    vectorizer = _vocabulary_from_jsonable(data["vocabulary"])
    feature_extractor = NodeFeatureExtractor(config)
    feature_extractor.frequent_strings = _frequent_strings_from_vocabulary(
        vectorizer.vocabulary_
    )
    model = CeresModel(
        feature_extractor, vectorizer, _classifier_from_dict(data["classifier"])
    )
    # Compile the batched scoring engine now, not inside the first serving
    # request (mirrors CeresTrainer.train).
    return model.compile()


# -- site artifacts --------------------------------------------------------


def site_model_to_dict(site_model: SiteModel) -> dict:
    """The full versioned artifact for one site."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": ARTIFACT_KIND,
        "site": site_model.site,
        "config": config_to_dict(site_model.config),
        "clusters": [
            {
                "signature": sorted(cluster.signature),
                "model": model_to_dict(cluster.model),
            }
            for cluster in site_model.clusters
        ],
    }


def site_model_from_dict(data: dict) -> SiteModel:
    """Rebuild a :class:`SiteModel`; raises ``KeyError``/``TypeError`` on
    malformed input (the registry wraps these into ``RegistryError``)."""
    config = config_from_dict(data["config"])
    clusters = [
        ClusterModel(
            frozenset(entry["signature"]), model_from_dict(entry["model"], config)
        )
        for entry in data["clusters"]
    ]
    return SiteModel(data["site"], config, clusters)


# -- global (cross-site) artifacts -----------------------------------------


def global_model_to_dict(model: GlobalCeresModel) -> dict:
    """The versioned artifact of the cross-site global model.

    Beyond the usual vocabulary/classifier pair, it carries the ontology
    predicate names — they parameterize the predicate-overlap features
    and belong to the model, not to any site.
    """
    return {
        "format_version": FORMAT_VERSION,
        "kind": GLOBAL_ARTIFACT_KIND,
        "predicates": list(model.feature_extractor.predicates),
        "config": config_to_dict(model.config),
        "vocabulary": _vocabulary_to_jsonable(model.vectorizer),
        "classifier": _classifier_to_dict(model.classifier),
    }


def global_model_from_dict(data: dict) -> GlobalCeresModel:
    """Rebuild a :class:`GlobalCeresModel`; raises ``KeyError``/
    ``TypeError`` on malformed input (wrapped by the registry)."""
    config = config_from_dict(data["config"])
    return GlobalCeresModel(
        TransferFeatureExtractor(data["predicates"], config),
        _vocabulary_from_jsonable(data["vocabulary"]),
        _classifier_from_dict(data["classifier"]),
        config,
    )
