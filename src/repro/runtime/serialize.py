"""Model artifacts: versioned JSON codecs for trained CERES state.

Everything a trained site needs to extract again later — the
:class:`~repro.core.config.CeresConfig`, per-cluster leader signatures,
and each cluster's :class:`~repro.core.extraction.trainer.CeresModel`
(frequent-string lexicon, feature vocabulary, classifier weights) — is
captured by :class:`SiteModel` and round-trips through plain
JSON-compatible dictionaries.

Exactness: classifier weights are emitted with ``float.__repr__``
(shortest round-trip) via ``ndarray.tolist()`` + ``json``, so a loaded
model reproduces the in-memory model's extractions *byte for byte*; the
registry tests assert this.

The codecs are deliberately dumb — no pickling, no code references —
so artifacts are portable across processes, machines, and (with the
``format_version`` gate in :mod:`repro.runtime.registry`) releases.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.config import CeresConfig
from repro.core.extraction.features import NodeFeatureExtractor
from repro.core.extraction.trainer import CeresModel
from repro.ml.features import FeatureVectorizer
from repro.ml.logistic import SoftmaxRegression

if TYPE_CHECKING:  # avoid importing the pipeline at runtime (heavy, unneeded)
    from repro.core.pipeline import CeresResult

__all__ = [
    "FORMAT_VERSION",
    "ARTIFACT_KIND",
    "ClusterModel",
    "SiteModel",
    "config_to_dict",
    "config_from_dict",
    "model_to_dict",
    "model_from_dict",
    "site_model_to_dict",
    "site_model_from_dict",
]

#: Bump on any incompatible change to the artifact schema.
FORMAT_VERSION = 1
#: Sanity tag distinguishing site-model artifacts from other JSON files.
ARTIFACT_KIND = "ceres-site-model"


@dataclass
class ClusterModel:
    """One modeled template cluster: leader signature + trained model."""

    signature: frozenset[str]
    model: CeresModel


@dataclass
class SiteModel:
    """Everything needed to extract from one site without retraining."""

    site: str
    config: CeresConfig
    clusters: list[ClusterModel]

    @classmethod
    def from_result(
        cls, site: str, config: CeresConfig, result: CeresResult
    ) -> SiteModel:
        """Snapshot the modeled clusters of a pipeline result."""
        return cls(
            site,
            config,
            [
                ClusterModel(cluster.signature, cluster.model)
                for cluster in result.cluster_results
                if cluster.model is not None
            ],
        )


# -- config ----------------------------------------------------------------


def config_to_dict(config: CeresConfig) -> dict:
    """Serialize a config (tuples become JSON lists)."""
    return dataclasses.asdict(config)


def config_from_dict(data: dict) -> CeresConfig:
    """Rebuild a config; unknown keys are ignored, missing keys default.

    Tuple-typed fields (``struct_attributes``) are restored from JSON
    lists so the round-tripped config compares equal to the original.
    """
    defaults = CeresConfig()
    overrides = {}
    for field in dataclasses.fields(CeresConfig):
        if field.name not in data:
            continue
        value = data[field.name]
        if isinstance(getattr(defaults, field.name), tuple):
            value = tuple(value)
        overrides[field.name] = value
    return CeresConfig(**overrides)


# -- model components ------------------------------------------------------


def _classifier_to_dict(classifier: SoftmaxRegression) -> dict:
    if classifier.coef_ is None or classifier.classes_ is None:
        raise ValueError("cannot serialize an unfitted classifier")
    return {
        "C": classifier.C,
        "max_iter": classifier.max_iter,
        "tol": classifier.tol,
        "classes": [str(label) for label in classifier.classes_],
        "coef": classifier.coef_.tolist(),
        "intercept": classifier.intercept_.tolist(),
    }


def _classifier_from_dict(data: dict) -> SoftmaxRegression:
    classifier = SoftmaxRegression(
        C=data["C"], max_iter=data["max_iter"], tol=data["tol"]
    )
    classifier.classes_ = np.asarray(data["classes"])
    classifier.coef_ = np.asarray(data["coef"], dtype=float)
    classifier.intercept_ = np.asarray(data["intercept"], dtype=float)
    return classifier


def model_to_dict(model: CeresModel) -> dict:
    """Serialize one cluster's trained model (config stored separately)."""
    return {
        "frequent_strings": sorted(model.feature_extractor.frequent_strings),
        "vocabulary": model.vectorizer.feature_names(),
        "classifier": _classifier_to_dict(model.classifier),
    }


def model_from_dict(data: dict, config: CeresConfig) -> CeresModel:
    """Rebuild a :class:`CeresModel` written by :func:`model_to_dict`."""
    feature_extractor = NodeFeatureExtractor(config)
    feature_extractor.frequent_strings = set(data["frequent_strings"])
    vectorizer = FeatureVectorizer()
    vectorizer.vocabulary_ = {
        name: index for index, name in enumerate(data["vocabulary"])
    }
    vectorizer._fitted = True
    model = CeresModel(
        feature_extractor, vectorizer, _classifier_from_dict(data["classifier"])
    )
    # Compile the batched scoring engine now, not inside the first serving
    # request (mirrors CeresTrainer.train).
    return model.compile()


# -- site artifacts --------------------------------------------------------


def site_model_to_dict(site_model: SiteModel) -> dict:
    """The full versioned artifact for one site."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": ARTIFACT_KIND,
        "site": site_model.site,
        "config": config_to_dict(site_model.config),
        "clusters": [
            {
                "signature": sorted(cluster.signature),
                "model": model_to_dict(cluster.model),
            }
            for cluster in site_model.clusters
        ],
    }


def site_model_from_dict(data: dict) -> SiteModel:
    """Rebuild a :class:`SiteModel`; raises ``KeyError``/``TypeError`` on
    malformed input (the registry wraps these into ``RegistryError``)."""
    config = config_from_dict(data["config"])
    clusters = [
        ClusterModel(
            frozenset(entry["signature"]), model_from_dict(entry["model"], config)
        )
        for entry in data["clusters"]
    ]
    return SiteModel(data["site"], config, clusters)
