"""Literal value variant generation.

Webpages render the same literal in many formats: a release date stored as
``1989-06-30`` may appear as ``June 30, 1989`` or ``30 June 1989``; a
weight stored as ``240`` may appear as ``240 lbs``.  The KB indexes every
variant of a literal object so that page mentions in any format resolve to
the canonical triple (this mirrors the attribute-value matching of Gulhane
et al. [18] that the paper's annotation step builds on).
"""

from __future__ import annotations

import re
from datetime import date

__all__ = ["date_variants", "number_variants", "literal_variants", "parse_date"]

_ISO_DATE_RE = re.compile(r"^(\d{4})-(\d{2})-(\d{2})$")
_NUMBER_RE = re.compile(r"^\d+(\.\d+)?$")

# Inverse-direction patterns: the surface formats date_variants() renders
# (plus unpadded ISO), recognized back into canonical ISO form.
_MONTH_DAY_YEAR_RE = re.compile(r"^([A-Za-z]+)\.?\s+(\d{1,2})(?:st|nd|rd|th)?,?\s+(\d{4})$")
_DAY_MONTH_YEAR_RE = re.compile(r"^(\d{1,2})(?:st|nd|rd|th)?\.?\s+([A-Za-z]+)\.?,?\s+(\d{4})$")
_SLASH_DATE_RE = re.compile(r"^(\d{1,2})/(\d{1,2})/(\d{4})$")
_DOT_DATE_RE = re.compile(r"^(\d{1,2})\.\s?(\d{1,2})\.\s?(\d{4})$")
_ISO_LOOSE_RE = re.compile(r"^(\d{4})-(\d{1,2})-(\d{1,2})$")

MONTH_NAMES = (
    "January", "February", "March", "April", "May", "June",
    "July", "August", "September", "October", "November", "December",
)

#: Unit suffixes attached to bare numbers on real pages.
_NUMBER_UNITS = ("lbs", "kg", "min", "pages")


def date_variants(text: str) -> list[str]:
    """Render an ISO date in the formats long-tail websites use.

    Returns just ``[text]`` when the input is not a valid ISO date.

    >>> date_variants("1989-06-30")[:3]
    ['1989-06-30', 'June 30, 1989', '30 June 1989']
    """
    match = _ISO_DATE_RE.match(text.strip())
    if not match:
        return [text]
    year, month, day = (int(g) for g in match.groups())
    try:
        date(year, month, day)
    except ValueError:
        return [text]
    month_name = MONTH_NAMES[month - 1]
    return [
        text.strip(),
        f"{month_name} {day}, {year}",
        f"{day} {month_name} {year}",
        f"{day:02d}/{month:02d}/{year}",
        f"{month:02d}/{day:02d}/{year}",
        f"{day}. {month}. {year}",  # central-European format
    ]


def _valid_iso(year: int, month: int, day: int) -> str | None:
    try:
        date(year, month, day)
    except ValueError:
        return None
    return f"{year:04d}-{month:02d}-{day:02d}"


#: month name (and 3-letter abbreviation) -> month number, built once:
#: parse_date sits on fusion's per-row canonicalization hot path.
_MONTH_INDEX = {
    name.casefold(): i + 1 for i, name in enumerate(MONTH_NAMES)
}
_MONTH_INDEX.update(
    (name[:3].casefold(), i + 1) for i, name in enumerate(MONTH_NAMES)
)


def parse_date(text: str) -> str | None:
    """Parse a surface date back into canonical ISO form (the inverse of
    :func:`date_variants`), or None when ``text`` is not a recognizable
    date.

    The contract is *never wrong, sometimes abstains*: every non-None
    result is the date the rendering actually meant.  Dot-separated
    numeric dates (``30. 6. 1989``) are day-first, as
    :func:`date_variants` renders them; slash dates are parsed only when
    unambiguous (one of day-first/month-first is valid) — ``05/06/1989``
    could mean May 6 or June 5, so it returns None rather than guess a
    valid-but-wrong date.

    >>> parse_date("June 30, 1989")
    '1989-06-30'
    >>> parse_date("30 June 1989")
    '1989-06-30'
    >>> parse_date("05/06/1989") is None
    True
    >>> parse_date("Drama") is None
    True
    """
    stripped = text.strip()
    match = _ISO_LOOSE_RE.match(stripped)
    if match:
        year, month, day = (int(g) for g in match.groups())
        return _valid_iso(year, month, day)
    match = _MONTH_DAY_YEAR_RE.match(stripped)
    if match:
        month = _MONTH_INDEX.get(match.group(1).casefold())
        if month is not None:
            return _valid_iso(int(match.group(3)), month, int(match.group(2)))
        return None
    match = _DAY_MONTH_YEAR_RE.match(stripped)
    if match:
        month = _MONTH_INDEX.get(match.group(2).casefold())
        if month is not None:
            return _valid_iso(int(match.group(3)), month, int(match.group(1)))
        return None
    match = _DOT_DATE_RE.match(stripped)
    if match:
        day, month, year = (int(g) for g in match.groups())
        return _valid_iso(year, month, day)
    match = _SLASH_DATE_RE.match(stripped)
    if match:
        first, second, year = (int(g) for g in match.groups())
        month_first = _valid_iso(year, first, second)
        day_first = _valid_iso(year, second, first)
        if month_first and day_first and month_first != day_first:
            return None  # ambiguous: dd/mm vs mm/dd both plausible
        return month_first or day_first
    return None


def number_variants(text: str) -> list[str]:
    """Variants of a bare number: unit-suffixed and comma-grouped forms.

    >>> "240 lbs" in number_variants("240")
    True
    """
    stripped = text.strip()
    if not _NUMBER_RE.match(stripped):
        return [text]
    variants = [stripped]
    variants.extend(f"{stripped} {unit}" for unit in _NUMBER_UNITS)
    if "." not in stripped and len(stripped) > 3:
        grouped = f"{int(stripped):,}"
        if grouped != stripped:
            variants.append(grouped)
    return variants


def literal_variants(text: str, range_kind: str = "string") -> list[str]:
    """All surface variants of a literal, dispatched on its range kind."""
    if range_kind == "date":
        return date_variants(text)
    if range_kind == "number":
        return number_variants(text)
    return [text]
