"""Literal value variant generation.

Webpages render the same literal in many formats: a release date stored as
``1989-06-30`` may appear as ``June 30, 1989`` or ``30 June 1989``; a
weight stored as ``240`` may appear as ``240 lbs``.  The KB indexes every
variant of a literal object so that page mentions in any format resolve to
the canonical triple (this mirrors the attribute-value matching of Gulhane
et al. [18] that the paper's annotation step builds on).
"""

from __future__ import annotations

import re
from datetime import date

__all__ = ["date_variants", "number_variants", "literal_variants"]

_ISO_DATE_RE = re.compile(r"^(\d{4})-(\d{2})-(\d{2})$")
_NUMBER_RE = re.compile(r"^\d+(\.\d+)?$")

MONTH_NAMES = (
    "January", "February", "March", "April", "May", "June",
    "July", "August", "September", "October", "November", "December",
)

#: Unit suffixes attached to bare numbers on real pages.
_NUMBER_UNITS = ("lbs", "kg", "min", "pages")


def date_variants(text: str) -> list[str]:
    """Render an ISO date in the formats long-tail websites use.

    Returns just ``[text]`` when the input is not a valid ISO date.

    >>> date_variants("1989-06-30")[:3]
    ['1989-06-30', 'June 30, 1989', '30 June 1989']
    """
    match = _ISO_DATE_RE.match(text.strip())
    if not match:
        return [text]
    year, month, day = (int(g) for g in match.groups())
    try:
        date(year, month, day)
    except ValueError:
        return [text]
    month_name = MONTH_NAMES[month - 1]
    return [
        text.strip(),
        f"{month_name} {day}, {year}",
        f"{day} {month_name} {year}",
        f"{day:02d}/{month:02d}/{year}",
        f"{month:02d}/{day:02d}/{year}",
        f"{day}. {month}. {year}",  # central-European format
    ]


def number_variants(text: str) -> list[str]:
    """Variants of a bare number: unit-suffixed and comma-grouped forms.

    >>> "240 lbs" in number_variants("240")
    True
    """
    stripped = text.strip()
    if not _NUMBER_RE.match(stripped):
        return [text]
    variants = [stripped]
    variants.extend(f"{stripped} {unit}" for unit in _NUMBER_UNITS)
    if "." not in stripped and len(stripped) > 3:
        grouped = f"{int(stripped):,}"
        if grouped != stripped:
            variants.append(grouped)
    return variants


def literal_variants(text: str, range_kind: str = "string") -> list[str]:
    """All surface variants of a literal, dispatched on its range kind."""
    if range_kind == "date":
        return date_variants(text)
    if range_kind == "number":
        return number_variants(text)
    return [text]
