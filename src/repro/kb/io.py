"""Knowledge-base JSON serialization.

Lets downstream users persist seed KBs and extraction-augmented KBs, and
lets the CLI (``python -m repro``) load a KB from disk.  The format is a
single JSON document::

    {
      "ontology": [{"name": ..., "domain": ..., "range_kind": ...,
                    "multi_valued": ...}, ...],
      "entities": [{"id": ..., "name": ..., "type": ..., "aliases": [...]}, ...],
      "triples":  [{"s": ..., "p": ..., "o": ..., "kind": "entity"|"literal"}, ...]
    }
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.kb.ontology import Ontology, Predicate
from repro.kb.store import KnowledgeBase
from repro.kb.triple import Entity, Value

__all__ = ["kb_to_dict", "kb_from_dict", "save_kb", "load_kb"]


def kb_to_dict(kb: KnowledgeBase) -> dict:
    """Serialize a KB to a plain JSON-compatible dictionary."""
    return {
        "ontology": [
            {
                "name": p.name,
                "domain": p.domain,
                "range_kind": p.range_kind,
                "multi_valued": p.multi_valued,
            }
            for p in kb.ontology
        ],
        "entities": [
            {
                "id": e.id,
                "name": e.name,
                "type": e.type,
                "aliases": list(e.aliases),
            }
            for e in kb.entities.values()
        ],
        "triples": [
            {
                "s": t.subject,
                "p": t.predicate,
                "o": t.object.value,
                "kind": t.object.kind,
            }
            for t in kb.triples
        ],
    }


def kb_from_dict(data: dict) -> KnowledgeBase:
    """Deserialize a KB written by :func:`kb_to_dict`.

    Raises ``KeyError``/``ValueError`` on malformed input (unknown
    subjects, predicates outside the ontology, duplicate predicates).
    """
    ontology = Ontology(
        [
            Predicate(
                name=p["name"],
                domain=p.get("domain", ""),
                range_kind=p.get("range_kind", "entity"),
                multi_valued=bool(p.get("multi_valued", False)),
            )
            for p in data.get("ontology", [])
        ]
    )
    kb = KnowledgeBase(ontology)
    for e in data.get("entities", []):
        kb.add_entity(
            Entity(e["id"], e["name"], e.get("type", ""), tuple(e.get("aliases", ())))
        )
    for t in data.get("triples", []):
        value = (
            Value.entity(t["o"]) if t.get("kind", "entity") == "entity"
            else Value.literal(t["o"])
        )
        kb.add_fact(t["s"], t["p"], value)
    return kb


def save_kb(kb: KnowledgeBase, path: str | Path) -> None:
    """Write a KB to a JSON file."""
    Path(path).write_text(json.dumps(kb_to_dict(kb), indent=1, ensure_ascii=False))


def load_kb(path: str | Path) -> KnowledgeBase:
    """Read a KB from a JSON file."""
    return kb_from_dict(json.loads(Path(path).read_text()))
