"""Knowledge base: entities, triples, ontology, store, and page matching."""

from repro.kb.literals import (
    date_variants,
    literal_variants,
    number_variants,
    parse_date,
)
from repro.kb.matcher import PageMatch, PageMatcher
from repro.kb.ontology import NAME_PREDICATE, OTHER_LABEL, Ontology, Predicate
from repro.kb.store import KnowledgeBase
from repro.kb.surfaces import SubjectObject, SurfaceIndex
from repro.kb.triple import Entity, Triple, Value

__all__ = [
    "date_variants",
    "literal_variants",
    "number_variants",
    "parse_date",
    "PageMatch",
    "PageMatcher",
    "SubjectObject",
    "SurfaceIndex",
    "NAME_PREDICATE",
    "OTHER_LABEL",
    "Ontology",
    "Predicate",
    "KnowledgeBase",
    "Entity",
    "Triple",
    "Value",
]
