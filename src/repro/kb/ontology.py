"""Ontology: the predicate vocabulary CERES extracts against.

The ontology "defines the semantics of the relation predicates"
(Section 2.1).  CERES only extracts predicates present in the ontology;
everything else on a page is the ``OTHER`` class.  Each predicate records
whether it is single- or multi-valued — multi-valued predicates (cast
lists, genres) are the hard case for annotation (Section 5.4) — and the
kind of its object values, which controls literal variant matching.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Predicate", "Ontology", "NAME_PREDICATE", "OTHER_LABEL"]

#: The synthetic predicate assigned to the topic-entity node (Section 4:
#: "the DOM node that contains the topic entity is considered as expressing
#: the 'name' relation").
NAME_PREDICATE = "name"

#: Classifier label for nodes expressing no ontology relation.
OTHER_LABEL = "OTHER"


@dataclass(frozen=True)
class Predicate:
    """A relation predicate.

    Attributes:
        name: predicate identifier (e.g. ``"directed_by"``).
        domain: subject entity type.
        range_kind: one of ``"entity"``, ``"string"``, ``"date"``,
            ``"number"`` — drives literal variant generation when matching
            object values on pages.
        multi_valued: True when a subject may hold many objects
            (cast members, genres); False for functional predicates
            (birth date, ISBN).
    """

    name: str
    domain: str = ""
    range_kind: str = "entity"
    multi_valued: bool = False


class Ontology:
    """An ordered collection of predicates."""

    def __init__(self, predicates: list[Predicate]) -> None:
        self._by_name: dict[str, Predicate] = {}
        for predicate in predicates:
            if predicate.name in self._by_name:
                raise ValueError(f"duplicate predicate {predicate.name!r}")
            self._by_name[predicate.name] = predicate

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self):
        return iter(self._by_name.values())

    def get(self, name: str) -> Predicate:
        return self._by_name[name]

    def names(self) -> list[str]:
        return list(self._by_name)

    def multi_valued(self) -> set[str]:
        """Names of multi-valued predicates."""
        return {p.name for p in self._by_name.values() if p.multi_valued}

    def merged_with(self, other: Ontology) -> Ontology:
        """Union of two ontologies (first definition wins on conflicts)."""
        merged = list(self._by_name.values())
        merged.extend(p for p in other if p.name not in self._by_name)
        return Ontology(merged)
