"""Matching page text fields against the knowledge base.

Bridges the DOM and KB layers: given a parsed page, produce

* the *pageSet* — all KB value keys mentioned anywhere on the page
  (Algorithm 1, line 4),
* per-text-field entity candidates (topic identification), and
* mention lookups for specific object values (relation annotation).

Matching results are cached per document: topic identification, relation
annotation, and evaluation all re-read the same matches.  The cache is a
bounded LRU keyed by ``Document.doc_id`` (process-unique, never recycled
— unlike ``id()``), so a long-lived process neither grows without bound
nor risks serving one page's matches for another.
"""

from __future__ import annotations

from collections import defaultdict

from repro.dom.node import TextNode
from repro.dom.parser import Document
from repro.kb.store import KnowledgeBase, ValueKey
from repro.runtime.cache import CacheStats, LRUCache
from repro.text.fuzzy import surface_variants
from repro.text.normalize import normalize_text

__all__ = ["PageMatch", "PageMatcher", "DEFAULT_MATCH_CACHE_SIZE"]

#: Fallback cache capacity when no config-driven size is supplied; kept in
#: sync with :attr:`repro.core.config.CeresConfig.page_match_cache_size`.
DEFAULT_MATCH_CACHE_SIZE = 512

#: Text fields longer than this are never entity mentions — they are prose
#: blurbs; matching them would be both slow and noisy.
MAX_MENTION_LENGTH = 120


class PageMatch:
    """Match results for one document."""

    def __init__(
        self,
        document: Document,
        entity_mentions: dict[str, list[TextNode]],
        field_entities: dict[int, set[str]],
        value_keys: set[ValueKey],
        fields_by_norm: dict[str, list[TextNode]],
        field_value_keys: dict[int, set[ValueKey]],
    ) -> None:
        self.document = document
        #: entity id -> text nodes mentioning it.
        self.entity_mentions = entity_mentions
        #: id(text node) -> entity ids matched in that field.
        self._field_entities = field_entities
        #: all KB value keys (entities + literals) found on the page.
        self.value_keys = value_keys
        #: normalized field text -> text nodes carrying it.
        self._fields_by_norm = fields_by_norm
        #: id(text node) -> value keys matched in that field.
        self._field_value_keys = field_value_keys

    def entities_in_field(self, node: TextNode) -> set[str]:
        """Entity ids whose surfaces match the text of ``node``."""
        return self._field_entities.get(id(node), set())

    def value_keys_in_field(self, node: TextNode) -> set[ValueKey]:
        """KB value keys (entities and literals) matching the text of ``node``."""
        return self._field_value_keys.get(id(node), set())

    def page_entity_ids(self) -> set[str]:
        """All entity ids mentioned on the page."""
        return set(self.entity_mentions.keys())

    def mentions_of_surfaces(self, surfaces: list[str]) -> list[TextNode]:
        """Text nodes whose full text matches any of ``surfaces``.

        Duplicates are removed (two surface variants can normalize to the
        same field) and the result is sorted by XPath, so it depends only
        on the set of surfaces supplied.
        """
        variants: list[str] = []
        for surface in surfaces:
            variants.extend(surface_variants(surface))
        return self.mentions_of_variants(variants)

    def mentions_of_variants(self, variants) -> list[TextNode]:
        """Text nodes matching any of the precomputed normalized ``variants``.

        The fast path for callers that expand surface variants once (e.g.
        :class:`repro.kb.surfaces.SurfaceIndex`) instead of per page.  The
        result is sorted by XPath, so it depends only on the *set* of
        variants supplied.
        """
        seen: set[int] = set()
        found: list[TextNode] = []
        fields = self._fields_by_norm
        for variant in variants:
            nodes = fields.get(variant)
            if nodes:
                for node in nodes:
                    if id(node) not in seen:
                        seen.add(id(node))
                        found.append(node)
        found.sort(key=lambda n: n.xpath)
        return found


class PageMatcher:
    """Produces :class:`PageMatch` objects for documents against one KB."""

    def __init__(
        self, kb: KnowledgeBase, cache_size: int = DEFAULT_MATCH_CACHE_SIZE
    ) -> None:
        self.kb = kb
        self._cache: LRUCache[int, PageMatch] = LRUCache(
            cache_size, name="page_match"
        )

    def match(self, document: Document) -> PageMatch:
        """Match every text field of ``document`` against the KB (cached)."""
        cached = self._cache.get(document.doc_id)
        if cached is not None:
            return cached

        entity_mentions: dict[str, list[TextNode]] = defaultdict(list)
        field_entities: dict[int, set[str]] = {}
        value_keys: set[ValueKey] = set()
        fields_by_norm: dict[str, list[TextNode]] = defaultdict(list)
        field_value_keys: dict[int, set[ValueKey]] = {}

        kb = self.kb
        for node in document.text_fields():
            # Hoisted per-field work: strip once, normalize once, and
            # compute the surface variants once — both index probes below
            # used to redo the variant generation per lookup.
            text = node.text.strip()
            if not text:
                continue
            norm = normalize_text(text)
            if norm:
                fields_by_norm[norm].append(node)
            if len(text) > MAX_MENTION_LENGTH:
                continue
            variants = surface_variants(text)
            entity_ids = kb.entity_ids_for_variants(variants)
            if entity_ids:
                field_entities[id(node)] = entity_ids
                for entity_id in entity_ids:
                    entity_mentions[entity_id].append(node)
            keys = kb.value_keys_for_variants(variants)
            if keys:
                value_keys |= keys
                field_value_keys[id(node)] = keys

        match = PageMatch(
            document,
            dict(entity_mentions),
            field_entities,
            value_keys,
            dict(fields_by_norm),
            field_value_keys,
        )
        self._cache.put(document.doc_id, match)
        return match

    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the match cache."""
        return self._cache.stats()

    def clear_cache(self) -> None:
        self._cache.clear()
