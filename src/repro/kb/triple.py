"""Core knowledge-base value types: entities, values, and triples.

Facts are ``(s, r, o)`` triples (Section 2.1): ``s`` is an entity
identifier, ``r`` a predicate name from the ontology, and ``o`` either a
reference to another entity or a literal (date, number, phone, …).

Values are identified by a hashable *key* — ``("e", entity_id)`` for entity
references and ``("l", normalized_literal)`` for literals — which is what
the topic-identification Jaccard (Equation 1) and the annotation object
lookup operate on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.text.normalize import normalize_text

__all__ = ["Entity", "Value", "Triple"]


@dataclass(frozen=True)
class Entity:
    """A knowledge-base entity.

    Attributes:
        id: globally unique identifier (opaque string).
        name: primary surface form.
        type: ontology type name (e.g. ``"film"``, ``"person"``).
        aliases: additional surface forms (alternate titles, AKAs).
    """

    id: str
    name: str
    type: str
    aliases: tuple[str, ...] = ()

    def surfaces(self) -> tuple[str, ...]:
        """All surface forms under which this entity may appear on a page."""
        return (self.name, *self.aliases)


@dataclass(frozen=True)
class Value:
    """An object value: entity reference or literal.

    Use the :meth:`entity` / :meth:`literal` constructors rather than the
    raw initializer so the kind tag stays consistent.
    """

    kind: str  # "entity" | "literal"
    value: str  # entity id, or the literal's canonical text

    @classmethod
    def entity(cls, entity_id: str) -> Value:
        return cls("entity", entity_id)

    @classmethod
    def literal(cls, text: str) -> Value:
        return cls("literal", text)

    @property
    def is_entity(self) -> bool:
        return self.kind == "entity"

    @property
    def key(self) -> tuple[str, str]:
        """Hashable identity used in entity-set computations.

        Literals are keyed by normalized text so that two formats of the
        same value ("June 30, 1989" / "1989-06-30") still produce distinct
        keys — format unification happens via variant indexing in the KB,
        not here.
        """
        if self.kind == "entity":
            return ("e", self.value)
        return ("l", normalize_text(self.value))


@dataclass(frozen=True)
class Triple:
    """A knowledge-base fact ``(subject, predicate, object)``."""

    subject: str  # entity id
    predicate: str
    object: Value

    def __repr__(self) -> str:
        return f"Triple({self.subject}, {self.predicate}, {self.object.kind}:{self.object.value})"
