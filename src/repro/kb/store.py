"""The seed knowledge base: triple store with the indexes CERES needs.

The KB serves four access patterns, each backed by a dedicated index:

1. *string → entities* — fuzzy matching of page text fields against entity
   surface forms (topic identification step 1);
2. *subject → object keys* — the candidate-topic Jaccard score
   (Equation 1) compares the page's matched value set against each
   candidate's object set;
3. *subject → triples* — relation annotation retrieves all facts about the
   identified topic;
4. *string frequency* — the uniqueness stoplist ("strings appearing in a
   large percentage (e.g., 0.01%) of triples" are never topic candidates).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Iterable

from repro.kb.literals import literal_variants
from repro.kb.ontology import Ontology
from repro.kb.triple import Entity, Triple, Value
from repro.text.fuzzy import StringIndex
from repro.text.normalize import normalize_text

__all__ = ["KnowledgeBase"]

ValueKey = tuple[str, str]


class KnowledgeBase:
    """An in-memory triple store over a fixed ontology."""

    def __init__(self, ontology: Ontology) -> None:
        self.ontology = ontology
        self.entities: dict[str, Entity] = {}
        self.triples: list[Triple] = []
        self._by_subject: dict[str, list[Triple]] = defaultdict(list)
        self._object_keys_by_subject: dict[str, set[ValueKey]] = defaultdict(set)
        self._entity_index = StringIndex()  # surface -> entity ids
        self._value_index = StringIndex()  # surface -> value keys (entities + literals)
        self._string_triple_counts: Counter[str] = Counter()
        self._entities_by_type: dict[str, list[str]] = defaultdict(list)

    # -- construction -----------------------------------------------------

    def add_entity(self, entity: Entity) -> None:
        """Register an entity and index its surface forms."""
        if entity.id in self.entities:
            return
        self.entities[entity.id] = entity
        self._entities_by_type[entity.type].append(entity.id)
        key: ValueKey = ("e", entity.id)
        for surface in entity.surfaces():
            self._entity_index.add(surface, entity.id)
            self._value_index.add(surface, key)

    def add_triple(self, triple: Triple) -> None:
        """Register a fact; the subject must already be an entity."""
        if triple.subject not in self.entities:
            raise KeyError(f"unknown subject entity {triple.subject!r}")
        if triple.predicate not in self.ontology:
            raise KeyError(f"predicate {triple.predicate!r} not in ontology")
        self.triples.append(triple)
        self._by_subject[triple.subject].append(triple)
        self._object_keys_by_subject[triple.subject].add(triple.object.key)
        if triple.object.is_entity:
            entity = self.entities.get(triple.object.value)
            if entity is not None:
                self._string_triple_counts[normalize_text(entity.name)] += 1
        else:
            range_kind = self.ontology.get(triple.predicate).range_kind
            key = triple.object.key
            for variant in literal_variants(triple.object.value, range_kind):
                self._value_index.add(variant, key)
            self._string_triple_counts[key[1]] += 1

    def add_fact(self, subject: str, predicate: str, obj: Value) -> None:
        """Convenience wrapper around :meth:`add_triple`."""
        self.add_triple(Triple(subject, predicate, obj))

    # -- lookups -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.triples)

    def entity(self, entity_id: str) -> Entity:
        return self.entities[entity_id]

    def entities_of_type(self, type_name: str) -> list[str]:
        return list(self._entities_by_type.get(type_name, ()))

    def triples_for_subject(self, subject_id: str) -> list[Triple]:
        """All facts with ``subject_id`` as subject (pattern 3)."""
        return list(self._by_subject.get(subject_id, ()))

    def object_keys(self, subject_id: str) -> set[ValueKey]:
        """Value keys of all objects of ``subject_id`` (pattern 2).

        This is the ``entitySet`` of Algorithm 1, line 6.
        """
        return self._object_keys_by_subject.get(subject_id, set())

    def entity_ids_for_text(self, text: str) -> set[str]:
        """Entity ids whose surface forms fuzzily match ``text`` (pattern 1)."""
        return self._entity_index.lookup(text)

    def value_keys_for_text(self, text: str) -> set[ValueKey]:
        """Value keys (entities and literals) matching ``text``."""
        return self._value_index.lookup(text)

    def entity_ids_for_variants(self, variants: Iterable[str]) -> set[str]:
        """:meth:`entity_ids_for_text` with precomputed surface variants
        (lets callers normalize each field once across both indexes)."""
        return self._entity_index.lookup_variants(variants)

    def value_keys_for_variants(self, variants: Iterable[str]) -> set[ValueKey]:
        """:meth:`value_keys_for_text` with precomputed surface variants."""
        return self._value_index.lookup_variants(variants)

    def object_surfaces(self, triple: Triple) -> list[str]:
        """All surface strings under which the triple's object may appear."""
        if triple.object.is_entity:
            entity = self.entities.get(triple.object.value)
            return list(entity.surfaces()) if entity else []
        range_kind = self.ontology.get(triple.predicate).range_kind
        return literal_variants(triple.object.value, range_kind)

    def frequent_strings(self, fraction: float = 0.0001, min_count: int = 3) -> set[str]:
        """Normalized strings occurring in many triples (pattern 4).

        The threshold is ``max(min_count, fraction * |triples|)``: the
        paper's 0.01% is calibrated to an 85M-triple KB; ``min_count``
        keeps the stoplist meaningful at laptop scale.
        """
        threshold = max(min_count, int(fraction * len(self.triples)))
        return {
            string
            for string, count in self._string_triple_counts.items()
            if count >= threshold
        }

    def predicate_counts(self) -> Counter[str]:
        """Triple count per predicate (used for dataset profiling)."""
        counts: Counter[str] = Counter()
        for triple in self.triples:
            counts[triple.predicate] += 1
        return counts

    def subjects(self) -> Iterable[str]:
        return self._by_subject.keys()
