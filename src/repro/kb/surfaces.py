"""Per-subject surface-variant indexes for relation annotation.

Relation annotation (Algorithm 2) retrieves, for every page topic, all KB
objects of that topic and looks their surface forms up on the page.  The
surface forms pass through :func:`repro.text.fuzzy.surface_variants` —
and before this index existed, that expansion re-ran for every triple on
every page: the same cast member's variants were regenerated for each of
their films, on each page mentioning one.

:class:`SurfaceIndex` precomputes, per subject, the deduplicated list of
``(predicate, object key, object text, variants)`` entries exactly once
(lazily, cached for the lifetime of the index — one index per annotator
serves a whole template cluster).  The variant lists are flattened across
an object's surfaces, so :meth:`repro.kb.matcher.PageMatch.mentions_of_variants`
can consume them directly.  The mention lists produced are identical to
the legacy per-triple path: ``mentions_of_surfaces`` deduplicates nodes
and sorts them by XPath, so only the *union* of variants matters, and the
union here is the same.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kb.store import KnowledgeBase, ValueKey
from repro.text.fuzzy import surface_variants

__all__ = ["SubjectObject", "SurfaceIndex"]


@dataclass(frozen=True)
class SubjectObject:
    """One distinct (predicate, object) of a subject, with its variants."""

    predicate: str
    object_key: ValueKey
    object_text: str
    variants: tuple[str, ...]


class SurfaceIndex:
    """Lazily caches per-subject object entries against one KB.

    The KB is treated as immutable for the index's lifetime (annotation
    never mutates it); build one index per annotation run.
    """

    def __init__(self, kb: KnowledgeBase) -> None:
        self.kb = kb
        self._by_subject: dict[str, tuple[SubjectObject, ...]] = {}
        #: (predicate, object key) -> flattened variants; objects shared
        #: across subjects (genres, people) expand once, not per subject.
        self._variant_cache: dict[tuple[str, ValueKey], tuple[str, ...]] = {}

    def entries_for_subject(self, subject_id: str) -> tuple[SubjectObject, ...]:
        """Deduplicated object entries of ``subject_id``.

        Mirrors the legacy iteration exactly: triples in insertion order,
        first occurrence of each ``(predicate, object key)`` wins, objects
        with no surfaces skipped.
        """
        cached = self._by_subject.get(subject_id)
        if cached is not None:
            return cached
        kb = self.kb
        entries: list[SubjectObject] = []
        seen: set[tuple[str, ValueKey]] = set()
        for triple in kb.triples_for_subject(subject_id):
            key = (triple.predicate, triple.object.key)
            if key in seen:
                continue
            seen.add(key)
            variants = self._variants_for(key, triple)
            if not variants:
                continue
            object_text = (
                kb.entity(triple.object.value).name
                if triple.object.is_entity
                else triple.object.value
            )
            entries.append(
                SubjectObject(triple.predicate, triple.object.key, object_text, variants)
            )
        result = tuple(entries)
        self._by_subject[subject_id] = result
        return result

    def _variants_for(self, key: tuple[str, ValueKey], triple) -> tuple[str, ...]:
        """Flattened, order-preserving union of the object's surface variants."""
        cached = self._variant_cache.get(key)
        if cached is not None:
            return cached
        surfaces = self.kb.object_surfaces(triple)
        flattened: list[str] = []
        seen: set[str] = set()
        for surface in surfaces:
            for variant in surface_variants(surface):
                if variant not in seen:
                    seen.add(variant)
                    flattened.append(variant)
        result = tuple(flattened)
        self._variant_cache[key] = result
        return result
