"""Command-line interface: ``python -m repro``.

Runs the CERES pipeline over a directory of HTML files against a JSON
seed KB (see ``repro.kb.io`` for the format) and prints extracted triples
as JSON lines.

Example::

    python -m repro extract --kb seed_kb.json --pages ./site_html \
        --threshold 0.75 --output triples.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.config import CeresConfig
from repro.core.pipeline import CeresPipeline
from repro.dom.parser import parse_html
from repro.kb.io import load_kb

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CERES: distantly supervised extraction from semi-structured websites",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    extract = sub.add_parser("extract", help="annotate, train, and extract from a site")
    extract.add_argument("--kb", required=True, help="seed KB JSON file")
    extract.add_argument(
        "--pages", required=True, help="directory of .html files (one site)"
    )
    extract.add_argument(
        "--threshold", type=float, default=0.5, help="confidence threshold (default 0.5)"
    )
    extract.add_argument(
        "--output", default="-", help="output JSONL path (default: stdout)"
    )
    extract.add_argument(
        "--no-template-clustering", action="store_true",
        help="treat all pages as one template",
    )

    annotate = sub.add_parser(
        "annotate", help="run annotation only and print the labels"
    )
    annotate.add_argument("--kb", required=True)
    annotate.add_argument("--pages", required=True)
    return parser


def _load_documents(pages_dir: str) -> list:
    paths = sorted(Path(pages_dir).glob("*.html"))
    if not paths:
        raise SystemExit(f"no .html files found in {pages_dir!r}")
    return [parse_html(path.read_text(errors="replace"), url=path.name) for path in paths]


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    kb = load_kb(args.kb)
    documents = _load_documents(args.pages)

    if args.command == "annotate":
        pipeline = CeresPipeline(kb, CeresConfig())
        result = pipeline.annotate(documents)
        for page in result.annotated_pages:
            topic = kb.entity(page.topic_entity_id).name
            for annotation in page.annotations:
                print(
                    json.dumps(
                        {
                            "page": documents[page.page_index].url,
                            "topic": topic,
                            "predicate": annotation.predicate,
                            "text": annotation.node.text.strip(),
                            "xpath": annotation.node.xpath,
                        },
                        ensure_ascii=False,
                    )
                )
        return 0

    config = CeresConfig(
        confidence_threshold=args.threshold,
        use_template_clustering=not args.no_template_clustering,
    )
    pipeline = CeresPipeline(kb, config)
    result = pipeline.run(documents, documents)
    sink = sys.stdout if args.output == "-" else open(args.output, "w")
    try:
        for extraction in result.extractions:
            sink.write(
                json.dumps(
                    {
                        "page": documents[extraction.page_index].url,
                        "subject": extraction.subject,
                        "predicate": extraction.predicate,
                        "object": extraction.object,
                        "confidence": round(extraction.confidence, 4),
                    },
                    ensure_ascii=False,
                )
                + "\n"
            )
    finally:
        if sink is not sys.stdout:
            sink.close()
    print(
        f"[repro] {len(result.annotated_pages)} pages annotated, "
        f"{len(result.extractions)} triples extracted",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
