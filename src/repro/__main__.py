"""Command-line interface: ``python -m repro``.

One-shot mode (the original flow — annotate, train, and extract in a
single process)::

    python -m repro extract --kb seed_kb.json --pages ./site_html \
        --threshold 0.75 --output triples.jsonl

Train/serve split (the production flow — train once, persist the model
to a registry, serve extractions from the artifact without retraining)::

    python -m repro train --kb seed_kb.json --pages ./site_html --registry ./models
    python -m repro serve --registry ./models --pages ./site_html \
        --output triples.jsonl

Corpus mode (many sites, a process pool, per-site failure isolation)::

    python -m repro run-corpus --kb seed_kb.json --corpus ./sites \
        --registry ./models --output triples.jsonl --workers 4

``--corpus`` accepts a directory of per-site subdirectories or a JSONL
manifest of ``{"site": ..., "pages": ...}`` lines; see
:mod:`repro.runtime.runner`.

Cache observability (hit/miss/eviction counters of the serving LRUs)::

    python -m repro stats --registry ./models --pages ./site_html
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.config import CeresConfig
from repro.core.pipeline import CeresPipeline
from repro.kb.io import load_kb

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CERES: distantly supervised extraction from semi-structured websites",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    extract = sub.add_parser("extract", help="annotate, train, and extract from a site")
    extract.add_argument("--kb", required=True, help="seed KB JSON file")
    extract.add_argument(
        "--pages", required=True, help="directory of .html files (one site)"
    )
    extract.add_argument(
        "--threshold", type=float, default=0.5, help="confidence threshold (default 0.5)"
    )
    extract.add_argument(
        "--output", default="-", help="output JSONL path (default: stdout)"
    )
    extract.add_argument(
        "--no-template-clustering", action="store_true",
        help="treat all pages as one template",
    )

    annotate = sub.add_parser(
        "annotate", help="run annotation only and print the labels"
    )
    annotate.add_argument("--kb", required=True)
    annotate.add_argument("--pages", required=True)

    train = sub.add_parser(
        "train", help="annotate + train a site and persist the model to a registry"
    )
    train.add_argument("--kb", required=True, help="seed KB JSON file")
    train.add_argument(
        "--pages", required=True, help="directory of .html files (one site)"
    )
    train.add_argument(
        "--registry", required=True, help="model registry directory"
    )
    train.add_argument(
        "--site", default=None,
        help="site name the artifact is keyed by (default: pages directory name)",
    )
    train.add_argument(
        "--threshold", type=float, default=0.5,
        help="default confidence threshold stored with the model (default 0.5)",
    )
    train.add_argument(
        "--no-template-clustering", action="store_true",
        help="treat all pages as one template",
    )

    serve = sub.add_parser(
        "serve",
        help="extract using a registry artifact — no annotation, no training",
    )
    serve.add_argument("--registry", required=True, help="model registry directory")
    serve.add_argument(
        "--pages", required=True, help="directory of .html files to extract from"
    )
    serve.add_argument(
        "--site", default=None,
        help="registry site key (default: pages directory name)",
    )
    serve.add_argument(
        "--threshold", type=float, default=None,
        help="confidence threshold (default: the trained model's)",
    )
    serve.add_argument(
        "--output", default="-", help="output JSONL path (default: stdout)"
    )

    corpus = sub.add_parser(
        "run-corpus",
        help="train + extract every site of a multi-site corpus in parallel",
    )
    corpus.add_argument("--kb", required=True, help="seed KB JSON file")
    corpus.add_argument(
        "--corpus", required=True,
        help="directory of per-site subdirectories, or a JSONL manifest",
    )
    corpus.add_argument(
        "--registry", required=True, help="model registry directory for artifacts"
    )
    corpus.add_argument(
        "--output", default="-", help="extraction JSONL path (default: stdout)"
    )
    corpus.add_argument(
        "--workers", type=int, default=None,
        help="process count (default: one per core; 1 = run inline)",
    )
    corpus.add_argument(
        "--threshold", type=float, default=0.5,
        help="confidence threshold (default 0.5)",
    )
    corpus.add_argument(
        "--no-template-clustering", action="store_true",
        help="treat each site's pages as one template",
    )

    stats = sub.add_parser(
        "stats",
        help="report serving cache statistics (optionally after a warm batch)",
    )
    stats.add_argument("--registry", required=True, help="model registry directory")
    stats.add_argument(
        "--pages", default=None,
        help="optional .html directory to serve first, so counters are warm",
    )
    stats.add_argument(
        "--site", default=None,
        help="registry site key (default: pages directory name)",
    )
    stats.add_argument(
        "--max-resident-sites", type=int, default=None,
        help="site residency cap (default: CeresConfig.max_resident_sites)",
    )
    return parser


def _load_documents(pages_dir: str) -> list:
    from repro.runtime.runner import load_site_documents

    try:
        return load_site_documents(pages_dir)
    except FileNotFoundError as error:
        raise SystemExit(str(error))


def _open_sink(output: str):
    return sys.stdout if output == "-" else open(output, "w", encoding="utf-8")


def _write_extractions(extractions, documents, sink) -> None:
    """The shared JSONL row format of extract/serve."""
    from repro.runtime.runner import extraction_row

    for extraction in extractions:
        sink.write(
            json.dumps(
                extraction_row(extraction, documents[extraction.page_index].url),
                ensure_ascii=False,
            )
            + "\n"
        )


def _cmd_annotate(args) -> int:
    kb = load_kb(args.kb)
    documents = _load_documents(args.pages)
    pipeline = CeresPipeline(kb, CeresConfig())
    result = pipeline.annotate(documents)
    for page in result.annotated_pages:
        topic = kb.entity(page.topic_entity_id).name
        for annotation in page.annotations:
            print(
                json.dumps(
                    {
                        "page": documents[page.page_index].url,
                        "topic": topic,
                        "predicate": annotation.predicate,
                        "text": annotation.node.text.strip(),
                        "xpath": annotation.node.xpath,
                    },
                    ensure_ascii=False,
                )
            )
    return 0


def _cmd_extract(args) -> int:
    kb = load_kb(args.kb)
    documents = _load_documents(args.pages)
    config = CeresConfig(
        confidence_threshold=args.threshold,
        use_template_clustering=not args.no_template_clustering,
    )
    pipeline = CeresPipeline(kb, config)
    result = pipeline.run(documents, documents)
    sink = _open_sink(args.output)
    try:
        _write_extractions(result.extractions, documents, sink)
    finally:
        if sink is not sys.stdout:
            sink.close()
    print(
        f"[repro] {len(result.annotated_pages)} pages annotated, "
        f"{len(result.extractions)} triples extracted"
        + _skipped_note(result),
        file=sys.stderr,
    )
    return 0


def _skipped_note(result) -> str:
    """Stderr suffix naming pages dropped with undersized clusters."""
    if not result.skipped_clusters:
        return ""
    return (
        f" ({result.skipped_pages} page(s) in {result.skipped_clusters} "
        f"cluster(s) below min_cluster_size skipped)"
    )


def _cmd_train(args) -> int:
    from repro.runtime import ModelRegistry, SiteModel

    kb = load_kb(args.kb)
    documents = _load_documents(args.pages)
    site = args.site or Path(args.pages).name
    config = CeresConfig(
        confidence_threshold=args.threshold,
        use_template_clustering=not args.no_template_clustering,
    )
    pipeline = CeresPipeline(kb, config)
    result = pipeline.annotate(documents)
    pipeline.train(documents, result)
    site_model = SiteModel.from_result(site, config, result)
    path = ModelRegistry(args.registry).save(site_model)
    print(
        f"[repro] site={site}: {len(result.annotated_pages)} pages annotated, "
        f"{len(site_model.clusters)} cluster model(s) trained → {path}"
        + _skipped_note(result),
        file=sys.stderr,
    )
    if not site_model.clusters:
        print(
            "[repro] warning: no cluster reached a trainable model; "
            "serve will extract nothing for this site",
            file=sys.stderr,
        )
    return 0


def _cmd_serve(args) -> int:
    from repro.runtime import ExtractionService, RegistryError

    documents = _load_documents(args.pages)
    site = args.site or Path(args.pages).name
    service = ExtractionService(args.registry)
    try:
        extractions = service.extract_pages(site, documents, args.threshold)
    except RegistryError as error:
        raise SystemExit(f"registry error: {error}")
    sink = _open_sink(args.output)
    try:
        _write_extractions(extractions, documents, sink)
    finally:
        if sink is not sys.stdout:
            sink.close()
    print(
        f"[repro] site={site}: {len(documents)} pages served, "
        f"{len(extractions)} triples extracted (no retraining)",
        file=sys.stderr,
    )
    return 0


def _cmd_stats(args) -> int:
    from repro.runtime import ExtractionService, RegistryError

    if args.max_resident_sites is not None and args.max_resident_sites < 1:
        raise SystemExit("--max-resident-sites must be >= 1")
    service = ExtractionService(
        args.registry, max_resident_sites=args.max_resident_sites
    )
    served = None
    if args.pages is not None:
        documents = _load_documents(args.pages)
        site = args.site or Path(args.pages).name
        try:
            extractions = service.extract_pages(site, documents)
        except RegistryError as error:
            raise SystemExit(f"registry error: {error}")
        served = {
            "site": site,
            "pages": len(documents),
            "extractions": len(extractions),
        }
    payload = {
        "available_sites": service.available_sites(),
        "loaded_sites": service.loaded_sites(),
        "cache_stats": service.cache_stats(),
    }
    if served is not None:
        payload["served"] = served
    print(json.dumps(payload, indent=2, ensure_ascii=False))
    return 0


def _cmd_run_corpus(args) -> int:
    from repro.runtime import discover_corpus, run_corpus

    config = CeresConfig(
        confidence_threshold=args.threshold,
        use_template_clustering=not args.no_template_clustering,
    )
    # Validate the corpus before _open_sink truncates a prior output file.
    try:
        discover_corpus(args.corpus)
    except (FileNotFoundError, ValueError) as error:
        raise SystemExit(str(error))
    sink = _open_sink(args.output)
    try:
        reports = run_corpus(
            args.corpus,
            args.kb,
            args.registry,
            config=config,
            threshold=args.threshold,
            max_workers=args.workers,
            output=sink,
            log=lambda line: print(f"[repro] {line}", file=sys.stderr),
        )
    except (FileNotFoundError, ValueError) as error:
        raise SystemExit(str(error))
    finally:
        if sink is not sys.stdout:
            sink.close()
    succeeded = sum(1 for report in reports if report.ok)
    failed = len(reports) - succeeded
    print(
        f"[repro] corpus done: {succeeded} site(s) ok, {failed} failed, "
        f"{sum(r.n_extractions for r in reports)} triples extracted",
        file=sys.stderr,
    )
    return 0 if succeeded else 1


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "annotate": _cmd_annotate,
        "extract": _cmd_extract,
        "train": _cmd_train,
        "serve": _cmd_serve,
        "run-corpus": _cmd_run_corpus,
        "stats": _cmd_stats,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
