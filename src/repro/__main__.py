"""Command-line interface: ``python -m repro``.

One-shot mode (the original flow — annotate, train, and extract in a
single process)::

    python -m repro extract --kb seed_kb.json --pages ./site_html \
        --threshold 0.75 --output triples.jsonl

Train/serve split (the production flow — train once, persist the model
to a registry, serve extractions from the artifact without retraining)::

    python -m repro train --kb seed_kb.json --pages ./site_html --registry ./models
    python -m repro serve --registry ./models --pages ./site_html \
        --output triples.jsonl

Cross-site transfer (train one site-agnostic global model over a corpus,
then serve sites that have no per-site artifact zero-shot from it)::

    python -m repro train-global --kb seed_kb.json --corpus ./sites \
        --registry ./models
    python -m repro serve --registry ./models --pages ./new_site_html \
        --transfer-fallback --output triples.jsonl

Corpus mode (many sites, a process pool, per-site failure isolation)::

    python -m repro run-corpus --kb seed_kb.json --corpus ./sites \
        --registry ./models --output triples.jsonl --workers 4

Fault-tolerant corpus mode (crash-safe journal in ``--run-dir``; a
killed run resumed with ``--resume`` skips unchanged completed sites and
reproduces byte-identical output; ``--site-timeout``/``--max-attempts``
bound hung and flaky sites, and a failing site is retried once in
degraded page-isolation mode that quarantines poison pages)::

    python -m repro run-corpus --kb seed_kb.json --corpus ./sites \
        --registry ./models --output triples.jsonl --workers 4 \
        --run-dir ./run1 --site-timeout 300 --max-attempts 3
    # ... SIGKILL mid-run, then:
    python -m repro run-corpus --kb seed_kb.json --corpus ./sites \
        --registry ./models --output triples.jsonl --workers 4 \
        --run-dir ./run1 --resume

``--corpus`` accepts a directory of per-site subdirectories or a JSONL
manifest of ``{"site": ..., "pages": ...}`` lines; see
:mod:`repro.runtime.runner`.  Adding ``--fuse-output facts.jsonl``
streams every completed site into a :class:`~repro.fusion.store.FactStore`
and writes reliability-weighted fused facts when the corpus finishes.

Standalone fusion (the same fused output, from extraction JSONL already
on disk)::

    python -m repro fuse --input triples.jsonl --kb seed_kb.json \
        --output facts.jsonl --min-sites 2

Cache observability (hit/miss/eviction counters of the serving LRUs)::

    python -m repro stats --registry ./models --pages ./site_html

Tracing and metrics (``repro.obs``): every processing command accepts
``--trace-output spans.jsonl`` (nested wall-clock spans, one JSON object
per line) and ``--metrics-output metrics.json`` (a mergeable
counter/histogram snapshot — for ``run-corpus`` it already includes
every worker's telemetry, merged)::

    python -m repro run-corpus --kb seed_kb.json --corpus ./sites \
        --registry ./models --output triples.jsonl --workers 4 \
        --trace-output spans.jsonl --metrics-output metrics.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import obs
from repro.core.config import CeresConfig
from repro.core.pipeline import CeresPipeline
from repro.kb.io import load_kb

__all__ = ["main"]


def _add_min_predicate_pages(parser: argparse.ArgumentParser) -> None:
    """Annotation knob shared by the commands that run Algorithm 2."""
    parser.add_argument(
        "--min-predicate-pages", type=int, default=None, metavar="N",
        help="judge object over-representation only for predicates seen on "
        "at least N pages (default: CeresConfig.min_predicate_pages)",
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Tracing/metrics outputs, shared by every processing command."""
    parser.add_argument(
        "--trace-output", default=None, metavar="PATH",
        help="write nested wall-clock spans as JSONL here (enables tracing)",
    )
    parser.add_argument(
        "--metrics-output", default=None, metavar="PATH",
        help="write a counter/histogram snapshot as JSON here "
        "(enables metrics)",
    )


def _setup_obs(args) -> None:
    """Enable the requested observability modes before dispatch.

    Must run before the command constructs any instrumented object that
    captures its instruments at construction time (e.g.
    :class:`~repro.fusion.store.FactStore`).
    """
    obs.enable(
        tracing=getattr(args, "trace_output", None) is not None,
        metrics=getattr(args, "metrics_output", None) is not None,
    )


def _write_obs(args) -> None:
    """Write whatever the enabled instruments collected (even on a failed
    run — partial telemetry is exactly what you want when diagnosing one)."""
    trace_path = getattr(args, "trace_output", None)
    if trace_path is not None:
        from repro.obs.tracer import write_spans_jsonl

        with open(trace_path, "w", encoding="utf-8") as sink:
            n_spans = write_spans_jsonl(obs.tracer().export(), sink)
        print(f"[repro] {n_spans} span(s) -> {trace_path}", file=sys.stderr)
    metrics_path = getattr(args, "metrics_output", None)
    if metrics_path is not None:
        with open(metrics_path, "w", encoding="utf-8") as sink:
            json.dump(obs.metrics().snapshot(), sink, indent=2, sort_keys=True)
            sink.write("\n")
        print(f"[repro] metrics snapshot -> {metrics_path}", file=sys.stderr)


def _annotation_overrides(args) -> dict:
    """CeresConfig overrides from annotation-stage CLI flags."""
    overrides = {}
    min_pages = getattr(args, "min_predicate_pages", None)
    if min_pages is not None:
        if min_pages < 1:
            raise SystemExit("--min-predicate-pages must be >= 1")
        overrides["min_predicate_pages"] = min_pages
    return overrides


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CERES: distantly supervised extraction from semi-structured websites",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    extract = sub.add_parser("extract", help="annotate, train, and extract from a site")
    extract.add_argument("--kb", required=True, help="seed KB JSON file")
    extract.add_argument(
        "--pages", required=True, help="directory of .html files (one site)"
    )
    extract.add_argument(
        "--threshold", type=float, default=0.5, help="confidence threshold (default 0.5)"
    )
    extract.add_argument(
        "--output", default="-", help="output JSONL path (default: stdout)"
    )
    extract.add_argument(
        "--no-template-clustering", action="store_true",
        help="treat all pages as one template",
    )
    _add_min_predicate_pages(extract)
    _add_obs_flags(extract)

    annotate = sub.add_parser(
        "annotate", help="run annotation only and print the labels"
    )
    annotate.add_argument("--kb", required=True)
    annotate.add_argument("--pages", required=True)
    _add_min_predicate_pages(annotate)

    train = sub.add_parser(
        "train", help="annotate + train a site and persist the model to a registry"
    )
    train.add_argument("--kb", required=True, help="seed KB JSON file")
    train.add_argument(
        "--pages", required=True, help="directory of .html files (one site)"
    )
    train.add_argument(
        "--registry", required=True, help="model registry directory"
    )
    train.add_argument(
        "--site", default=None,
        help="site name the artifact is keyed by (default: pages directory name)",
    )
    train.add_argument(
        "--threshold", type=float, default=0.5,
        help="default confidence threshold stored with the model (default 0.5)",
    )
    train.add_argument(
        "--no-template-clustering", action="store_true",
        help="treat all pages as one template",
    )
    _add_min_predicate_pages(train)
    _add_obs_flags(train)

    serve = sub.add_parser(
        "serve",
        help="extract using a registry artifact — no annotation, no training",
    )
    serve.add_argument("--registry", required=True, help="model registry directory")
    serve.add_argument(
        "--pages", required=True, help="directory of .html files to extract from"
    )
    serve.add_argument(
        "--site", default=None,
        help="registry site key (default: pages directory name)",
    )
    serve.add_argument(
        "--threshold", type=float, default=None,
        help="confidence threshold (default: the trained model's)",
    )
    serve.add_argument(
        "--output", default="-", help="output JSONL path (default: stdout)"
    )
    serve.add_argument(
        "--transfer-fallback", action="store_true",
        help="serve sites with no artifact zero-shot from the registry's "
        "cross-site global model (see `train-global`)",
    )
    _add_obs_flags(serve)

    serve_http = sub.add_parser(
        "serve-http",
        help="run the resilient HTTP/JSON serving tier in front of a "
        "registry (bounded queue, deadlines, per-site circuit breakers, "
        "graceful SIGTERM drain)",
    )
    serve_http.add_argument(
        "--registry", required=True, help="model registry directory"
    )
    serve_http.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve_http.add_argument(
        "--port", type=int, default=8080,
        help="TCP port; 0 binds an ephemeral port (default 8080)",
    )
    serve_http.add_argument(
        "--threads", type=int, default=2,
        help="batch worker threads (default 2)",
    )
    serve_http.add_argument(
        "--max-queue-depth", type=int, default=64,
        help="admission queue bound; beyond it requests are shed with "
        "429 + Retry-After (default 64)",
    )
    serve_http.add_argument(
        "--request-deadline", type=float, default=30.0, metavar="SECONDS",
        help="per-request wall-clock budget, enqueue to response "
        "(default 30; expired requests get 504)",
    )
    serve_http.add_argument(
        "--retry-after", type=float, default=1.0, metavar="SECONDS",
        help="Retry-After hint on shed/draining responses (default 1)",
    )
    serve_http.add_argument(
        "--batch-max-pages", type=int, default=64,
        help="page cap per merged cross-request batch (default 64)",
    )
    serve_http.add_argument(
        "--batch-linger", type=float, default=0.0, metavar="SECONDS",
        help="wait up to this long for same-site requests to co-batch "
        "(default 0: score immediately)",
    )
    serve_http.add_argument(
        "--breaker-failures", type=int, default=3,
        help="consecutive permanent failures that open a site's circuit "
        "breaker (default 3)",
    )
    serve_http.add_argument(
        "--breaker-cooldown", type=float, default=30.0, metavar="SECONDS",
        help="open-breaker cooldown before a half-open probe (default 30)",
    )
    serve_http.add_argument(
        "--breaker-probes", type=int, default=1,
        help="successful probes required to close a half-open breaker "
        "(default 1)",
    )
    serve_http.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SECONDS",
        help="SIGTERM drain budget before queued work is force-answered "
        "503 (default 30)",
    )
    serve_http.add_argument(
        "--max-body-bytes", type=int, default=16 << 20,
        help="largest accepted request body (default 16 MiB)",
    )
    serve_http.add_argument(
        "--max-resident-sites", type=int, default=None,
        help="site residency cap (default: CeresConfig.max_resident_sites)",
    )
    serve_http.add_argument(
        "--transfer-fallback", action="store_true",
        help="serve sites with no artifact zero-shot from the registry's "
        "cross-site global model (breaker-open degradation always tries "
        "the global model regardless of this flag)",
    )
    serve_http.add_argument(
        "--max-parse-depth", type=int, default=None,
        help="element nesting cap for untrusted HTML "
        "(default: CeresConfig.max_parse_depth)",
    )
    serve_http.add_argument(
        "--max-parse-nodes", type=int, default=None,
        help="parsed-node cap for untrusted HTML "
        "(default: CeresConfig.max_parse_nodes)",
    )
    _add_obs_flags(serve_http)

    train_global = sub.add_parser(
        "train-global",
        help="train the cross-site global (transfer) model over a corpus "
        "and persist it to the registry",
    )
    train_global.add_argument("--kb", required=True, help="seed KB JSON file")
    train_global.add_argument(
        "--corpus", required=True,
        help="directory of per-site subdirectories, or a JSONL manifest",
    )
    train_global.add_argument(
        "--registry", required=True,
        help="model registry directory the global artifact is written to",
    )
    train_global.add_argument(
        "--exclude", action="append", default=[], metavar="SITE",
        help="leave this site out of training (repeatable; e.g. the site "
        "you plan to evaluate zero-shot)",
    )
    _add_min_predicate_pages(train_global)
    _add_obs_flags(train_global)

    corpus = sub.add_parser(
        "run-corpus",
        help="train + extract every site of a multi-site corpus in parallel",
    )
    corpus.add_argument("--kb", required=True, help="seed KB JSON file")
    corpus.add_argument(
        "--corpus", required=True,
        help="directory of per-site subdirectories, or a JSONL manifest",
    )
    corpus.add_argument(
        "--registry", required=True, help="model registry directory for artifacts"
    )
    corpus.add_argument(
        "--output", default="-", help="extraction JSONL path (default: stdout)"
    )
    corpus.add_argument(
        "--workers", type=int, default=None,
        help="process count (default: one per core; 1 = run inline)",
    )
    corpus.add_argument(
        "--threshold", type=float, default=0.5,
        help="confidence threshold (default 0.5)",
    )
    corpus.add_argument(
        "--no-template-clustering", action="store_true",
        help="treat each site's pages as one template",
    )
    _add_min_predicate_pages(corpus)
    corpus.add_argument(
        "--train-global", action="store_true", dest="train_global",
        help="after the corpus finishes, pool every site's training "
        "examples into a cross-site global model (see `train-global`)",
    )
    corpus.add_argument(
        "--fuse-output", default=None,
        help="also fuse all sites' extractions and write fused-fact JSONL here",
    )
    corpus.add_argument(
        "--fuse-min-sites", type=int, default=1,
        help="fused facts need support from this many sites (default 1)",
    )
    corpus.add_argument(
        "--fuse-min-score", type=float, default=0.0,
        help="drop fused facts scoring below this (default 0)",
    )
    corpus.add_argument(
        "--no-fuse-reliability", action="store_true",
        help="plain noisy-OR: skip seed-KB site-reliability weighting",
    )
    corpus.add_argument(
        "--run-dir", default=None,
        help="per-run directory for the crash-safe journal and per-site "
        "rows; a killed run restarted with --resume skips unchanged "
        "completed sites and reproduces byte-identical output",
    )
    corpus.add_argument(
        "--resume", action="store_true",
        help="continue the journaled run in --run-dir (requires --run-dir)",
    )
    corpus.add_argument(
        "--site-timeout", type=float, default=None, metavar="SECONDS",
        help="per-site wall-clock budget per attempt (default: none)",
    )
    corpus.add_argument(
        "--max-attempts", type=int, default=3,
        help="full-batch attempts per site; transient failures retry "
        "with exponential backoff (default 3)",
    )
    corpus.add_argument(
        "--retry-backoff", type=float, default=0.5, metavar="SECONDS",
        help="base of the exponential retry-backoff window (default 0.5)",
    )
    _add_obs_flags(corpus)

    fuse = sub.add_parser(
        "fuse",
        help="fuse extraction JSONL (run-corpus output) into scored facts",
    )
    fuse.add_argument(
        "--input", required=True,
        help="extraction JSONL with per-row 'site' labels ('-' for stdin)",
    )
    fuse.add_argument(
        "--output", default="-", help="fused-fact JSONL path (default: stdout)"
    )
    fuse.add_argument(
        "--kb", default=None,
        help="seed KB JSON; enables site-reliability weighting",
    )
    fuse.add_argument(
        "--site", default=None,
        help="site label for rows that carry no 'site' field (extract/serve output)",
    )
    fuse.add_argument(
        "--min-sites", type=int, default=1,
        help="fused facts need support from this many sites (default 1)",
    )
    fuse.add_argument(
        "--min-score", type=float, default=0.0,
        help="drop fused facts scoring below this (default 0)",
    )
    fuse.add_argument(
        "--shards", type=int, default=8,
        help="predicate-keyed shard count (default 8; output-invariant)",
    )
    fuse.add_argument(
        "--max-resident-facts", type=int, default=None,
        help="spill partial aggregates to disk beyond this many facts",
    )
    fuse.add_argument(
        "--spill-dir", default=None,
        help="spill directory (default: a self-cleaning temp dir)",
    )
    _add_obs_flags(fuse)

    stats = sub.add_parser(
        "stats",
        help="report serving cache statistics (optionally after a warm batch)",
    )
    stats.add_argument("--registry", required=True, help="model registry directory")
    stats.add_argument(
        "--pages", default=None,
        help="optional .html directory to serve first, so counters are warm",
    )
    stats.add_argument(
        "--site", default=None,
        help="registry site key (default: pages directory name)",
    )
    stats.add_argument(
        "--max-resident-sites", type=int, default=None,
        help="site residency cap (default: CeresConfig.max_resident_sites)",
    )

    lint = sub.add_parser(
        "lint",
        help="run reprolint, the AST-based repo invariant checker",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src", "benchmarks"],
        help="files or directories to lint (default: src benchmarks)",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        dest="lint_format",
        help="finding output format (default: text)",
    )
    lint.add_argument(
        "--rule", action="append", default=[], metavar="RULE_ID",
        help="run only this rule id (repeatable)",
    )
    lint.add_argument(
        "--exclude", action="append", default=[], metavar="RULE_ID",
        help="skip this rule id (repeatable)",
    )
    lint.add_argument(
        "--show-suppressed", action="store_true",
        help="also report findings silenced by `# repro: allow[...]`",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    return parser


def _load_documents(pages_dir: str) -> list:
    from repro.runtime.runner import load_site_documents

    try:
        return load_site_documents(pages_dir)
    except FileNotFoundError as error:
        raise SystemExit(str(error))


def _open_sink(output: str):
    return sys.stdout if output == "-" else open(output, "w", encoding="utf-8")


def _write_extractions(extractions, documents, sink) -> None:
    """The shared JSONL row format of extract/serve."""
    from repro.runtime.runner import extraction_row

    for extraction in extractions:
        sink.write(
            json.dumps(
                extraction_row(extraction, documents[extraction.page_index].url),
                ensure_ascii=False,
            )
            + "\n"
        )


def _cmd_annotate(args) -> int:
    kb = load_kb(args.kb)
    documents = _load_documents(args.pages)
    pipeline = CeresPipeline(kb, CeresConfig(**_annotation_overrides(args)))
    result = pipeline.annotate(documents)
    for page in result.annotated_pages:
        topic = kb.entity(page.topic_entity_id).name
        for annotation in page.annotations:
            print(
                json.dumps(
                    {
                        "page": documents[page.page_index].url,
                        "topic": topic,
                        "predicate": annotation.predicate,
                        "text": annotation.node.text.strip(),
                        "xpath": annotation.node.xpath,
                    },
                    ensure_ascii=False,
                )
            )
    return 0


def _cmd_extract(args) -> int:
    kb = load_kb(args.kb)
    documents = _load_documents(args.pages)
    config = CeresConfig(
        confidence_threshold=args.threshold,
        use_template_clustering=not args.no_template_clustering,
        **_annotation_overrides(args),
    )
    pipeline = CeresPipeline(kb, config)
    result = pipeline.run(documents, documents)
    obs.metrics().record_cache(pipeline.matcher.cache_stats())
    sink = _open_sink(args.output)
    try:
        _write_extractions(result.extractions, documents, sink)
    finally:
        if sink is not sys.stdout:
            sink.close()
    print(
        f"[repro] {len(result.annotated_pages)} pages annotated, "
        f"{len(result.extractions)} triples extracted"
        + _skipped_note(result),
        file=sys.stderr,
    )
    return 0


def _skipped_note(result) -> str:
    """Stderr suffix naming pages dropped with undersized clusters."""
    if not result.skipped_clusters:
        return ""
    return (
        f" ({result.skipped_pages} page(s) in {result.skipped_clusters} "
        f"cluster(s) below min_cluster_size skipped)"
    )


def _cmd_train(args) -> int:
    from repro.runtime import ModelRegistry, SiteModel

    kb = load_kb(args.kb)
    documents = _load_documents(args.pages)
    site = args.site or Path(args.pages).name
    config = CeresConfig(
        confidence_threshold=args.threshold,
        use_template_clustering=not args.no_template_clustering,
        **_annotation_overrides(args),
    )
    pipeline = CeresPipeline(kb, config)
    result = pipeline.annotate(documents)
    pipeline.train(documents, result)
    obs.metrics().record_cache(pipeline.matcher.cache_stats())
    site_model = SiteModel.from_result(site, config, result)
    path = ModelRegistry(args.registry).save(site_model)
    print(
        f"[repro] site={site}: {len(result.annotated_pages)} pages annotated, "
        f"{len(site_model.clusters)} cluster model(s) trained → {path}"
        + _skipped_note(result),
        file=sys.stderr,
    )
    if not site_model.clusters:
        print(
            "[repro] warning: no cluster reached a trainable model; "
            "serve will extract nothing for this site",
            file=sys.stderr,
        )
    return 0


def _cmd_serve(args) -> int:
    from repro.runtime import ExtractionService, RegistryError

    documents = _load_documents(args.pages)
    site = args.site or Path(args.pages).name
    service = ExtractionService(
        args.registry, transfer_fallback=args.transfer_fallback
    )
    try:
        extractions = service.extract_pages(site, documents, args.threshold)
    except RegistryError as error:
        raise SystemExit(f"registry error: {error}")
    service.publish_metrics()
    sink = _open_sink(args.output)
    try:
        _write_extractions(extractions, documents, sink)
    finally:
        if sink is not sys.stdout:
            sink.close()
    zero_shot = any(
        getattr(extraction, "model", "site") != "site"
        for extraction in extractions
    )
    print(
        f"[repro] site={site}: {len(documents)} pages served, "
        f"{len(extractions)} triples extracted "
        + ("(zero-shot, global model)" if zero_shot else "(no retraining)"),
        file=sys.stderr,
    )
    return 0


def _cmd_serve_http(args) -> int:
    import signal

    from repro.runtime import ExtractionService
    from repro.serving import ServingConfig, ServingServer

    if args.max_resident_sites is not None and args.max_resident_sites < 1:
        raise SystemExit("--max-resident-sites must be >= 1")
    try:
        serving_config = ServingConfig(
            host=args.host,
            port=args.port,
            workers=args.threads,
            max_queue_depth=args.max_queue_depth,
            request_deadline=args.request_deadline,
            retry_after=args.retry_after,
            batch_max_pages=args.batch_max_pages,
            batch_linger=args.batch_linger,
            breaker_failures=args.breaker_failures,
            breaker_cooldown=args.breaker_cooldown,
            breaker_probes=args.breaker_probes,
            drain_timeout=args.drain_timeout,
            max_body_bytes=args.max_body_bytes,
            max_parse_depth=args.max_parse_depth,
            max_parse_nodes=args.max_parse_nodes,
        )
    except ValueError as error:
        raise SystemExit(str(error))
    service = ExtractionService(
        args.registry,
        transfer_fallback=args.transfer_fallback,
        max_resident_sites=args.max_resident_sites,
    )
    # Metrics power /stats and the shed/breaker counters — always on
    # here, but never clobbering a registry --metrics-output installed.
    if not obs.metrics_enabled():
        obs.enable(tracing=False, metrics=True)
    server = ServingServer(service, serving_config)
    server.start()

    def _terminate(signum, frame):  # noqa: ARG001 — signal handler signature
        print(
            f"[repro] signal {signum}: draining (in-flight work flushes, "
            f"new work gets 503)",
            file=sys.stderr,
            flush=True,
        )
        server.initiate_drain()

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, _terminate)
    # The port line is a contract: harnesses parse it to find an
    # ephemeral (--port 0) server.
    print(
        f"[repro] serving on http://{serving_config.host}:{server.port} "
        f"(workers={serving_config.workers}, "
        f"queue={serving_config.max_queue_depth})",
        file=sys.stderr,
        flush=True,
    )
    server.wait_stopped()
    print("[repro] drained, exiting", file=sys.stderr, flush=True)
    return 0


def _cmd_train_global(args) -> int:
    from repro.runtime import RegistryError, discover_corpus
    from repro.transfer import train_global_from_corpus

    try:
        discover_corpus(args.corpus)
    except (FileNotFoundError, ValueError) as error:
        raise SystemExit(str(error))
    config = CeresConfig(**_annotation_overrides(args))
    try:
        model, path = train_global_from_corpus(
            args.corpus,
            args.kb,
            config=config,
            registry_root=args.registry,
            exclude=tuple(args.exclude),
            log=lambda line: print(f"[repro] {line}", file=sys.stderr),
        )
    except (FileNotFoundError, RegistryError, ValueError) as error:
        raise SystemExit(str(error))
    print(
        f"[repro] global model: {len(model.labels)} label(s), "
        f"{model.vectorizer.n_features} transferable feature(s) "
        f"→ {path}",
        file=sys.stderr,
    )
    return 0


def _cmd_fuse(args) -> int:
    from repro.fusion import (
        AgreementTally,
        FactStore,
        estimate_reliability,
        write_fused_jsonl,
    )

    if args.min_sites < 1:
        raise SystemExit("--min-sites must be >= 1")
    tally = None
    if args.kb is not None:
        tally = AgreementTally(load_kb(args.kb))
    try:
        source = sys.stdin if args.input == "-" else open(
            args.input, "r", encoding="utf-8"
        )
    except FileNotFoundError as error:
        raise SystemExit(str(error))
    seen_sites: set[str] = set()
    # The with-block guarantees spill files are removed even when a bad
    # row aborts the run before finalize().
    with FactStore(
        n_shards=args.shards,
        max_resident_facts=args.max_resident_facts,
        spill_dir=args.spill_dir,
    ) as store:
        try:
            for line_no, line in enumerate(source, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                    if not isinstance(row, dict):
                        raise TypeError(f"row is {type(row).__name__}, not an object")
                    # --site is a fallback for label-less extract/serve
                    # rows; a row's own site label always wins.
                    site = row.get("site") or args.site
                    if not site:
                        raise KeyError("site")
                    store.add_row(row, site)
                except (json.JSONDecodeError, AttributeError, KeyError,
                        TypeError, ValueError) as exc:
                    raise SystemExit(
                        f"{args.input}:{line_no}: bad extraction row "
                        f"(need site/subject/predicate/object/confidence; "
                        f"--site supplies a missing site label): {exc}"
                    )
                seen_sites.add(site)
                if tally is not None:
                    tally.observe(
                        site, row["subject"], row["predicate"], row["object"]
                    )
        finally:
            if source is not sys.stdin:
                source.close()

        if tally is not None:
            # Every site gets a weight — an unadjudicated site (no
            # checkable extraction) falls to the prior, exactly as in
            # run-corpus fusion.
            for site in sorted(seen_sites):
                store.site_reliability[site] = estimate_reliability(
                    *tally.counts(site)
                )
        facts = store.finalize(
            min_score=args.min_score, min_sites=args.min_sites
        )
    sink = _open_sink(args.output)
    try:
        n_facts = write_fused_jsonl(facts, sink)
    finally:
        if sink is not sys.stdout:
            sink.close()
    stats = store.stats()
    print(
        f"[repro] fused {stats['rows']} extraction row(s) into "
        f"{n_facts} fact(s) ({stats['spills']} spill(s)"
        + (
            f", reliability over {stats['reliability_sites']} site(s)"
            if tally is not None
            else ""
        )
        + ")",
        file=sys.stderr,
    )
    return 0


def _cmd_stats(args) -> int:
    from repro.runtime import ExtractionService, RegistryError

    if args.max_resident_sites is not None and args.max_resident_sites < 1:
        raise SystemExit("--max-resident-sites must be >= 1")
    service = ExtractionService(
        args.registry, max_resident_sites=args.max_resident_sites
    )
    # Metrics are always on for stats — rendering a registry snapshot is
    # the command's whole point.  scoped() keeps it local and restores
    # whatever state the caller had.
    with obs.scoped(tracing=False, metrics=True) as (_, registry):
        served = None
        if args.pages is not None:
            documents = _load_documents(args.pages)
            site = args.site or Path(args.pages).name
            try:
                extractions = service.extract_pages(site, documents)
            except RegistryError as error:
                raise SystemExit(f"registry error: {error}")
            served = {
                "site": site,
                "pages": len(documents),
                "extractions": len(extractions),
            }
        service.publish_metrics(registry)
        payload = {
            "available_sites": service.available_sites(),
            "loaded_sites": service.loaded_sites(),
            "cache_stats": service.cache_stats(),
            "metrics": registry.snapshot(),
        }
    if served is not None:
        payload["served"] = served
    print(json.dumps(payload, indent=2, ensure_ascii=False))
    return 0


def _cmd_run_corpus(args) -> int:
    from repro.runtime import discover_corpus, run_corpus

    config = CeresConfig(
        confidence_threshold=args.threshold,
        use_template_clustering=not args.no_template_clustering,
        **_annotation_overrides(args),
    )
    if args.resume and args.run_dir is None:
        raise SystemExit("--resume requires --run-dir")
    if args.max_attempts < 1:
        raise SystemExit("--max-attempts must be >= 1")
    if args.site_timeout is not None and args.site_timeout <= 0:
        raise SystemExit("--site-timeout must be > 0 seconds")
    # Validate the corpus before _open_sink truncates a prior output file.
    try:
        discover_corpus(args.corpus)
    except (FileNotFoundError, ValueError) as error:
        raise SystemExit(str(error))
    store = None
    if args.fuse_output is not None:
        from repro.fusion import FactStore

        store = FactStore(use_reliability=not args.no_fuse_reliability)
    sink = _open_sink(args.output)
    fused_note = ""
    try:
        try:
            reports = run_corpus(
                args.corpus,
                args.kb,
                args.registry,
                config=config,
                threshold=args.threshold,
                max_workers=args.workers,
                output=sink,
                fuse=store,
                train_global=args.train_global,
                log=lambda line: print(f"[repro] {line}", file=sys.stderr),
                run_dir=args.run_dir,
                resume=args.resume,
                site_timeout=args.site_timeout,
                max_attempts=args.max_attempts,
                retry_backoff=args.retry_backoff,
            )
        except (FileNotFoundError, ValueError) as error:
            raise SystemExit(str(error))
        finally:
            if sink is not sys.stdout:
                sink.close()
        if store is not None:
            from repro.fusion import write_fused_jsonl

            facts = store.finalize(
                min_score=args.fuse_min_score, min_sites=args.fuse_min_sites
            )
            fused_sink = _open_sink(args.fuse_output)
            try:
                n_facts = write_fused_jsonl(facts, fused_sink)
            finally:
                if fused_sink is not sys.stdout:
                    fused_sink.close()
            fused_note = f", {n_facts} fused fact(s) → {args.fuse_output}"
    finally:
        if store is not None:
            store.close()  # no-op after finalize; reclaims spills on abort
    succeeded = sum(1 for report in reports if report.ok)
    failed = len(reports) - succeeded
    resumed = sum(1 for report in reports if report.resumed)
    quarantined = sum(report.n_quarantined_pages for report in reports)
    resilience_note = ""
    if resumed:
        resilience_note += f", {resumed} resumed unchanged"
    if quarantined:
        resilience_note += f", {quarantined} page(s) quarantined"
    print(
        f"[repro] corpus done: {succeeded} site(s) ok, {failed} failed"
        f"{resilience_note}, "
        f"{sum(r.n_extractions for r in reports)} triples extracted"
        f"{fused_note}",
        file=sys.stderr,
    )
    return 0 if succeeded else 1


def _cmd_lint(args) -> int:
    from repro import analysis

    if args.list_rules:
        for rule in analysis.ALL_RULES:
            print(f"{rule.id:24s} {rule.summary}")
        return 0
    try:
        findings = analysis.lint_paths(
            args.paths,
            include=tuple(args.rule),
            exclude=tuple(args.exclude),
        )
    except analysis.UnknownRuleError as error:
        print(str(error), file=sys.stderr)
        return 2
    active = analysis.active_findings(findings)
    shown = findings if args.show_suppressed else active
    rendered = analysis.FORMATTERS[args.lint_format](shown)
    if rendered:
        print(rendered)
    if args.lint_format == "text":
        suppressed = len(findings) - len(active)
        tail = f" ({suppressed} suppressed)" if suppressed else ""
        print(f"reprolint: {len(active)} finding(s){tail}", file=sys.stderr)
    # Exit code carries the finding count; cap below 126 so large counts
    # can't wrap modulo 256 into a clean exit.
    return min(len(active), 125)


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "annotate": _cmd_annotate,
        "extract": _cmd_extract,
        "train": _cmd_train,
        "train-global": _cmd_train_global,
        "serve": _cmd_serve,
        "serve-http": _cmd_serve_http,
        "run-corpus": _cmd_run_corpus,
        "fuse": _cmd_fuse,
        "stats": _cmd_stats,
        "lint": _cmd_lint,
    }
    # Observability is enabled before dispatch (instrumented objects may
    # capture their instruments at construction) and written out even when
    # the command fails — partial telemetry is diagnostic gold.  disable()
    # restores the null singletons so repeated main() calls (tests) never
    # leak instruments into each other.
    _setup_obs(args)
    try:
        return handlers[args.command](args)
    finally:
        try:
            _write_obs(args)
        finally:
            obs.disable()


if __name__ == "__main__":
    raise SystemExit(main())
