"""Synthetic CommonCrawl: long-tail, multi-lingual movie websites.

Reproduces the Section 5.5 testbed: dozens of niche movie sites in several
languages, with widely varying KB overlap and the failure modes the paper
catalogues in Section 5.5.1, each planted as an explicit *hazard*:

* ``role_conflation`` — a single "Filmography" list without role labels
  (spicyonion.com, filmindonesia.or.id): the page asserts no specific
  predicate, but KB facts still align, poisoning annotations;
* ``all_genres`` — every genre in the vocabulary listed on every page
  (christianfilmdatabase.com, laborfilms.com);
* ``date_lists`` — long per-day box-office tables full of dates
  (the-numbers.com), swamping the release date;
* ``episode_confusion`` — film pages whose titles collide with TV episodes
  in the KB (dianying.com, myanimelist.net): topic identification can
  pick the wrong entity type;
* ``template_variety`` — the order of info rows shuffles per page
  (bollywoodmdb.com, colonialfilm.org.uk);
* ``mixed_templates`` — non-detail list pages engineered to cluster with
  detail pages (sodasandpopcorn.com);
* ``charts_only`` — no detail pages at all (boxofficemojo.com): the right
  answer is to extract nothing.

The seed KB is the movie-universe core; each site mixes core (in-KB) films
with long-tail films the KB has never seen, at a per-site overlap rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.datasets.entities import MOVIE_ONTOLOGY, MovieUniverse
from repro.datasets.kbgen import kb_from_universe
from repro.datasets.names import GENRES
from repro.datasets.render import GeneratedPage, PageBuilder
from repro.datasets.styles import InfoRow, LabeledValue, SiteStyle
from repro.kb.store import KnowledgeBase

__all__ = ["CCSiteConfig", "CCSite", "CommonCrawlDataset", "generate_commoncrawl",
           "DEFAULT_SITES"]


@dataclass(frozen=True)
class CCSiteConfig:
    """Static description of one synthetic long-tail site."""

    name: str
    focus: str
    language: str = "en"
    n_pages: int = 40
    #: fraction of the site's films that exist in the seed KB.
    kb_overlap: float = 0.5
    hazards: frozenset = frozenset()
    #: additional non-detail pages (charts/lists).
    n_noise_pages: int = 0


#: The default site roster (Table 8 analogue).  Page counts are laptop-scale;
#: relative sizes and hazard assignments follow the paper's discussion.
DEFAULT_SITES: tuple[CCSiteConfig, ...] = (
    CCSiteConfig("themoviedb", "General film information", "en", 60, 0.85),
    CCSiteConfig("blaxploitation", "Blaxploitation films", "en", 16, 0.7),
    CCSiteConfig("danskefilm", "Danish films", "da", 36, 0.65),
    CCSiteConfig("archiviocinema", "Italian films", "it", 30, 0.6),
    CCSiteConfig("filmitalia", "Italian films", "it", 30, 0.6),
    CCSiteConfig("kmdb", "Korean films", "en", 14, 0.35),
    CCSiteConfig("britflicks", "British films", "en", 28, 0.6),
    CCSiteConfig("rottentomatoes", "Film reviews", "en", 70, 0.8),
    CCSiteConfig("moviecrow", "Indian films", "en", 16, 0.4),
    CCSiteConfig("nfb", "Canadian films", "en", 44, 0.5),
    CCSiteConfig("kinobox", "Czech films", "cs", 44, 0.55),
    CCSiteConfig("samdb", "South African films", "en", 12, 0.3),
    CCSiteConfig(
        "dianying", "Chinese films", "en", 36, 0.45,
        hazards=frozenset({"episode_confusion"}),
    ),
    CCSiteConfig("giantscreen", "IMAX films", "en", 14, 0.5),
    CCSiteConfig(
        "myanimelist", "Animated films", "en", 30, 0.4,
        hazards=frozenset({"episode_confusion"}),
    ),
    CCSiteConfig("hkmdb", "Hong Kong films", "en", 28, 0.45),
    CCSiteConfig(
        "bollywoodmdb", "Bollywood films", "en", 20, 0.45,
        hazards=frozenset({"template_variety"}),
    ),
    CCSiteConfig(
        "soundtrackcollector", "Movie soundtracks", "en", 26, 0.55,
        hazards=frozenset({"music_focus"}),
    ),
    CCSiteConfig(
        "spicyonion", "Indian films", "en", 26, 0.5,
        hazards=frozenset({"role_conflation"}),
    ),
    CCSiteConfig("shortfilmcentral", "Short films", "en", 40, 0.25),
    CCSiteConfig(
        "filmindonesia", "Indonesian films", "id", 24, 0.45,
        hazards=frozenset({"role_conflation"}),
    ),
    CCSiteConfig(
        "thenumbers", "Financial performance", "en", 56, 0.75,
        hazards=frozenset({"date_lists"}),
    ),
    CCSiteConfig(
        "sodasandpopcorn", "Nigerian films", "en", 20, 0.35,
        hazards=frozenset({"mixed_templates"}), n_noise_pages=10,
    ),
    CCSiteConfig(
        "christianfilmdb", "Christian films", "en", 24, 0.5,
        hazards=frozenset({"all_genres"}),
    ),
    CCSiteConfig("jfdb", "Japanese films", "en", 14, 0.35),
    CCSiteConfig("kvikmyndavefurinn", "Icelandic films", "is", 12, 0.4),
    CCSiteConfig(
        "laborfilms", "Labor movement films", "en", 14, 0.45,
        hazards=frozenset({"all_genres"}),
    ),
    CCSiteConfig("africaarchive", "African films", "en", 16, 0.3),
    CCSiteConfig(
        "colonialfilm", "Colonial-era films", "en", 16, 0.3,
        hazards=frozenset({"template_variety"}),
    ),
    CCSiteConfig(
        "sfd", "Slovak films", "sk", 14, 0.3,
        hazards=frozenset({"role_conflation"}),
    ),
    CCSiteConfig("bcdb", "Animated films", "en", 10, 0.05),
    CCSiteConfig("bmxmdb", "BMX films", "en", 10, 0.0),
    CCSiteConfig(
        "boxofficemojo", "Financial performance", "en", 0, 0.0,
        hazards=frozenset({"charts_only"}), n_noise_pages=30,
    ),
)


@dataclass
class CCSite:
    """One generated long-tail site."""

    config: CCSiteConfig
    style: SiteStyle
    pages: list[GeneratedPage] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.config.name

    def documents(self):
        return [page.document for page in self.pages]


@dataclass
class CommonCrawlDataset:
    """The full long-tail corpus plus the seed KB."""

    universe: MovieUniverse
    sites: list[CCSite]
    kb: KnowledgeBase


def _detail_page(
    universe: MovieUniverse,
    film_id: str,
    site: CCSiteConfig,
    style: SiteStyle,
    page_rng: random.Random,
) -> GeneratedPage:
    film = universe.films[film_id]
    hazards = site.hazards
    builder = PageBuilder()
    style.start_page(builder, page_rng)
    opened = style.open_main(builder)
    style.title_block(builder, film.title, "name")

    rows: list[InfoRow] = []
    if "role_conflation" not in hazards:
        rows.append(
            InfoRow(
                style.label("director"),
                tuple(
                    LabeledValue(universe.people[p].name, "directed_by")
                    for p in film.director_ids
                ),
            )
        )
        rows.append(
            InfoRow(
                style.label("writer"),
                tuple(
                    LabeledValue(universe.people[p].name, "written_by")
                    for p in film.writer_ids
                ),
            )
        )
    if "all_genres" not in hazards:
        rows.append(
            InfoRow(
                style.label("genre"),
                tuple(LabeledValue(g, "genre") for g in film.genres),
            )
        )
    rows.append(
        InfoRow(
            style.label("release_date"),
            (
                LabeledValue(
                    style.render_date(film.release_date),
                    "release_date",
                    canonical=film.release_date,
                ),
            ),
        )
    )
    rows.append(
        InfoRow(style.label("year"), (LabeledValue(film.release_year, "release_year"),))
    )
    if film.composer_ids and ("music_focus" in hazards or page_rng.random() < 0.4):
        rows.append(
            InfoRow(
                style.label("composer"),
                tuple(
                    LabeledValue(universe.people[p].name, "music_by")
                    for p in film.composer_ids
                ),
            )
        )
    if "template_variety" in hazards:
        page_rng.shuffle(rows)
    style.info_section(builder, rows)

    if "all_genres" in hazards:
        # Every genre in the vocabulary, on every page; the page asserts
        # nothing about this film's genres specifically.
        style.list_section(
            builder,
            style.label("genre"),
            [LabeledValue(genre, None) for genre in GENRES],
            "genres",
        )

    if "role_conflation" in hazards:
        # All involved people in one undifferentiated list: the site never
        # says who directed, wrote, or acted.
        involved = list(
            dict.fromkeys(
                list(film.director_ids) + list(film.writer_ids) + list(film.cast_ids[:6])
            )
        )
        style.list_section(
            builder,
            style.label("filmography"),
            [LabeledValue(universe.people[p].name, None) for p in involved],
            "people",
        )
    else:
        cast_shown = film.cast_ids[: page_rng.randint(3, min(10, len(film.cast_ids)))]
        style.list_section(
            builder,
            style.label("cast"),
            [LabeledValue(universe.people[p].name, "has_cast_member") for p in cast_shown],
            "cast",
        )

    if "date_lists" in hazards:
        # Daily box-office chart: dozens of date fields, including the
        # release date itself, none of which assert release_date.
        builder.open("table", class_="daily-chart", id="boxoffice")
        year, month, _ = film.release_date.split("-")
        for day in range(1, 1 + page_rng.randint(8, 14)):
            builder.open("tr", class_="chart-row")
            builder.leaf("td", f"{int(day):02d}/{month}/{year}", class_="chart-date")
            builder.leaf("td", f"${page_rng.randint(10, 900)},{page_rng.randint(100, 999)}", class_="chart-gross")
            builder.close("tr")
        builder.close("table")

    style.close_main(builder, opened)
    style.end_page(builder)
    return GeneratedPage(
        page_id=f"{site.name}:{film_id}",
        html=builder.html(),
        emissions=builder.emissions,
        topic_entity_id=film_id,
        topic_name=film.title,
    )


def _chart_page(
    universe: MovieUniverse,
    site: CCSiteConfig,
    style: SiteStyle,
    page_index: int,
    page_rng: random.Random,
    mimic_detail: bool,
) -> GeneratedPage:
    """A non-detail page: a ranked chart/list of film titles.

    With ``mimic_detail`` the page reuses the detail template's container
    classes so that template clustering fails to separate it (the
    sodasandpopcorn failure mode).
    """
    builder = PageBuilder()
    style.start_page(builder, page_rng)
    opened = style.open_main(builder)
    title = f"Top films — week {page_index + 1}"
    if mimic_detail:
        style.title_block(builder, title, None)
    else:
        builder.leaf("h2", title, class_="chart-title")
    container_class = f"{style.cls}-info" if mimic_detail else "chart-list"
    builder.open("div", class_=container_class)
    film_ids = page_rng.sample(list(universe.films), min(12, len(universe.films)))
    for rank, film_id in enumerate(film_ids, start=1):
        builder.open("div", class_="info-row" if mimic_detail else "chart-row")
        builder.leaf("span", str(rank), class_="info-label" if mimic_detail else "rank")
        builder.leaf(
            "span", universe.films[film_id].title,
            class_="info-value" if mimic_detail else "chart-film",
        )
        builder.close("div")
    builder.close("div")
    style.close_main(builder, opened)
    style.end_page(builder)
    return GeneratedPage(
        page_id=f"{site.name}:chart:{page_index}",
        html=builder.html(),
        emissions=builder.emissions,
        topic_entity_id=None,
        topic_name=None,
    )


def generate_commoncrawl(
    seed: int = 0,
    sites: tuple[CCSiteConfig, ...] = DEFAULT_SITES,
    universe: MovieUniverse | None = None,
) -> CommonCrawlDataset:
    """Generate the long-tail corpus and its seed KB.

    The KB covers a *core* of the universe; each site's films are a
    per-site mix of core and long-tail titles at the configured overlap.
    """
    if universe is None:
        total_pages = sum(c.n_pages for c in sites)
        universe = MovieUniverse(
            seed=seed,
            n_people=500,
            n_films=max(400, int(total_pages * 0.9)),
            n_series=14,
            episodes_per_series=8,
        )
    rng = random.Random(seed + 4242)

    film_ids = list(universe.films)
    rng.shuffle(film_ids)
    core_count = int(len(film_ids) * 0.55)
    core_films = film_ids[:core_count]
    tail_films = film_ids[core_count:]

    kb_entities = set(core_films) | set(universe.people) | set(universe.series) | set(
        universe.episodes
    )
    kb = kb_from_universe(
        universe.entities(),
        universe.facts(),
        MOVIE_ONTOLOGY,
        coverage={"mpaa_rating": 0.0, "producer_of": 0.6, "acted_in": 0.8},
        entity_filter=kb_entities,
        seed=seed,
    )

    generated_sites: list[CCSite] = []
    core_cursor = 0
    tail_cursor = 0
    for config in sites:
        style = SiteStyle.generate(config.name, seed, language=config.language)
        site = CCSite(config, style)
        n_core = int(round(config.n_pages * config.kb_overlap))
        n_tail = config.n_pages - n_core
        chosen: list[str] = []
        for _ in range(n_core):
            chosen.append(core_films[core_cursor % len(core_films)])
            core_cursor += 1
        for _ in range(n_tail):
            chosen.append(tail_films[tail_cursor % len(tail_films)])
            tail_cursor += 1
        site_rng = random.Random(f"{config.name}:{seed}")
        site_rng.shuffle(chosen)

        if "episode_confusion" in config.hazards:
            # Some long-tail films on this site share titles with KB TV
            # episodes ("Pilot"), so topic identification may resolve the
            # page to the wrong entity.
            episode_titles = [e.title for e in universe.episodes.values()][:4]
            tail_set = set(tail_films)
            victims = [fid for fid in chosen if fid in tail_set][: len(episode_titles)]
            for title, film_id in zip(episode_titles, victims):
                universe.films[film_id].title = title  # shared title, distinct entity

        for film_id in chosen:
            page_rng = random.Random(f"{config.name}:{film_id}:{seed}")
            site.pages.append(_detail_page(universe, film_id, config, style, page_rng))
        mimic = "mixed_templates" in config.hazards
        for index in range(config.n_noise_pages):
            page_rng = random.Random(f"{config.name}:chart{index}:{seed}")
            site.pages.append(
                _chart_page(universe, config, style, index, page_rng, mimic)
            )
        site_rng.shuffle(site.pages)
        generated_sites.append(site)
    return CommonCrawlDataset(universe, generated_sites, kb)
