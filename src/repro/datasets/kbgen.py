"""Seed-KB construction from universes or from a site's ground truth.

Two regimes from the paper's experiments:

* **Universe-derived KB** (Movie vertical, IMDb, CommonCrawl): the KB is a
  biased subset of the underlying database.  ``coverage`` controls the
  per-predicate fraction of facts included — the paper's IMDb KB held only
  ~14% of on-page ``has cast member`` facts but ~58% of ``genre`` facts
  (Section 5.4, footnote 10) — and ``entity_filter`` drops long-tail
  entities entirely.

* **Ground-truth-derived KB** (Book/NBA/University verticals): the paper
  built the seed KB "from the ground truth for the first website in
  alphabetical order".  We do the same from a generated site's page
  truths, storing objects as literals.
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from repro.datasets.entities import Fact
from repro.datasets.render import GeneratedPage
from repro.kb.ontology import Ontology
from repro.kb.store import KnowledgeBase
from repro.kb.triple import Entity, Value

__all__ = ["kb_from_universe", "kb_from_ground_truth"]


def kb_from_universe(
    entities: Iterable[Entity],
    facts: Iterable[Fact],
    ontology: Ontology,
    coverage: dict[str, float] | float | None = None,
    entity_filter: set[str] | None = None,
    seed: int = 0,
) -> KnowledgeBase:
    """Build a (possibly biased) KB from universe entities and facts.

    Args:
        coverage: per-predicate inclusion fraction (or one fraction for
            all predicates).  ``None`` means full coverage.
        entity_filter: when given, only these entity ids exist in the KB;
            facts mentioning excluded entities (as subject or object) are
            dropped.
        seed: sampling seed for coverage subsetting.
    """
    rng = random.Random(seed)
    kb = KnowledgeBase(ontology)
    for entity in entities:
        if entity_filter is not None and entity.id not in entity_filter:
            continue
        kb.add_entity(entity)

    def fraction_for(predicate: str) -> float:
        if coverage is None:
            return 1.0
        if isinstance(coverage, dict):
            return coverage.get(predicate, 1.0)
        return float(coverage)

    for fact in facts:
        if fact.predicate not in ontology:
            continue
        if fact.subject not in kb.entities:
            continue
        if fact.value.is_entity and fact.value.value not in kb.entities:
            continue
        fraction = fraction_for(fact.predicate)
        if fraction < 1.0 and rng.random() >= fraction:
            continue
        kb.add_fact(fact.subject, fact.predicate, fact.value)
    return kb


def kb_from_ground_truth(
    pages: Iterable[GeneratedPage],
    ontology: Ontology,
    entity_type: str,
    source_name: str,
) -> KnowledgeBase:
    """Build a seed KB from the ground truth of one website's detail pages.

    Each detail page contributes one subject entity (named by its topic)
    and literal facts for every ontology predicate the page asserts.
    """
    kb = KnowledgeBase(ontology)
    for index, page in enumerate(pages):
        if page.topic_entity_id is None or page.topic_name is None:
            continue
        subject_id = f"{source_name}:{index}"
        kb.add_entity(Entity(subject_id, page.topic_name, entity_type))
        for predicate, values in page.truth.objects.items():
            if predicate not in ontology:
                continue
            for value in values:
                kb.add_fact(subject_id, predicate, Value.literal(value))
    return kb
