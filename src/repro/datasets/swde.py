"""Synthetic SWDE: the Structured Web Data Extraction benchmark analogue.

The real SWDE dataset [19] packages 8 verticals × 10 sites × 200–2000
pages with ground truth for 4–5 predicates each.  The paper evaluates on
the Movie, Book, NBA Player, and University verticals (Table 1).  This
module generates the same shape at laptop scale:

* 10 sites per vertical, each with its own :class:`SiteStyle` template;
* per-site entity samples drawn from a shared universe with engineered
  overlap — near-total for NBA (97% of pages annotatable in the paper),
  moderate for Movie/University, and deliberately starved for Book
  (Figure 4: four sites overlap the seed KB on ≤ 5 pages);
* per-page noise: dropped fields, multi-valued lists, ads, and the
  paper's University hazard (a search box offering "Public"/"Private" on
  every page of one site).

Seed KBs follow the paper: the Movie vertical uses a universe-derived KB
(the IMDb-dump analogue); the other three verticals build their KB from
the ground truth of the first site.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from repro.datasets.entities import (
    BOOK_ONTOLOGY,
    MOVIE_ONTOLOGY,
    NBA_ONTOLOGY,
    UNIVERSITY_ONTOLOGY,
    BookUniverse,
    MovieUniverse,
    NbaUniverse,
    UniversityUniverse,
)
from repro.datasets.kbgen import kb_from_ground_truth, kb_from_universe
from repro.datasets.render import GeneratedPage, PageBuilder
from repro.datasets.styles import InfoRow, LabeledValue, SiteStyle
from repro.kb.ontology import Ontology
from repro.kb.store import KnowledgeBase

__all__ = ["Site", "SWDEDataset", "generate_swde", "seed_kb_for", "VERTICALS",
           "VERTICAL_PREDICATES"]

VERTICALS = ("movie", "book", "nbaplayer", "university")

#: The predicates scored per vertical (Table 1 / Table 4 of the paper).
VERTICAL_PREDICATES: dict[str, list[str]] = {
    "movie": ["name", "directed_by", "genre", "mpaa_rating"],
    "book": ["name", "author", "isbn13", "publisher", "publication_date"],
    "nbaplayer": ["name", "team", "height", "weight"],
    "university": ["name", "phone", "website", "type"],
}

_SITE_NAMES: dict[str, list[str]] = {
    # First name in each list is the seed-KB site (paper: "first website in
    # alphabetical order").
    "movie": [
        "allmovie", "cinemaguide", "filmfan", "flickindex", "moviebase",
        "movievault", "reelpages", "screenhub", "showarchive", "silverscreen",
    ],
    "book": [
        "abebooks", "bookdepot", "bookfinder", "chapterhouse", "inkwell",
        "libraria", "novelnook", "pageworks", "readershelf", "tomecatalog",
    ],
    "nbaplayer": [
        "espn", "courtstats", "dunkdata", "hoopsref", "jumpball",
        "laneline", "netratings", "pickroll", "reboundhq", "swishbook",
    ],
    "university": [
        "collegeboard", "academyfinder", "campusdex", "degreehub", "eduguide",
        "gradsource", "learnatlas", "scholarmap", "unirank", "varsitylist",
    ],
}

_LABEL_SYNONYMS: dict[str, tuple[str, ...]] = {
    "director": ("Director", "Directed by", "Direction"),
    "genre": ("Genre", "Genres", "Category"),
    "rating": ("MPAA Rating", "Rated", "Rating"),
    "year": ("Year", "Release Year"),
    "date": ("Release Date", "Released", "In Theaters"),
    "author": ("Author", "Written by", "By"),
    "isbn": ("ISBN-13", "ISBN"),
    "publisher": ("Publisher", "Published by", "Imprint"),
    "pubdate": ("Publication Date", "Published", "Date Published"),
    "team": ("Team", "Current Team", "Club"),
    "height": ("Height", "Ht"),
    "weight": ("Weight", "Wt"),
    "phone": ("Phone", "Telephone", "Call"),
    "website": ("Website", "Web", "Homepage"),
    "type": ("Type", "Institution Type", "Control"),
    "cast": ("Cast", "Starring", "Top Cast"),
}


@dataclass
class Site:
    """One synthetic website."""

    name: str
    vertical: str
    style: SiteStyle
    pages: list[GeneratedPage] = field(default_factory=list)

    def documents(self):
        return [page.document for page in self.pages]


@dataclass
class SWDEDataset:
    """One vertical of the synthetic SWDE benchmark."""

    vertical: str
    sites: list[Site]
    universe: object
    ontology: Ontology
    #: index of the site whose ground truth seeds the KB (non-movie verticals)
    kb_site_index: int = 0


def _site_labels(site_rng: random.Random) -> dict[str, str]:
    """Per-site label choices with the site's suffix applied later."""
    return {slot: site_rng.choice(options) for slot, options in _LABEL_SYNONYMS.items()}


def _label(labels: dict[str, str], style: SiteStyle, slot: str) -> str:
    return labels[slot] + style.label_suffix


# --------------------------------------------------------------------------
# Per-vertical page renderers
# --------------------------------------------------------------------------


def _movie_page(
    universe: MovieUniverse,
    film_id: str,
    style: SiteStyle,
    labels: dict[str, str],
    page_rng: random.Random,
    with_cast: bool,
    with_recs: bool,
) -> GeneratedPage:
    film = universe.films[film_id]
    builder = PageBuilder()
    style.start_page(builder, page_rng)
    opened = style.open_main(builder)
    style.title_block(builder, film.title, "name")

    rows = [
        InfoRow(
            _label(labels, style, "director"),
            tuple(
                LabeledValue(universe.people[pid].name, "directed_by")
                for pid in film.director_ids
            ),
        ),
        InfoRow(
            _label(labels, style, "genre"),
            tuple(LabeledValue(genre, "genre") for genre in film.genres),
        ),
    ]
    if page_rng.random() > 0.08:  # occasional missing field
        rows.append(
            InfoRow(
                _label(labels, style, "rating"),
                (LabeledValue(film.mpaa_rating, "mpaa_rating"),),
            )
        )
    if page_rng.random() > 0.1:
        rows.append(
            InfoRow(
                _label(labels, style, "date"),
                (
                    LabeledValue(
                        style.render_date(film.release_date),
                        "release_date",
                        canonical=film.release_date,
                    ),
                ),
            )
        )
    style.info_section(builder, rows)

    if with_cast:
        cast_shown = film.cast_ids[: page_rng.randint(4, len(film.cast_ids))]
        style.list_section(
            builder,
            _label(labels, style, "cast"),
            [
                LabeledValue(universe.people[pid].name, "has_cast_member")
                for pid in cast_shown
            ],
            "cast",
        )

    if with_recs:
        other_ids = [f for f in universe.films if f != film_id]
        picks = page_rng.sample(other_ids, min(2, len(other_ids)))
        groups = []
        for other_id in picks:
            other = universe.films[other_id]
            items = [LabeledValue(genre, None) for genre in other.genres[:2]]
            groups.append((other.title, items))
        style.sidebar_block(builder, style.label("related"), groups)

    style.close_main(builder, opened)
    style.end_page(builder)
    return GeneratedPage(
        page_id=f"{style.site_name}:{film_id}",
        html=builder.html(),
        emissions=builder.emissions,
        topic_entity_id=film_id,
        topic_name=film.title,
    )


def _book_page(
    universe: BookUniverse,
    book_id: str,
    style: SiteStyle,
    labels: dict[str, str],
    page_rng: random.Random,
) -> GeneratedPage:
    book = universe.books[book_id]
    builder = PageBuilder()
    style.start_page(builder, page_rng)
    opened = style.open_main(builder)
    style.title_block(builder, book.title, "name")
    rows = [
        InfoRow(
            _label(labels, style, "author"),
            tuple(LabeledValue(author, "author") for author in book.authors),
        ),
        InfoRow(
            _label(labels, style, "isbn"),
            (LabeledValue(book.isbn13, "isbn13"),),
        ),
    ]
    if page_rng.random() > 0.08:
        rows.append(
            InfoRow(
                _label(labels, style, "publisher"),
                (LabeledValue(book.publisher, "publisher"),),
            )
        )
    if page_rng.random() > 0.12:
        rows.append(
            InfoRow(
                _label(labels, style, "pubdate"),
                (
                    LabeledValue(
                        style.render_date(book.publication_date),
                        "publication_date",
                        canonical=book.publication_date,
                    ),
                ),
            )
        )
    style.info_section(builder, rows)
    style.close_main(builder, opened)
    style.end_page(builder)
    return GeneratedPage(
        page_id=f"{style.site_name}:{book_id}",
        html=builder.html(),
        emissions=builder.emissions,
        topic_entity_id=book_id,
        topic_name=book.title,
    )


def _nba_page(
    universe: NbaUniverse,
    player_id: str,
    style: SiteStyle,
    labels: dict[str, str],
    page_rng: random.Random,
) -> GeneratedPage:
    player = universe.players[player_id]
    builder = PageBuilder()
    style.start_page(builder, page_rng)
    opened = style.open_main(builder)
    style.title_block(builder, player.name, "name")
    rows = [
        InfoRow(
            _label(labels, style, "team"),
            (LabeledValue(player.team, "team"),),
        ),
        InfoRow(
            _label(labels, style, "height"),
            (LabeledValue(player.height, "height"),),
        ),
        InfoRow(
            _label(labels, style, "weight"),
            (LabeledValue(f"{player.weight} lbs", "weight", canonical=player.weight),),
        ),
    ]
    style.info_section(builder, rows)
    style.close_main(builder, opened)
    style.end_page(builder)
    return GeneratedPage(
        page_id=f"{style.site_name}:{player_id}",
        html=builder.html(),
        emissions=builder.emissions,
        topic_entity_id=player_id,
        topic_name=player.name,
    )


def _university_page(
    universe: UniversityUniverse,
    uni_id: str,
    style: SiteStyle,
    labels: dict[str, str],
    page_rng: random.Random,
    with_type_searchbox: bool,
) -> GeneratedPage:
    uni = universe.universities[uni_id]
    builder = PageBuilder()
    style.start_page(builder, page_rng)
    opened = style.open_main(builder)
    style.title_block(builder, uni.name, "name")
    rows = [
        InfoRow(
            _label(labels, style, "phone"),
            (LabeledValue(uni.phone, "phone"),),
        ),
        InfoRow(
            _label(labels, style, "website"),
            (LabeledValue(uni.website, "website"),),
        ),
    ]
    if page_rng.random() > 0.06:
        rows.append(
            InfoRow(
                _label(labels, style, "type"),
                (LabeledValue(uni.type, "type"),),
            )
        )
    style.info_section(builder, rows)
    if with_type_searchbox:
        # The paper's annotation-error anecdote (Section 5.3): one site
        # lists both potential University.Type values in a search box on
        # every page.
        builder.open("div", class_="search-filter", id="refine")
        builder.leaf("span", "Filter by type", class_="filter-label")
        builder.leaf("span", "Public", class_="filter-option")
        builder.leaf("span", "Private", class_="filter-option")
        builder.close("div")
    style.close_main(builder, opened)
    style.end_page(builder)
    return GeneratedPage(
        page_id=f"{style.site_name}:{uni_id}",
        html=builder.html(),
        emissions=builder.emissions,
        topic_entity_id=uni_id,
        topic_name=uni.name,
    )


# --------------------------------------------------------------------------
# Per-site entity sampling with engineered overlap
# --------------------------------------------------------------------------


def _sample_site_entities(
    vertical: str,
    all_ids: list[str],
    n_sites: int,
    pages_per_site: int,
    rng: random.Random,
) -> list[list[str]]:
    """Entity id lists per site, with vertical-specific overlap patterns."""
    if vertical == "book":
        # Figure 4 regime: site 0 seeds the KB; later sites overlap it on a
        # sharply decreasing number of pages.
        overlaps = [pages_per_site]
        base = [pages_per_site // 2, pages_per_site * 3 // 8, pages_per_site // 4,
                pages_per_site // 6, 7, 5, 4, 3, 2]
        overlaps.extend(base[: n_sites - 1])
        site0 = all_ids[:pages_per_site]
        remaining = all_ids[pages_per_site:]
        cursor = 0
        samples = [list(site0)]
        for site_index in range(1, n_sites):
            overlap = min(overlaps[site_index], pages_per_site)
            shared = rng.sample(site0, overlap)
            fresh_count = pages_per_site - overlap
            fresh = remaining[cursor : cursor + fresh_count]
            cursor += fresh_count
            ids = shared + fresh
            rng.shuffle(ids)
            samples.append(ids)
        return samples

    if vertical == "nbaplayer":
        pool = all_ids[: int(pages_per_site * 1.15)]
    elif vertical == "university":
        pool = all_ids[: int(pages_per_site * 1.4)]
    else:  # movie
        pool = all_ids[: int(pages_per_site * 2.0)]
    samples = []
    for _ in range(n_sites):
        ids = rng.sample(pool, min(pages_per_site, len(pool)))
        samples.append(ids)
    return samples


# --------------------------------------------------------------------------
# Dataset assembly
# --------------------------------------------------------------------------


def generate_swde(
    vertical: str,
    n_sites: int = 10,
    pages_per_site: int = 48,
    seed: int = 0,
) -> SWDEDataset:
    """Generate one vertical of the synthetic SWDE benchmark."""
    if vertical not in VERTICALS:
        raise ValueError(f"unknown vertical {vertical!r}; expected one of {VERTICALS}")
    # zlib.crc32, not hash(): str hashes are randomized per process, which
    # made "the same corpus" differ between a train run and a serve run.
    rng = random.Random(seed * 31 + zlib.crc32(vertical.encode()) % 1000)

    if vertical == "movie":
        universe = MovieUniverse(
            seed=seed, n_people=300, n_films=max(160, pages_per_site * 2),
            n_series=6, episodes_per_series=4,
        )
        all_ids = list(universe.films)
        ontology = MOVIE_ONTOLOGY
    elif vertical == "book":
        universe = BookUniverse(seed=seed, n_books=max(450, pages_per_site * 10))
        all_ids = list(universe.books)
        ontology = BOOK_ONTOLOGY
    elif vertical == "nbaplayer":
        universe = NbaUniverse(seed=seed, n_players=max(120, int(pages_per_site * 1.2)))
        all_ids = list(universe.players)
        ontology = NBA_ONTOLOGY
    else:
        universe = UniversityUniverse(
            seed=seed, n_universities=max(140, int(pages_per_site * 1.5))
        )
        all_ids = list(universe.universities)
        ontology = UNIVERSITY_ONTOLOGY

    samples = _sample_site_entities(vertical, all_ids, n_sites, pages_per_site, rng)
    site_names = _SITE_NAMES[vertical][:n_sites]

    sites: list[Site] = []
    for site_index, site_name in enumerate(site_names):
        style = SiteStyle.generate(site_name, seed)
        site_rng = random.Random(f"{site_name}:{seed}:content")
        labels = _site_labels(site_rng)
        with_cast = site_rng.random() < 0.5
        with_recs = vertical == "movie" and site_rng.random() < 0.4
        type_searchbox = vertical == "university" and site_index == n_sites - 1
        site = Site(site_name, vertical, style)
        for entity_id in samples[site_index]:
            page_rng = random.Random(f"{site_name}:{entity_id}:{seed}")
            if vertical == "movie":
                page = _movie_page(
                    universe, entity_id, style, labels, page_rng, with_cast, with_recs
                )
            elif vertical == "book":
                page = _book_page(universe, entity_id, style, labels, page_rng)
            elif vertical == "nbaplayer":
                page = _nba_page(universe, entity_id, style, labels, page_rng)
            else:
                page = _university_page(
                    universe, entity_id, style, labels, page_rng, type_searchbox
                )
            site.pages.append(page)
        sites.append(site)
    return SWDEDataset(vertical, sites, universe, ontology)


def seed_kb_for(dataset: SWDEDataset, seed: int = 0) -> KnowledgeBase:
    """The vertical's seed KB, following the paper's construction.

    Movie: universe-derived (IMDb-dump analogue) covering 80% of films.
    Others: ground truth of the first site.
    """
    if dataset.vertical == "movie":
        universe: MovieUniverse = dataset.universe  # type: ignore[assignment]
        film_ids = list(universe.films)
        rng = random.Random(seed + 77)
        covered = set(rng.sample(film_ids, int(len(film_ids) * 0.8)))
        covered |= set(universe.people)  # all people known
        covered |= set(universe.series) | set(universe.episodes)
        # The KB intentionally lacks MPAA ratings (Section 5.3: "we did not
        # extract MPAA Rating because our KB does not contain any triple
        # with this predicate").
        coverage = {"mpaa_rating": 0.0}
        return kb_from_universe(
            universe.entities(),
            universe.facts(),
            MOVIE_ONTOLOGY,
            coverage=coverage,
            entity_filter=covered,
            seed=seed,
        )
    kb_site = dataset.sites[dataset.kb_site_index]
    return kb_from_ground_truth(
        kb_site.pages,
        dataset.ontology,
        entity_type=dataset.vertical,
        source_name=kb_site.name,
    )
