"""Synthetic IMDb: the complex multi-relation testbed of Section 5.4.

Two page populations crawled in the paper — 8,245 film/TV pages and 1,600
person pages — are reproduced with every annotation hazard the paper
discusses planted deliberately:

* film pages: long cast lists with character names, duplicated genres in a
  recommendation rail, writer/director overlap, a prose storyline;
* TV-episode pages (a second template among the film/TV pages): series
  name, season/episode numbers, many episodes titled "Pilot";
* person pages: "Known For" blocks (no predicate!), role-sectioned
  filmographies, "Projects in Development" (films the person produces or
  writes — KB facts — in a section that asserts nothing), aliases that
  also appear as character names, and a people-recommendation rail.

The seed KB is universe-derived with the paper's bias reproduced
(footnote 10): cast facts only for *principal* cast members, and reduced
coverage for producer/writer relations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.datasets.entities import Fact, MOVIE_ONTOLOGY, MovieUniverse
from repro.datasets.kbgen import kb_from_universe
from repro.datasets.render import GeneratedPage, PageBuilder
from repro.datasets.styles import InfoRow, LabeledValue, SiteStyle
from repro.kb.store import KnowledgeBase

__all__ = ["IMDbDataset", "generate_imdb", "FILM_PREDICATES", "PERSON_PREDICATES"]

#: Predicates reported for each domain in Tables 5 and 6.
FILM_PREDICATES = [
    "name", "has_cast_member", "directed_by", "written_by", "release_date",
    "release_year", "genre", "episode_number", "season_number", "series",
]
PERSON_PREDICATES = [
    "name", "alias", "place_of_birth", "acted_in", "director_of",
    "writer_of", "producer_of",
]


@dataclass
class IMDbDataset:
    """Synthetic IMDb: film/TV pages, person pages, and the biased KB."""

    universe: MovieUniverse
    film_pages: list[GeneratedPage] = field(default_factory=list)
    person_pages: list[GeneratedPage] = field(default_factory=list)
    kb: KnowledgeBase | None = None


def _film_page(
    universe: MovieUniverse, film_id: str, style: SiteStyle, page_rng: random.Random
) -> GeneratedPage:
    film = universe.films[film_id]
    builder = PageBuilder()
    style.start_page(builder, page_rng)
    opened = style.open_main(builder)
    style.title_block(builder, film.title, "name")

    rows = [
        InfoRow(
            style.label("genre"),
            tuple(LabeledValue(g, "genre") for g in film.genres),
        ),
        InfoRow(
            style.label("release_date"),
            (
                LabeledValue(
                    style.render_date(film.release_date),
                    "release_date",
                    canonical=film.release_date,
                ),
            ),
        ),
        InfoRow(
            style.label("year"),
            (LabeledValue(film.release_year, "release_year"),),
        ),
    ]
    style.info_section(builder, rows)

    style.list_section(
        builder,
        style.label("director"),
        [LabeledValue(universe.people[p].name, "directed_by") for p in film.director_ids],
        "directors",
    )
    style.list_section(
        builder,
        style.label("writer"),
        [LabeledValue(universe.people[p].name, "written_by") for p in film.writer_ids],
        "writers",
    )

    # Long cast list: actor name (truth) alongside character name (no truth).
    builder.open("div", class_="cast-section")
    builder.leaf("h3", style.label("cast"), class_="section-head")
    builder.open("table", class_="cast-table")
    for pid in film.cast_ids:
        person = universe.people[pid]
        builder.open("tr", class_="cast-row")
        builder.open("td", class_="cast-actor")
        builder.leaf("a", person.name, predicate="has_cast_member", href="#")
        builder.close("td")
        character = f"{page_rng.choice(('Dr.', 'Officer', 'Agent', 'Captain', 'Ms.', 'Mr.'))} {person.name.split()[-1]}"
        builder.leaf("td", character, class_="cast-char")
        builder.close("tr")
    builder.close("table")
    builder.close("div")

    # Recommendation rail: related films' titles and genres — the genre
    # duplication hazard of Example 3.2 (no truth).
    other_ids = [f for f in universe.films if f != film_id]
    picks = page_rng.sample(other_ids, min(3, len(other_ids)))
    groups = []
    for other_id in picks:
        other = universe.films[other_id]
        items = [LabeledValue(g, None) for g in other.genres]
        items.extend(
            LabeledValue(universe.people[p].name, None) for p in other.cast_ids[:2]
        )
        groups.append((other.title, items))
    style.sidebar_block(builder, style.label("related"), groups)

    # Prose storyline mentioning entities inside flowing text.
    lead = universe.people[film.cast_ids[0]].name if film.cast_ids else "a stranger"
    builder.open("div", class_="storyline")
    builder.leaf("h3", "Storyline", class_="section-head")
    builder.leaf(
        "p",
        f"In this {film.genres[0].lower()} feature, {lead} navigates a series of "
        f"events that change everything. Released in {film.release_year}, the film "
        f"remains a touchstone for audiences who discovered it on late-night "
        f"television and never forgot its closing scene.",
    )
    builder.close("div")

    style.close_main(builder, opened)
    style.end_page(builder)
    return GeneratedPage(
        page_id=f"imdb:{film_id}",
        html=builder.html(),
        emissions=builder.emissions,
        topic_entity_id=film_id,
        topic_name=film.title,
    )


def _episode_page(
    universe: MovieUniverse, episode_id: str, style: SiteStyle, page_rng: random.Random
) -> GeneratedPage:
    episode = universe.episodes[episode_id]
    series = universe.series[episode.series_id]
    builder = PageBuilder()
    style.start_page(builder, page_rng)
    opened = style.open_main(builder)

    builder.open("div", class_="ep-breadcrumb")
    builder.leaf("a", series.title, predicate="series", href="#", class_="series-link")
    builder.leaf("span", style.label("season"), class_="season-label")
    builder.leaf(
        "span", str(episode.season), predicate="season_number", class_="season-no"
    )
    builder.leaf("span", style.label("episode"), class_="episode-label")
    builder.leaf(
        "span", str(episode.episode), predicate="episode_number", class_="episode-no"
    )
    builder.close("div")

    style.title_block(builder, episode.title, "name")
    rows = [
        InfoRow(
            style.label("release_date"),
            (
                LabeledValue(
                    style.render_date(episode.release_date),
                    "release_date",
                    canonical=episode.release_date,
                ),
            ),
        ),
    ]
    style.info_section(builder, rows)
    style.list_section(
        builder,
        style.label("director"),
        [LabeledValue(universe.people[p].name, "directed_by") for p in episode.director_ids],
        "directors",
    )
    style.list_section(
        builder,
        style.label("cast"),
        [LabeledValue(universe.people[p].name, "has_cast_member") for p in episode.cast_ids],
        "cast",
    )
    style.close_main(builder, opened)
    style.end_page(builder)
    return GeneratedPage(
        page_id=f"imdb:{episode_id}",
        html=builder.html(),
        emissions=builder.emissions,
        topic_entity_id=episode_id,
        topic_name=episode.title,
    )


def _person_page(
    universe: MovieUniverse,
    person_id: str,
    style: SiteStyle,
    page_rng: random.Random,
    roles: dict[str, list[str]],
) -> GeneratedPage:
    person = universe.people[person_id]
    builder = PageBuilder()
    style.start_page(builder, page_rng)
    opened = style.open_main(builder)
    style.title_block(builder, person.name, "name")

    rows = [
        InfoRow(
            style.label("born"),
            (
                LabeledValue(
                    style.render_date(person.birth_date),
                    "birth_date",
                    canonical=person.birth_date,
                ),
            ),
        ),
        InfoRow(
            style.label("birthplace"),
            (LabeledValue(person.birthplace, "place_of_birth"),),
        ),
    ]
    if person.aliases:
        rows.append(
            InfoRow(
                style.label("alias"),
                tuple(LabeledValue(a, "alias") for a in person.aliases),
            )
        )
    style.info_section(builder, rows)

    # "Known For": the person's most famous work — no predicate (hazard).
    known_for = (roles.get("acted_in", []) + roles.get("director_of", []))[:4]
    if known_for:
        builder.open("div", class_="known-for", id="knownfor")
        builder.leaf("h3", style.label("known_for"), class_="section-head")
        builder.open("div", class_="kf-items")
        for film_id in known_for:
            builder.leaf("span", universe.films[film_id].title, class_="kf-title")
        builder.close("div")
        builder.close("div")

    # Role-sectioned filmography.  Character names sometimes reuse the
    # person's alias — the alias hazard that breaks CERES-Topic (Table 5).
    role_sections = (
        ("acted_in", "Actor", "actor"),
        ("director_of", "Director", "director"),
        ("writer_of", "Writer", "writer"),
        ("producer_of", "Producer", "producer"),
    )
    builder.open("div", class_="filmography", id="filmography")
    builder.leaf("h3", style.label("filmography"), class_="section-head")
    for predicate, heading, css in role_sections:
        film_ids = roles.get(predicate, [])
        if not film_ids:
            continue
        builder.open("div", class_=f"filmo-{css}")
        builder.leaf("h4", heading, class_="filmo-head")
        builder.open("ul", class_=f"filmo-list-{css}")
        for film_id in film_ids:
            film = universe.films[film_id]
            builder.open("li", class_="filmo-row")
            builder.leaf("a", film.title, predicate=predicate, href="#")
            builder.leaf("span", film.release_year, class_="filmo-year")
            if predicate == "acted_in":
                if person.aliases and page_rng.random() < 0.5:
                    character = person.aliases[0]
                else:
                    character = f"{page_rng.choice(('Dr.', 'Agent', 'Captain'))} {person.name.split()[-1]}"
                builder.leaf("span", f"as {character}", class_="filmo-char")
            builder.close("li")
        builder.close("ul")
        builder.close("div")
    builder.close("div")

    # "Projects in Development": includes the person's produced/written
    # films (KB facts) in a section that asserts nothing (hazard for
    # producer_of / writer_of, Section 5.4).
    development = (roles.get("producer_of", []) + roles.get("writer_of", []))[:2]
    if development and page_rng.random() < 0.45:
        builder.open("div", class_="in-development", id="development")
        builder.leaf("h3", "Projects in Development", class_="section-head")
        builder.open("ul", class_="dev-list")
        for film_id in development:
            builder.open("li", class_="dev-item")
            builder.leaf("span", universe.films[film_id].title, class_="dev-title")
            builder.close("li")
        builder.close("ul")
        builder.close("div")

    # People-recommendation rail (no truth).
    other_people = [p for p in universe.people if p != person_id]
    picks = page_rng.sample(other_people, min(4, len(other_people)))
    style.sidebar_block(
        builder,
        style.label("related"),
        [("You may also like", [LabeledValue(universe.people[p].name, None) for p in picks])],
    )

    style.close_main(builder, opened)
    style.end_page(builder)
    return GeneratedPage(
        page_id=f"imdb:{person_id}",
        html=builder.html(),
        emissions=builder.emissions,
        topic_entity_id=person_id,
        topic_name=person.name,
    )


def _person_roles(universe: MovieUniverse) -> dict[str, dict[str, list[str]]]:
    """person id -> predicate -> film ids, from the universe's film records."""
    roles: dict[str, dict[str, list[str]]] = {pid: {} for pid in universe.people}
    for film in universe.films.values():
        for pid in film.cast_ids:
            roles[pid].setdefault("acted_in", []).append(film.id)
        for pid in film.director_ids:
            roles[pid].setdefault("director_of", []).append(film.id)
        for pid in film.writer_ids:
            roles[pid].setdefault("writer_of", []).append(film.id)
        for pid in film.producer_ids:
            roles[pid].setdefault("producer_of", []).append(film.id)
    return roles


def _biased_facts(universe: MovieUniverse) -> list[Fact]:
    """Universe facts with the paper's KB bias (footnote 10) applied:
    cast facts only for principal cast members."""
    principal: dict[str, frozenset[str]] = {
        film.id: frozenset(film.principal_cast_ids) for film in universe.films.values()
    }
    kept: list[Fact] = []
    for fact in universe.facts():
        if fact.predicate == "has_cast_member" and fact.subject in principal:
            if fact.value.value not in principal[fact.subject]:
                continue
        if fact.predicate == "acted_in" and fact.value.value in principal:
            if fact.subject not in principal[fact.value.value]:
                continue
        kept.append(fact)
    return kept


def generate_imdb(
    seed: int = 0,
    n_films: int = 60,
    n_people: int = 50,
    n_episodes: int = 20,
    kb_coverage: dict[str, float] | None = None,
) -> IMDbDataset:
    """Generate the synthetic IMDb testbed.

    Args:
        n_films / n_people / n_episodes: page counts per population (the
            universe is larger; pages cover a subset).
        kb_coverage: per-predicate coverage override for the seed KB; the
            default reproduces the paper's bias — full genre/director
            coverage, reduced producer/writer coverage, principal-only cast.
    """
    universe = MovieUniverse(
        seed=seed,
        n_people=max(160, n_people * 3),
        n_films=max(120, n_films * 2),
        n_series=8,
        episodes_per_series=6,
    )
    style = SiteStyle.generate("imdb", seed)
    roles = _person_roles(universe)

    film_ids = list(universe.films)[:n_films]
    episode_ids = list(universe.episodes)[:n_episodes]
    # Pages cover the most-credited people — a blend of prolific actors,
    # directors, and writers, like the paper's crawl of prominent pages.
    person_ids = sorted(
        universe.people,
        key=lambda pid: -sum(len(films) for films in roles[pid].values()),
    )[:n_people]

    dataset = IMDbDataset(universe)
    for film_id in film_ids:
        page_rng = random.Random(f"imdb:{film_id}:{seed}")
        dataset.film_pages.append(_film_page(universe, film_id, style, page_rng))
    for episode_id in episode_ids:
        page_rng = random.Random(f"imdb:{episode_id}:{seed}")
        dataset.film_pages.append(_episode_page(universe, episode_id, style, page_rng))
    for person_id in person_ids:
        page_rng = random.Random(f"imdb:{person_id}:{seed}")
        dataset.person_pages.append(
            _person_page(universe, person_id, style, page_rng, roles[person_id])
        )

    coverage = {
        "producer_of": 0.5,
        "writer_of": 0.7,
        "written_by": 0.7,
        "mpaa_rating": 0.0,
    }
    if kb_coverage:
        coverage.update(kb_coverage)
    dataset.kb = kb_from_universe(
        universe.entities(),
        _biased_facts(universe),
        MOVIE_ONTOLOGY,
        coverage=coverage,
        seed=seed,
    )
    return dataset
