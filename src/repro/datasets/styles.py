"""Per-site template styles and reusable page blocks.

Each synthetic website gets a :class:`SiteStyle` derived deterministically
from its name: distinct class names, layout family (table / definition
list / div rows), list rendering, chrome (nav, footer, ads), label strings
(optionally in a non-English language), and a site-wide date format.
Pages within a site share the style — that is what makes them a
*template* — while sites differ enough that an extractor trained on one
site is useless on another, as the paper requires.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.names import LANGUAGE_LABELS
from repro.datasets.render import PageBuilder
from repro.kb.literals import date_variants

__all__ = ["SiteStyle", "LabeledValue", "InfoRow"]

_AD_TEXTS = (
    "Try StreamBox free for 30 days",
    "Subscribe to our newsletter",
    "Download our mobile app",
    "Win tickets to the premiere",
    "Shop the collection",
)

_NAV_BANKS = (
    ("Home", "Browse", "About", "Contact"),
    ("Start", "Catalog", "News", "Help"),
    ("Main", "Archive", "Community", "FAQ"),
    ("Index", "Search", "Top Lists", "Login"),
)

_FOOTER_TEXTS = (
    "Terms of Service",
    "Privacy Policy",
    "© 2017 All rights reserved",
)


@dataclass(frozen=True)
class LabeledValue:
    """One value to render: surface text, truth predicate, canonical form."""

    text: str
    predicate: str | None = None
    canonical: str | None = None


@dataclass(frozen=True)
class InfoRow:
    """A labeled key-value row of an infobox."""

    label: str
    values: tuple[LabeledValue, ...]


@dataclass
class SiteStyle:
    """All style decisions for one site's template."""

    site_name: str
    cls: str  # class-name prefix
    layout: str  # "table" | "dl" | "divs"
    list_style: str  # "ul" | "spans"
    wrapper_depth: int
    title_tag: str
    label_suffix: str
    date_format: int
    language: str
    nav_items: tuple[str, ...]
    has_ad_banner: bool
    has_sidebar: bool

    @classmethod
    def generate(
        cls, site_name: str, seed: int, language: str = "en"
    ) -> SiteStyle:
        rng = random.Random(f"{site_name}:{seed}")
        prefix = "".join(c for c in site_name.lower() if c.isalpha())[:4] or "site"
        return cls(
            site_name=site_name,
            cls=prefix,
            layout=rng.choice(("table", "dl", "divs")),
            list_style=rng.choice(("ul", "spans")),
            wrapper_depth=rng.randint(0, 2),
            title_tag=rng.choice(("h1", "h2")),
            label_suffix=rng.choice((":", "")),
            date_format=rng.randrange(6),
            language=language,
            nav_items=rng.choice(_NAV_BANKS),
            has_ad_banner=rng.random() < 0.5,
            has_sidebar=rng.random() < 0.4,
        )

    # -- vocabulary ----------------------------------------------------------

    def label(self, slot: str) -> str:
        """The visible label for a semantic slot in the site's language."""
        vocab = LANGUAGE_LABELS.get(self.language, LANGUAGE_LABELS["en"])
        base = vocab.get(slot, slot.replace("_", " ").title())
        return base + self.label_suffix

    def render_date(self, iso_date: str) -> str:
        """The site's display format for an ISO date."""
        variants = date_variants(iso_date)
        return variants[self.date_format % len(variants)]

    # -- page chrome ------------------------------------------------------------

    def start_page(self, builder: PageBuilder, page_rng: random.Random) -> None:
        """Open html/body and render header chrome (nav, optional ad)."""
        builder.open("html").open("head")
        builder.close("head")
        builder.open("body", class_=f"{self.cls}-body")
        builder.open("div", class_=f"{self.cls}-header")
        builder.open("ul", class_="nav")
        for item in self.nav_items:
            builder.leaf("li", item, class_="nav-item")
        builder.close("ul")
        if self.has_ad_banner and page_rng.random() < 0.7:
            builder.leaf(
                "div", page_rng.choice(_AD_TEXTS), class_="ad-banner", id="top-ad"
            )
        builder.close("div")

    def end_page(self, builder: PageBuilder) -> None:
        builder.open("div", class_=f"{self.cls}-footer")
        for text in _FOOTER_TEXTS:
            builder.leaf("span", text, class_="foot")
        builder.close("div")
        builder.close("body").close("html")

    def open_main(self, builder: PageBuilder) -> int:
        """Open the main content container (plus wrapper divs); returns the
        number of opened elements for :meth:`close_main`."""
        for level in range(self.wrapper_depth):
            builder.open("div", class_=f"wrap{level}")
        builder.open("div", class_=f"{self.cls}-main", id="content")
        return self.wrapper_depth + 1

    def close_main(self, builder: PageBuilder, opened: int) -> None:
        for _ in range(opened):
            builder.close()

    # -- content blocks -------------------------------------------------------------

    def title_block(
        self, builder: PageBuilder, title: str, predicate: str = "name"
    ) -> None:
        builder.open(self.title_tag, class_=f"{self.cls}-title", itemprop="name")
        builder.text(title, predicate)
        builder.close(self.title_tag)

    def info_section(self, builder: PageBuilder, rows: list[InfoRow]) -> None:
        """The infobox: labeled key-value rows in the site's layout."""
        if self.layout == "table":
            builder.open("table", class_=f"{self.cls}-info")
            for row in rows:
                builder.open("tr", class_="info-row")
                builder.leaf("td", row.label, class_="info-label")
                builder.open("td", class_="info-value")
                self._values(builder, row.values)
                builder.close("td")
                builder.close("tr")
            builder.close("table")
        elif self.layout == "dl":
            builder.open("dl", class_=f"{self.cls}-info")
            for row in rows:
                builder.leaf("dt", row.label, class_="info-label")
                builder.open("dd", class_="info-value")
                self._values(builder, row.values)
                builder.close("dd")
            builder.close("dl")
        else:
            builder.open("div", class_=f"{self.cls}-info")
            for row in rows:
                builder.open("div", class_="info-row")
                builder.leaf("span", row.label, class_="info-label")
                builder.open("span", class_="info-value")
                self._values(builder, row.values)
                builder.close("span")
                builder.close("div")
            builder.close("div")

    def _values(self, builder: PageBuilder, values: tuple[LabeledValue, ...]) -> None:
        for value in values:
            builder.leaf(
                "span",
                value.text,
                predicate=value.predicate,
                canonical=value.canonical,
                class_="val",
            )

    def list_section(
        self,
        builder: PageBuilder,
        heading: str,
        items: list[LabeledValue],
        section_class: str,
    ) -> None:
        """A headed list section (cast lists, filmographies, genres)."""
        builder.open("div", class_=f"{self.cls}-{section_class}")
        builder.leaf("h3", heading, class_="section-head")
        if self.list_style == "ul":
            builder.open("ul", class_=f"{section_class}-list")
            for item in items:
                builder.open("li", class_=f"{section_class}-item")
                builder.leaf(
                    "a", item.text, predicate=item.predicate,
                    canonical=item.canonical, href="#",
                )
                builder.close("li")
            builder.close("ul")
        else:
            builder.open("div", class_=f"{section_class}-list")
            for item in items:
                builder.leaf(
                    "span", item.text, predicate=item.predicate,
                    canonical=item.canonical, class_=f"{section_class}-item",
                )
            builder.close("div")
        builder.close("div")

    def sidebar_block(
        self,
        builder: PageBuilder,
        heading: str,
        groups: list[tuple[str, list[LabeledValue]]],
    ) -> None:
        """A sidebar/recommendation rail: headed groups of related items.

        This is the annotation-hazard block — recommendation content is
        *not* asserted about the page topic, so its values carry
        ``predicate=None`` truth unless the caller says otherwise.
        """
        builder.open("div", class_=f"{self.cls}-sidebar", id="related")
        builder.leaf("h3", heading, class_="side-head")
        for group_title, items in groups:
            builder.open("div", class_="side-group")
            builder.leaf("h4", group_title, class_="side-title")
            builder.open("div", class_="side-items")
            for item in items:
                builder.leaf(
                    "span", item.text, predicate=item.predicate,
                    canonical=item.canonical, class_="side-item",
                )
            builder.close("div")
            builder.close("div")
        builder.close("div")
