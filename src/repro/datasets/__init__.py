"""Synthetic datasets: entity universes, page rendering with ground truth,
and the SWDE / IMDb / CommonCrawl corpus generators."""

from repro.datasets.commoncrawl import (
    CCSite,
    CCSiteConfig,
    CommonCrawlDataset,
    DEFAULT_SITES,
    generate_commoncrawl,
)
from repro.datasets.entities import (
    BOOK_ONTOLOGY,
    MOVIE_ONTOLOGY,
    NBA_ONTOLOGY,
    UNIVERSITY_ONTOLOGY,
    BookUniverse,
    Fact,
    MovieUniverse,
    NbaUniverse,
    UniversityUniverse,
)
from repro.datasets.imdb import (
    FILM_PREDICATES,
    IMDbDataset,
    PERSON_PREDICATES,
    generate_imdb,
)
from repro.datasets.kbgen import kb_from_ground_truth, kb_from_universe
from repro.datasets.render import Emission, GeneratedPage, PageBuilder, PageTruth
from repro.datasets.styles import InfoRow, LabeledValue, SiteStyle
from repro.datasets.swde import (
    SWDEDataset,
    Site,
    VERTICAL_PREDICATES,
    VERTICALS,
    generate_swde,
    seed_kb_for,
)

__all__ = [
    "CCSite",
    "CCSiteConfig",
    "CommonCrawlDataset",
    "DEFAULT_SITES",
    "generate_commoncrawl",
    "BOOK_ONTOLOGY",
    "MOVIE_ONTOLOGY",
    "NBA_ONTOLOGY",
    "UNIVERSITY_ONTOLOGY",
    "BookUniverse",
    "Fact",
    "MovieUniverse",
    "NbaUniverse",
    "UniversityUniverse",
    "FILM_PREDICATES",
    "IMDbDataset",
    "PERSON_PREDICATES",
    "generate_imdb",
    "kb_from_ground_truth",
    "kb_from_universe",
    "Emission",
    "GeneratedPage",
    "PageBuilder",
    "PageTruth",
    "InfoRow",
    "LabeledValue",
    "SiteStyle",
    "SWDEDataset",
    "Site",
    "VERTICAL_PREDICATES",
    "VERTICALS",
    "generate_swde",
    "seed_kb_for",
]
