"""Deterministic synthetic name and title generation.

Every generator draws from fixed word banks through an explicit
``random.Random``, so a universe built from the same seed is identical
bit-for-bit across runs — a requirement for reproducible experiments.

The banks are sized so that thousands of distinct entities can be
generated without collisions; generators retry with numbered suffixes when
a collision does occur (mirroring real-world "Film Title II" conventions,
which incidentally exercises the fuzzy matcher's parenthetical handling).
"""

from __future__ import annotations

import random

__all__ = [
    "PersonNamer",
    "TitleNamer",
    "FIRST_NAMES",
    "LAST_NAMES",
    "CITIES",
    "GENRES",
    "LANGUAGE_LABELS",
]

FIRST_NAMES = (
    "Ada", "Alan", "Amara", "Andre", "Anika", "Arjun", "Astrid", "Benicio",
    "Bruno", "Camille", "Carlos", "Chiara", "Dara", "Dmitri", "Elena",
    "Emeka", "Esther", "Farah", "Felix", "Greta", "Hana", "Hugo", "Imani",
    "Ingrid", "Isaac", "Ivo", "Jasper", "Jun", "Kaia", "Kenji", "Lars",
    "Leila", "Liam", "Lucia", "Magnus", "Mai", "Marco", "Mina", "Nadia",
    "Nico", "Noor", "Olga", "Omar", "Paulo", "Priya", "Quentin", "Rafael",
    "Renata", "Rohan", "Sanna", "Sergei", "Silvia", "Soren", "Tala",
    "Tomas", "Uma", "Viktor", "Wanda", "Xavier", "Yara", "Yusuf", "Zofia",
)

LAST_NAMES = (
    "Abara", "Almeida", "Anders", "Barros", "Bergman", "Bianchi", "Borg",
    "Castellano", "Chen", "Dimitrov", "Dubois", "Eriksen", "Farouk",
    "Fernandez", "Fiorelli", "Fischer", "Gallo", "Haddad", "Hansen",
    "Havel", "Holt", "Ibrahim", "Ito", "Jansen", "Jelinek", "Kaur",
    "Kovac", "Kowalski", "Kristjans", "Larsen", "Lindgren", "Lombardi",
    "Marchetti", "Mbeki", "Meyer", "Moreau", "Moretti", "Nakamura",
    "Novak", "Nwosu", "Okafor", "Olsen", "Park", "Pereira", "Petrov",
    "Ricci", "Rosales", "Santos", "Schmidt", "Silva", "Sorensen", "Suzuki",
    "Tanaka", "Toussaint", "Urbanek", "Vargas", "Villanueva", "Weber",
    "Yamamoto", "Zhang", "Zielinski",
)

CITIES = (
    "Brooklyn", "Chicago", "Copenhagen", "Reykjavik", "Prague", "Milan",
    "Lagos", "Mumbai", "Jakarta", "Bratislava", "Seoul", "Osaka",
    "Marseille", "Valparaiso", "Porto", "Krakow", "Accra", "Nairobi",
    "Hanoi", "Montreal", "Melbourne", "Galway", "Bergen", "Tampere",
    "Ghent", "Graz", "Basel", "Gdansk", "Coimbra", "Thessaloniki",
)

GENRES = (
    "Drama", "Comedy", "Thriller", "Documentary", "Horror", "Romance",
    "Action", "Animation", "Mystery", "Western", "Musical", "Biography",
    "Adventure", "Fantasy", "Crime", "War", "History", "Sport",
)

_TITLE_ADJECTIVES = (
    "Silent", "Crimson", "Golden", "Broken", "Hidden", "Endless", "Last",
    "First", "Burning", "Frozen", "Distant", "Electric", "Hollow",
    "Midnight", "Paper", "Scarlet", "Velvet", "Wandering", "Winter",
    "Forgotten", "Restless", "Savage", "Tender", "Quiet", "Luminous",
)

_TITLE_NOUNS = (
    "River", "Harbor", "Garden", "Mirror", "Station", "Empire", "Voyage",
    "Letter", "Shadow", "Orchard", "Compass", "Lantern", "Bridge",
    "Harvest", "Island", "Signal", "Archive", "Carousel", "Meridian",
    "Monsoon", "Parade", "Quarry", "Sonata", "Threshold", "Vineyard",
    "Waltz", "Beacon", "Cathedral", "Daybreak", "Ember",
)

_TITLE_PATTERNS = (
    "The {adj} {noun}",
    "{adj} {noun}",
    "The {noun} of {noun2}",
    "{noun} and {noun2}",
    "A {adj} {noun}",
    "{adj} {noun} {roman}",
)

_ROMAN = ("II", "III", "IV")

#: Per-language label vocabularies used by the multi-lingual CommonCrawl
#: site generator.  Keys are semantic slots; values are the visible labels.
LANGUAGE_LABELS: dict[str, dict[str, str]] = {
    "en": {
        "director": "Director", "cast": "Cast", "genre": "Genre",
        "release_date": "Release Date", "year": "Year", "writer": "Writer",
        "producer": "Producer", "composer": "Music by", "title": "Title",
        "born": "Born", "birthplace": "Place of Birth", "alias": "Also Known As",
        "related": "People also liked", "known_for": "Known For",
        "filmography": "Filmography", "series": "Series", "season": "Season",
        "episode": "Episode",
    },
    "it": {
        "director": "Regia", "cast": "Interpreti", "genre": "Genere",
        "release_date": "Data di uscita", "year": "Anno", "writer": "Sceneggiatura",
        "producer": "Produttore", "composer": "Musiche", "title": "Titolo",
        "born": "Nato", "birthplace": "Luogo di nascita", "alias": "Alias",
        "related": "Film correlati", "known_for": "Noto per",
        "filmography": "Filmografia", "series": "Serie", "season": "Stagione",
        "episode": "Episodio",
    },
    "da": {
        "director": "Instruktør", "cast": "Medvirkende", "genre": "Genre",
        "release_date": "Premiere", "year": "År", "writer": "Manuskript",
        "producer": "Producer", "composer": "Musik", "title": "Titel",
        "born": "Født", "birthplace": "Fødested", "alias": "Også kendt som",
        "related": "Relaterede film", "known_for": "Kendt for",
        "filmography": "Filmografi", "series": "Serie", "season": "Sæson",
        "episode": "Afsnit",
    },
    "cs": {
        "director": "Režie", "cast": "Hrají", "genre": "Žánr",
        "release_date": "Premiéra", "year": "Rok", "writer": "Scénář",
        "producer": "Producent", "composer": "Hudba", "title": "Název",
        "born": "Narozen", "birthplace": "Místo narození", "alias": "Alias",
        "related": "Podobné filmy", "known_for": "Známý pro",
        "filmography": "Filmografie", "series": "Seriál", "season": "Sezóna",
        "episode": "Epizoda",
    },
    "is": {
        "director": "Leikstjóri", "cast": "Leikarar", "genre": "Tegund",
        "release_date": "Frumsýning", "year": "Ár", "writer": "Handrit",
        "producer": "Framleiðandi", "composer": "Tónlist", "title": "Titill",
        "born": "Fæddur", "birthplace": "Fæðingarstaður", "alias": "Einnig þekktur",
        "related": "Svipaðar myndir", "known_for": "Þekktur fyrir",
        "filmography": "Kvikmyndaskrá", "series": "Þáttaröð", "season": "Tímabil",
        "episode": "Þáttur",
    },
    "id": {
        "director": "Sutradara", "cast": "Pemeran", "genre": "Genre",
        "release_date": "Tanggal rilis", "year": "Tahun", "writer": "Penulis",
        "producer": "Produser", "composer": "Musik", "title": "Judul",
        "born": "Lahir", "birthplace": "Tempat lahir", "alias": "Nama lain",
        "related": "Film terkait", "known_for": "Dikenal untuk",
        "filmography": "Filmografi", "series": "Seri", "season": "Musim",
        "episode": "Episode",
    },
    "sk": {
        "director": "Réžia", "cast": "Hrajú", "genre": "Žáner",
        "release_date": "Premiéra", "year": "Rok", "writer": "Scenár",
        "producer": "Producent", "composer": "Hudba", "title": "Názov",
        "born": "Narodený", "birthplace": "Miesto narodenia", "alias": "Alias",
        "related": "Podobné filmy", "known_for": "Známy pre",
        "filmography": "Filmografia", "series": "Seriál", "season": "Sezóna",
        "episode": "Epizóda",
    },
}


class PersonNamer:
    """Generates unique person names."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._used: set[str] = set()

    def next(self) -> str:
        for _ in range(200):
            name = f"{self._rng.choice(FIRST_NAMES)} {self._rng.choice(LAST_NAMES)}"
            if name not in self._used:
                self._used.add(name)
                return name
        # Exhausted simple combinations: add a middle initial.
        while True:
            initial = chr(ord("A") + self._rng.randrange(26))
            name = (
                f"{self._rng.choice(FIRST_NAMES)} {initial}. "
                f"{self._rng.choice(LAST_NAMES)}"
            )
            if name not in self._used:
                self._used.add(name)
                return name


class TitleNamer:
    """Generates unique work titles (films, books, series, episodes)."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._used: set[str] = set()

    def next(self) -> str:
        for _ in range(300):
            pattern = self._rng.choice(_TITLE_PATTERNS)
            title = pattern.format(
                adj=self._rng.choice(_TITLE_ADJECTIVES),
                noun=self._rng.choice(_TITLE_NOUNS),
                noun2=self._rng.choice(_TITLE_NOUNS),
                roman=self._rng.choice(_ROMAN),
            )
            if title not in self._used:
                self._used.add(title)
                return title
        # Numbered fallback keeps generation total.
        base = f"{self._rng.choice(_TITLE_ADJECTIVES)} {self._rng.choice(_TITLE_NOUNS)}"
        counter = 2
        while f"{base} {counter}" in self._used:
            counter += 1
        title = f"{base} {counter}"
        self._used.add(title)
        return title
