"""HTML page rendering with node-level ground-truth capture.

The central invariant (see DESIGN.md): every visible string on a generated
page is emitted through :meth:`PageBuilder.text`, which records an
:class:`Emission` — ``(text, predicate-or-None, canonical object)`` — in
emission order.  Because the parser yields text fields in document order,
``document.text_fields()[i]`` corresponds to ``emissions[i]`` exactly,
giving node-level truth without planting any markers in the HTML that a
classifier could exploit.

``predicate=None`` marks decorative text (labels, ads, recommendation
blocks): extracting such a node for any predicate is a false positive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from html import escape

from repro.dom.parser import Document, parse_html

__all__ = ["Emission", "PageBuilder", "GeneratedPage", "PageTruth"]


@dataclass(frozen=True)
class Emission:
    """Ground truth for one emitted text field."""

    text: str
    predicate: str | None = None
    #: canonical object value (e.g. ISO date) when the surface differs.
    canonical: str | None = None

    @property
    def object_value(self) -> str | None:
        """The canonical object string this field asserts, if any."""
        if self.predicate is None:
            return None
        return self.canonical if self.canonical is not None else self.text


class PageBuilder:
    """Builds an HTML string while recording ground-truth emissions."""

    def __init__(self) -> None:
        self._parts: list[str] = []
        self._stack: list[str] = []
        self.emissions: list[Emission] = []

    # -- structure ----------------------------------------------------------

    def open(self, tag: str, **attrs: str) -> PageBuilder:
        rendered = "".join(
            f' {name.rstrip("_")}="{escape(value, quote=True)}"'
            for name, value in attrs.items()
        )
        self._parts.append(f"<{tag}{rendered}>")
        self._stack.append(tag)
        return self

    def close(self, tag: str | None = None) -> PageBuilder:
        expected = self._stack.pop()
        if tag is not None and tag != expected:
            raise ValueError(f"closing {tag!r} but {expected!r} is open")
        self._parts.append(f"</{expected}>")
        return self

    def element(self, tag: str, **attrs: str):
        """Context manager: ``with builder.element("div", class_="x"): ...``"""
        builder = self

        class _Ctx:
            def __enter__(self) -> PageBuilder:
                return builder.open(tag, **attrs)

            def __exit__(self, *exc) -> None:
                if exc[0] is None:
                    builder.close(tag)

        return _Ctx()

    def void(self, tag: str, **attrs: str) -> PageBuilder:
        rendered = "".join(
            f' {name.rstrip("_")}="{escape(value, quote=True)}"'
            for name, value in attrs.items()
        )
        self._parts.append(f"<{tag}{rendered}>")
        return self

    # -- content ---------------------------------------------------------------

    def text(
        self,
        value: str,
        predicate: str | None = None,
        canonical: str | None = None,
    ) -> PageBuilder:
        """Emit a visible string and record its ground truth."""
        if not value.strip():
            raise ValueError("refusing to emit whitespace-only text (breaks alignment)")
        self._parts.append(escape(value, quote=False))
        self.emissions.append(Emission(value, predicate, canonical))
        return self

    def leaf(
        self,
        tag: str,
        value: str,
        predicate: str | None = None,
        canonical: str | None = None,
        **attrs: str,
    ) -> PageBuilder:
        """``<tag ...>value</tag>`` in one call."""
        self.open(tag, **attrs)
        self.text(value, predicate, canonical)
        self.close(tag)
        return self

    def html(self) -> str:
        if self._stack:
            raise ValueError(f"unclosed tags at render time: {self._stack}")
        return "".join(self._parts)


@dataclass
class PageTruth:
    """Page-level ground truth derived from emissions."""

    #: predicate -> list of canonical object values asserted by the page.
    objects: dict[str, list[str]] = field(default_factory=dict)
    #: predicate -> set of surface strings that express it on the page.
    surfaces: dict[str, set[str]] = field(default_factory=dict)

    @classmethod
    def from_emissions(cls, emissions: list[Emission]) -> PageTruth:
        truth = cls()
        for emission in emissions:
            if emission.predicate is None:
                continue
            value = emission.object_value
            bucket = truth.objects.setdefault(emission.predicate, [])
            if value not in bucket:
                bucket.append(value)
            truth.surfaces.setdefault(emission.predicate, set()).add(
                emission.text.strip()
            )
        return truth


@dataclass
class GeneratedPage:
    """A rendered page plus its complete ground truth."""

    page_id: str
    html: str
    emissions: list[Emission]
    #: universe entity id of the page's topic (None for non-detail pages).
    topic_entity_id: str | None = None
    #: the topic's canonical name as displayed.
    topic_name: str | None = None

    _document: Document | None = None
    _truth: PageTruth | None = None
    _node_emissions: dict | None = None

    @property
    def document(self) -> Document:
        """The parsed DOM (cached; alignment is validated on first parse)."""
        if self._document is None:
            document = parse_html(self.html, url=self.page_id)
            fields = document.text_fields()
            if len(fields) != len(self.emissions):
                raise AssertionError(
                    f"{self.page_id}: {len(fields)} text fields vs "
                    f"{len(self.emissions)} emissions — renderer/parser misalignment"
                )
            self._document = document
        return self._document

    @property
    def truth(self) -> PageTruth:
        if self._truth is None:
            self._truth = PageTruth.from_emissions(self.emissions)
        return self._truth

    def emission_for_node(self, node) -> Emission | None:
        """The ground-truth emission aligned with a text node of this page."""
        if self._node_emissions is None:
            self._node_emissions = {
                id(field_node): emission
                for field_node, emission in zip(
                    self.document.text_fields(), self.emissions
                )
            }
        return self._node_emissions.get(id(node))

    def aligned(self) -> list[tuple]:
        """All ``(text_node, emission)`` pairs in document order."""
        return list(zip(self.document.text_fields(), self.emissions))
