"""Synthetic entity universes for the four SWDE verticals.

A *universe* is the complete world of entities and canonical facts from
which both websites and seed KBs are drawn: websites render (possibly
noisy, possibly partial) views of the universe, and KBs contain biased
subsets of its facts (see ``repro.datasets.kbgen``).  This mirrors the
paper's setup where IMDb pages and the IMDb-derived seed KB are two
views of one underlying database.

Everything is generated deterministically from a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.datasets.names import CITIES, GENRES, PersonNamer, TitleNamer
from repro.kb.ontology import Ontology, Predicate
from repro.kb.triple import Entity, Value

__all__ = [
    "Fact",
    "MovieUniverse",
    "BookUniverse",
    "NbaUniverse",
    "UniversityUniverse",
    "MOVIE_ONTOLOGY",
    "BOOK_ONTOLOGY",
    "NBA_ONTOLOGY",
    "UNIVERSITY_ONTOLOGY",
]


@dataclass(frozen=True)
class Fact:
    """A canonical universe fact."""

    subject: str
    predicate: str
    value: Value


def _random_date(rng: random.Random, start_year: int, end_year: int) -> str:
    year = rng.randint(start_year, end_year)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return f"{year:04d}-{month:02d}-{day:02d}"


# --------------------------------------------------------------------------
# Movie vertical (also powers IMDb and CommonCrawl experiments)
# --------------------------------------------------------------------------

MOVIE_ONTOLOGY = Ontology(
    [
        # film-side
        Predicate("has_cast_member", domain="film", range_kind="entity", multi_valued=True),
        Predicate("directed_by", domain="film", range_kind="entity", multi_valued=True),
        Predicate("written_by", domain="film", range_kind="entity", multi_valued=True),
        Predicate("music_by", domain="film", range_kind="entity", multi_valued=True),
        Predicate("genre", domain="film", range_kind="string", multi_valued=True),
        Predicate("release_date", domain="film", range_kind="date"),
        Predicate("release_year", domain="film", range_kind="string"),
        Predicate("mpaa_rating", domain="film", range_kind="string"),
        Predicate("episode_number", domain="episode", range_kind="string"),
        Predicate("season_number", domain="episode", range_kind="string"),
        Predicate("series", domain="episode", range_kind="entity"),
        # person-side
        Predicate("alias", domain="person", range_kind="string", multi_valued=True),
        Predicate("birth_date", domain="person", range_kind="date"),
        Predicate("place_of_birth", domain="person", range_kind="string"),
        Predicate("acted_in", domain="person", range_kind="entity", multi_valued=True),
        Predicate("director_of", domain="person", range_kind="entity", multi_valued=True),
        Predicate("writer_of", domain="person", range_kind="entity", multi_valued=True),
        Predicate("producer_of", domain="person", range_kind="entity", multi_valued=True),
        Predicate("created_music_for", domain="person", range_kind="entity", multi_valued=True),
    ]
)

MPAA_RATINGS = ("G", "PG", "PG-13", "R", "NR")


@dataclass
class PersonRecord:
    id: str
    name: str
    birth_date: str
    birthplace: str
    aliases: tuple[str, ...] = ()


@dataclass
class FilmRecord:
    id: str
    title: str
    release_date: str
    genres: tuple[str, ...]
    director_ids: tuple[str, ...]
    writer_ids: tuple[str, ...]
    cast_ids: tuple[str, ...]
    #: cast members with "character information" — the principal subset the
    #: paper's seed KB is biased toward (Section 5.4, footnote 10).
    principal_cast_ids: tuple[str, ...]
    producer_ids: tuple[str, ...]
    composer_ids: tuple[str, ...]
    mpaa_rating: str
    runtime_minutes: int

    @property
    def release_year(self) -> str:
        return self.release_date[:4]


@dataclass
class SeriesRecord:
    id: str
    title: str
    genres: tuple[str, ...]


@dataclass
class EpisodeRecord:
    id: str
    title: str
    series_id: str
    season: int
    episode: int
    cast_ids: tuple[str, ...]
    director_ids: tuple[str, ...]
    writer_ids: tuple[str, ...]
    release_date: str


class MovieUniverse:
    """People, films, TV series and episodes, with realistic overlaps.

    Deliberate hazards baked in:

    * directors often also write and sometimes act in their own films
      (the Spike Lee case of Example 3.1);
    * many episodes are titled "Pilot" (the ambiguity example of
      Section 2.2);
    * people may have aliases that are variants of their names.
    """

    def __init__(
        self,
        seed: int = 0,
        n_people: int = 400,
        n_films: int = 200,
        n_series: int = 12,
        episodes_per_series: int = 8,
    ) -> None:
        rng = random.Random(seed)
        self.ontology = MOVIE_ONTOLOGY
        person_namer = PersonNamer(rng)
        title_namer = TitleNamer(rng)

        self.people: dict[str, PersonRecord] = {}
        for index in range(n_people):
            name = person_namer.next()
            aliases: tuple[str, ...] = ()
            if rng.random() < 0.25:
                parts = name.split()
                aliases = (f"{parts[0][0]}. {parts[-1]}",)
            self.people[f"person:{index}"] = PersonRecord(
                id=f"person:{index}",
                name=name,
                birth_date=_random_date(rng, 1930, 1999),
                birthplace=rng.choice(CITIES),
                aliases=aliases,
            )
        person_ids = list(self.people)
        # Role pools: like the real film industry, directing/writing/
        # producing credits concentrate in small sub-populations, so a
        # director's page lists many directed films.
        director_pool = rng.sample(person_ids, max(4, n_people // 10))
        writer_pool = rng.sample(person_ids, max(6, n_people // 7))
        producer_pool = rng.sample(person_ids, max(4, n_people // 10))
        composer_pool = rng.sample(person_ids, max(3, n_people // 14))

        self.films: dict[str, FilmRecord] = {}
        for index in range(n_films):
            directors = tuple(
                rng.sample(director_pool, rng.choices([1, 2], [0.85, 0.15])[0])
            )
            # Writers overlap directors ~40% of the time (annotation hazard).
            writers: list[str] = []
            if rng.random() < 0.4:
                writers.append(directors[0])
            while len(writers) < rng.randint(1, 2):
                candidate = rng.choice(writer_pool)
                if candidate not in writers:
                    writers.append(candidate)
            cast_size = rng.randint(5, 16)
            cast = rng.sample(person_ids, cast_size)
            # Directors occasionally act in their own films.
            if rng.random() < 0.25 and directors[0] not in cast:
                cast.insert(rng.randrange(len(cast) + 1), directors[0])
            n_principal = min(len(cast), rng.randint(3, 6))
            producers = tuple(rng.sample(producer_pool, rng.randint(0, 2)))
            composers = tuple(rng.sample(composer_pool, rng.randint(0, 1)))
            self.films[f"film:{index}"] = FilmRecord(
                id=f"film:{index}",
                title=title_namer.next(),
                release_date=_random_date(rng, 1960, 2017),
                genres=tuple(rng.sample(GENRES, rng.randint(1, 3))),
                director_ids=directors,
                writer_ids=tuple(writers),
                cast_ids=tuple(cast),
                principal_cast_ids=tuple(cast[:n_principal]),
                producer_ids=producers,
                composer_ids=composers,
                mpaa_rating=rng.choice(MPAA_RATINGS),
                runtime_minutes=rng.randint(75, 190),
            )

        self.series: dict[str, SeriesRecord] = {}
        self.episodes: dict[str, EpisodeRecord] = {}
        episode_counter = 0
        for index in range(n_series):
            series_id = f"series:{index}"
            self.series[series_id] = SeriesRecord(
                id=series_id,
                title=title_namer.next(),
                genres=tuple(rng.sample(GENRES, rng.randint(1, 2))),
            )
            for ep in range(episodes_per_series):
                season = 1 + ep // 4
                number = 1 + ep % 4
                # The first episode of most series is titled "Pilot".
                if ep == 0 and rng.random() < 0.75:
                    title = "Pilot"
                else:
                    title = title_namer.next()
                self.episodes[f"episode:{episode_counter}"] = EpisodeRecord(
                    id=f"episode:{episode_counter}",
                    title=title,
                    series_id=series_id,
                    season=season,
                    episode=number,
                    cast_ids=tuple(rng.sample(person_ids, rng.randint(3, 6))),
                    director_ids=(rng.choice(person_ids),),
                    writer_ids=(rng.choice(person_ids),),
                    release_date=_random_date(rng, 1995, 2017),
                )
                episode_counter += 1

    # -- views -------------------------------------------------------------

    def entities(self) -> list[Entity]:
        result = [
            Entity(p.id, p.name, "person", p.aliases) for p in self.people.values()
        ]
        result.extend(Entity(f.id, f.title, "film") for f in self.films.values())
        result.extend(Entity(s.id, s.title, "series") for s in self.series.values())
        result.extend(Entity(e.id, e.title, "episode") for e in self.episodes.values())
        return result

    def facts(self) -> list[Fact]:
        """All canonical facts, both film-side and person-side."""
        facts: list[Fact] = []
        for film in self.films.values():
            for pid in film.cast_ids:
                facts.append(Fact(film.id, "has_cast_member", Value.entity(pid)))
                facts.append(Fact(pid, "acted_in", Value.entity(film.id)))
            for pid in film.director_ids:
                facts.append(Fact(film.id, "directed_by", Value.entity(pid)))
                facts.append(Fact(pid, "director_of", Value.entity(film.id)))
            for pid in film.writer_ids:
                facts.append(Fact(film.id, "written_by", Value.entity(pid)))
                facts.append(Fact(pid, "writer_of", Value.entity(film.id)))
            for pid in film.producer_ids:
                facts.append(Fact(pid, "producer_of", Value.entity(film.id)))
            for pid in film.composer_ids:
                facts.append(Fact(film.id, "music_by", Value.entity(pid)))
                facts.append(Fact(pid, "created_music_for", Value.entity(film.id)))
            for genre in film.genres:
                facts.append(Fact(film.id, "genre", Value.literal(genre)))
            facts.append(Fact(film.id, "release_date", Value.literal(film.release_date)))
            facts.append(Fact(film.id, "release_year", Value.literal(film.release_year)))
            facts.append(Fact(film.id, "mpaa_rating", Value.literal(film.mpaa_rating)))
        for person in self.people.values():
            facts.append(Fact(person.id, "birth_date", Value.literal(person.birth_date)))
            facts.append(
                Fact(person.id, "place_of_birth", Value.literal(person.birthplace))
            )
            for alias in person.aliases:
                facts.append(Fact(person.id, "alias", Value.literal(alias)))
        for episode in self.episodes.values():
            facts.append(Fact(episode.id, "series", Value.entity(episode.series_id)))
            facts.append(
                Fact(episode.id, "season_number", Value.literal(str(episode.season)))
            )
            facts.append(
                Fact(episode.id, "episode_number", Value.literal(str(episode.episode)))
            )
            facts.append(
                Fact(episode.id, "release_date", Value.literal(episode.release_date))
            )
            for pid in episode.cast_ids:
                facts.append(Fact(episode.id, "has_cast_member", Value.entity(pid)))
                facts.append(Fact(pid, "acted_in", Value.entity(episode.id)))
            for pid in episode.director_ids:
                facts.append(Fact(episode.id, "directed_by", Value.entity(pid)))
                facts.append(Fact(pid, "director_of", Value.entity(episode.id)))
            for pid in episode.writer_ids:
                facts.append(Fact(episode.id, "written_by", Value.entity(pid)))
                facts.append(Fact(pid, "writer_of", Value.entity(episode.id)))
        return facts


# --------------------------------------------------------------------------
# Book vertical
# --------------------------------------------------------------------------

BOOK_ONTOLOGY = Ontology(
    [
        Predicate("author", domain="book", range_kind="string", multi_valued=True),
        Predicate("isbn13", domain="book", range_kind="string"),
        Predicate("publisher", domain="book", range_kind="string"),
        Predicate("publication_date", domain="book", range_kind="date"),
    ]
)

PUBLISHERS = (
    "Harbor Point Press", "Meridian House", "Lanternfish Books",
    "Quarry Lane Publishing", "Ember & Sons", "Carousel Editions",
    "Northlight Press", "Vineyard Street Books", "Beacon Row",
    "Threshold Media",
)


@dataclass
class BookRecord:
    id: str
    title: str
    authors: tuple[str, ...]  # author names (rendered and stored as strings)
    isbn13: str
    publisher: str
    publication_date: str


class BookUniverse:
    """Books with authors, ISBNs, publishers, and publication dates."""

    def __init__(self, seed: int = 0, n_books: int = 400) -> None:
        rng = random.Random(seed + 1000)
        self.ontology = BOOK_ONTOLOGY
        title_namer = TitleNamer(rng)
        person_namer = PersonNamer(rng)
        author_pool = [person_namer.next() for _ in range(max(40, n_books // 4))]
        self.books: dict[str, BookRecord] = {}
        for index in range(n_books):
            isbn_body = [9, 7, 8] + [rng.randint(0, 9) for _ in range(9)]
            check = (10 - sum(d * (1 if i % 2 == 0 else 3) for i, d in enumerate(isbn_body)) % 10) % 10
            digits = "".join(map(str, isbn_body)) + str(check)
            isbn = f"{digits[:3]}-{digits[3]}-{digits[4:8]}-{digits[8:12]}-{digits[12]}"
            self.books[f"book:{index}"] = BookRecord(
                id=f"book:{index}",
                title=title_namer.next(),
                authors=tuple(
                    rng.sample(author_pool, rng.choices([1, 2], [0.8, 0.2])[0])
                ),
                isbn13=isbn,
                publisher=rng.choice(PUBLISHERS),
                publication_date=_random_date(rng, 1970, 2017),
            )

    def entities(self) -> list[Entity]:
        return [Entity(b.id, b.title, "book") for b in self.books.values()]

    def facts(self) -> list[Fact]:
        facts: list[Fact] = []
        for book in self.books.values():
            for author in book.authors:
                facts.append(Fact(book.id, "author", Value.literal(author)))
            facts.append(Fact(book.id, "isbn13", Value.literal(book.isbn13)))
            facts.append(Fact(book.id, "publisher", Value.literal(book.publisher)))
            facts.append(
                Fact(book.id, "publication_date", Value.literal(book.publication_date))
            )
        return facts


# --------------------------------------------------------------------------
# NBA Player vertical
# --------------------------------------------------------------------------

NBA_ONTOLOGY = Ontology(
    [
        Predicate("team", domain="player", range_kind="string"),
        Predicate("height", domain="player", range_kind="string"),
        Predicate("weight", domain="player", range_kind="number"),
    ]
)

NBA_TEAMS = (
    "Harbor City Gulls", "Midtown Comets", "Lakeside Foxes", "Ironworks FC",
    "Summit Peaks", "Redstone Miners", "Bayview Pilots", "Northgate Wolves",
    "Crescent Kings", "Old Town Badgers", "Granite Bulls", "Seabreeze Rays",
)


@dataclass
class PlayerRecord:
    id: str
    name: str
    team: str
    height: str  # e.g. "6-7"
    weight: str  # pounds, e.g. "215"


class NbaUniverse:
    """Basketball players with team, height, and weight."""

    def __init__(self, seed: int = 0, n_players: int = 250) -> None:
        rng = random.Random(seed + 2000)
        self.ontology = NBA_ONTOLOGY
        person_namer = PersonNamer(rng)
        self.players: dict[str, PlayerRecord] = {}
        for index in range(n_players):
            feet = rng.randint(5, 7)
            inches = rng.randint(0, 11)
            self.players[f"player:{index}"] = PlayerRecord(
                id=f"player:{index}",
                name=person_namer.next(),
                team=rng.choice(NBA_TEAMS),
                height=f"{feet}-{inches}",
                weight=str(rng.randint(165, 290)),
            )

    def entities(self) -> list[Entity]:
        return [Entity(p.id, p.name, "player") for p in self.players.values()]

    def facts(self) -> list[Fact]:
        facts: list[Fact] = []
        for player in self.players.values():
            facts.append(Fact(player.id, "team", Value.literal(player.team)))
            facts.append(Fact(player.id, "height", Value.literal(player.height)))
            facts.append(Fact(player.id, "weight", Value.literal(player.weight)))
        return facts


# --------------------------------------------------------------------------
# University vertical
# --------------------------------------------------------------------------

UNIVERSITY_ONTOLOGY = Ontology(
    [
        Predicate("phone", domain="university", range_kind="string"),
        Predicate("website", domain="university", range_kind="string"),
        Predicate("type", domain="university", range_kind="string"),
    ]
)

_UNI_SUFFIXES = ("University", "State University", "College", "Institute of Technology")


@dataclass
class UniversityRecord:
    id: str
    name: str
    phone: str
    website: str
    type: str  # "Public" | "Private"


class UniversityUniverse:
    """Universities with phone, website, and public/private type."""

    def __init__(self, seed: int = 0, n_universities: int = 250) -> None:
        rng = random.Random(seed + 3000)
        self.ontology = UNIVERSITY_ONTOLOGY
        self.universities: dict[str, UniversityRecord] = {}
        used_names: set[str] = set()
        index = 0
        while len(self.universities) < n_universities:
            city = rng.choice(CITIES)
            suffix = rng.choice(_UNI_SUFFIXES)
            name = f"{city} {suffix}"
            if name in used_names:
                name = f"{city} {rng.choice(('North', 'South', 'East', 'West'))} {suffix}"
            if name in used_names:
                index += 1
                continue
            used_names.add(name)
            slug = "".join(c for c in city.lower() if c.isalpha())[:8]
            self.universities[f"university:{index}"] = UniversityRecord(
                id=f"university:{index}",
                name=name,
                phone=f"({rng.randint(201, 989)}) 555-{rng.randint(100, 999):03d}{rng.randint(0, 9)}",
                website=f"www.{slug}{index}.edu",
                type=rng.choice(("Public", "Private")),
            )
            index += 1

    def entities(self) -> list[Entity]:
        return [Entity(u.id, u.name, "university") for u in self.universities.values()]

    def facts(self) -> list[Fact]:
        facts: list[Fact] = []
        for uni in self.universities.values():
            facts.append(Fact(uni.id, "phone", Value.literal(uni.phone)))
            facts.append(Fact(uni.id, "website", Value.literal(uni.website)))
            facts.append(Fact(uni.id, "type", Value.literal(uni.type)))
        return facts
