"""Deterministic fault injection for chaos tests and resilience benchmarks.

Production code marks **injection points** — named places where the real
world goes wrong (a page fails to parse, a disk fills mid-write, a site
hangs) — by calling :func:`fault_point`::

    fault_point("page.parse", site=site, page=path.name)

With no plan active this is two attribute loads and a comparison; the
hot path pays nothing.  A chaos test activates a :class:`FaultPlan`::

    plan = FaultPlan([
        FaultSpec("site.extract", action="raise-transient",
                  site="imdb", times=1),          # fail once, then heal
        FaultSpec("page.parse", action="raise", page="page007.html"),
    ])
    with active(plan):
        run_corpus(...)

and matching trips fire their action.  Everything is deterministic: a
spec matches by point name (plus optional ``site``/``page`` context),
``skip`` lets the first N matching trips pass, ``times`` bounds how many
fire, and hang delays are fixed constants — no randomness, so a failing
chaos run replays exactly.

**Worker propagation.**  :func:`active`/:func:`install` also serialize
the plan into the ``REPRO_FAULT_PLAN`` environment variable, which
``run_corpus`` pool workers inherit at process creation; each worker
parses it lazily on its first :func:`fault_point` call.  Trip counters
are per-process, which is exactly right for retry scenarios: a site's
retries all happen inside one worker, so ``times=1`` means "the first
attempt in that worker fails, the retry succeeds".

Actions:

``raise``
    raise :class:`FaultError` — classified *permanent* by
    :func:`repro.runtime.resilience.classify_error` (no retry).
``raise-transient``
    raise :class:`TransientFaultError` — classified *transient*
    (retried with backoff).
``raise-overload``
    raise :class:`OverloadFaultError` — classified *overload* (busy,
    not broken: shed/retry-later, never trips a circuit breaker).
``hang``
    sleep ``delay`` seconds (default far beyond any site timeout), the
    stand-in for a wedged page/site; a surrounding
    :func:`~repro.runtime.resilience.deadline` interrupts it.
``disk-full``
    raise ``OSError(ENOSPC)``.
``corrupt-write``
    scribble garbage over the ``path`` passed in context (when any),
    then raise :class:`FaultError` — simulates a torn write caught
    mid-flight.
``exit``
    ``os._exit(17)`` — a worker process dying without a Python
    traceback (OOM killer, segfault).
"""

from __future__ import annotations

import contextlib
import dataclasses
import errno
import json
import os
import time
from typing import Iterator, Sequence

__all__ = [
    "ENV_VAR",
    "FaultError",
    "FaultPlan",
    "FaultSpec",
    "OverloadFaultError",
    "TransientFaultError",
    "active",
    "fault_point",
    "install",
    "uninstall",
]

#: Environment variable a plan serializes into so pool workers inherit it.
ENV_VAR = "REPRO_FAULT_PLAN"

_ACTIONS = frozenset(
    {
        "raise",
        "raise-transient",
        "raise-overload",
        "hang",
        "disk-full",
        "corrupt-write",
        "exit",
    }
)


class FaultError(RuntimeError):
    """An injected fault (permanent flavor — retrying cannot help)."""


class TransientFaultError(FaultError):
    """An injected fault that heals on retry (network blip, flaky disk)."""


class OverloadFaultError(FaultError):
    """An injected "too busy" fault (queue full, contended resource) —
    classified *overload*: shed or retry later, never breaker-tripping."""


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One fault: where it trips, what it does, and how often."""

    #: injection-point name (``fault_point``'s first argument).
    point: str
    action: str = "raise"
    #: only trip when the point's ``site=`` context matches (None = any).
    site: str | None = None
    #: only trip when the point's ``page=`` context matches (None = any).
    page: str | None = None
    #: fire for at most this many matching trips (None = every one).
    times: int | None = None
    #: let this many matching trips pass before the first firing.
    skip: int = 0
    #: hang duration in seconds (``action="hang"`` only).
    delay: float = 3600.0

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r} "
                f"(choose from {sorted(_ACTIONS)})"
            )
        if self.times is not None and self.times < 1:
            raise ValueError("times must be >= 1 (or None for unlimited)")
        if self.skip < 0:
            raise ValueError("skip must be >= 0")

    def matches(self, point: str, context: dict) -> bool:
        if self.point != point:
            return False
        if self.site is not None and context.get("site") != self.site:
            return False
        if self.page is not None and context.get("page") != self.page:
            return False
        return True


class FaultPlan:
    """An ordered set of :class:`FaultSpec` — the whole chaos scenario."""

    def __init__(self, specs: Sequence[FaultSpec] = ()) -> None:
        self.specs = tuple(specs)

    # -- serialization (for the env var) -----------------------------------

    def to_json(self) -> str:
        return json.dumps(
            [dataclasses.asdict(spec) for spec in self.specs],
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls([FaultSpec(**entry) for entry in json.loads(text)])


# -- process-local plan state -----------------------------------------------

#: Sentinel meaning "not resolved yet — consult the environment".
_UNSET = object()
_plan: object = _UNSET
#: spec index -> matching trips seen so far (per process).
_counts: dict[int, int] = {}


def _active_plan() -> FaultPlan | None:
    global _plan
    if _plan is _UNSET:
        raw = os.environ.get(ENV_VAR)
        _plan = FaultPlan.from_json(raw) if raw else None
    return _plan  # type: ignore[return-value]


def install(plan: FaultPlan) -> None:
    """Activate ``plan`` in this process *and* in future child processes
    (via :data:`ENV_VAR`).  Resets trip counters."""
    global _plan
    os.environ[ENV_VAR] = plan.to_json()
    _plan = plan
    _counts.clear()


def uninstall() -> None:
    """Deactivate any plan and clear the env var and counters."""
    global _plan
    os.environ.pop(ENV_VAR, None)
    _plan = None
    _counts.clear()


@contextlib.contextmanager
def active(plan: FaultPlan) -> Iterator[FaultPlan]:
    """``with active(plan): ...`` — install for the block, restore after."""
    previous_env = os.environ.get(ENV_VAR)
    install(plan)
    try:
        yield plan
    finally:
        uninstall()
        if previous_env is not None:
            os.environ[ENV_VAR] = previous_env
            global _plan
            _plan = _UNSET


# -- the injection point ----------------------------------------------------


def fault_point(point: str, **context) -> None:
    """Trip any active fault matching ``point``/``context``; else no-op.

    Called from production code at named injection points.  Context keys
    the matcher understands: ``site`` and ``page``; anything else (e.g.
    ``path``) is available to the fired action.
    """
    plan = _active_plan()
    if plan is None:
        return
    for index, spec in enumerate(plan.specs):
        if not spec.matches(point, context):
            continue
        count = _counts.get(index, 0) + 1
        _counts[index] = count
        if count <= spec.skip:
            continue
        if spec.times is not None and count > spec.skip + spec.times:
            continue
        _fire(spec, point, context)


def _fire(spec: FaultSpec, point: str, context: dict) -> None:
    where = f"injection point {point!r}"
    if context.get("site") is not None:
        where += f" (site={context['site']!r}"
        where += f", page={context['page']!r})" if context.get("page") else ")"
    if spec.action == "raise":
        raise FaultError(f"injected fault at {where}")
    if spec.action == "raise-transient":
        raise TransientFaultError(f"injected transient fault at {where}")
    if spec.action == "raise-overload":
        raise OverloadFaultError(f"injected overload fault at {where}")
    if spec.action == "hang":
        # The stand-in for a wedged site; deadline()'s SIGALRM interrupts
        # it.  This sleep is fault simulation, not a retry loop — the
        # retry-sleep CI gate exempts this module.
        time.sleep(spec.delay)
        return
    if spec.action == "disk-full":
        raise OSError(errno.ENOSPC, f"injected disk-full at {where}")
    if spec.action == "corrupt-write":
        path = context.get("path")
        if path is not None:
            with contextlib.suppress(OSError):
                with open(path, "wb") as handle:
                    handle.write(b"\x00\xffinjected-corruption")
        raise FaultError(f"injected corrupt write at {where}")
    if spec.action == "exit":
        os._exit(17)
