"""Test-support subsystems shipped with the library.

:mod:`repro.testing.faults` is the deterministic fault-injection
harness: production code calls :func:`~repro.testing.faults.fault_point`
at named injection points (a no-op unless a :class:`FaultPlan` is
active), and chaos tests/benchmarks activate plans — in-process via
:func:`~repro.testing.faults.active`, or across ``run_corpus`` worker
processes via the ``REPRO_FAULT_PLAN`` environment variable the plan
serializes itself into.
"""

from repro.testing.faults import (
    ENV_VAR,
    FaultError,
    FaultPlan,
    FaultSpec,
    TransientFaultError,
    active,
    fault_point,
    install,
    uninstall,
)

__all__ = [
    "ENV_VAR",
    "FaultError",
    "FaultPlan",
    "FaultSpec",
    "TransientFaultError",
    "active",
    "fault_point",
    "install",
    "uninstall",
]
