"""``repro.obs`` — spans, mergeable metrics, and profiling hooks.

The pipeline is instrumented against two process-wide instruments:

* :func:`tracer` — a :class:`~repro.obs.tracer.Tracer` producing nested
  wall-clock spans (thread- and process-aware, JSONL-serializable);
* :func:`metrics` — a :class:`~repro.obs.metrics.MetricsRegistry` of
  counters and fixed-bucket histograms whose snapshots merge across
  ``run_corpus`` pool workers.

**Off by default, at zero cost.**  Both accessors start out returning
module-level disabled singletons (:data:`~repro.obs.tracer.NULL_TRACER`,
:data:`~repro.obs.metrics.NULL_REGISTRY`) whose every method is a
constant-time no-op returning shared objects — instrumented hot paths
allocate nothing and record nothing until :func:`enable` swaps live
instruments in.  The CLI enables them from ``--trace-output`` /
``--metrics-output``; tests and workers use :func:`scoped` to install
fresh instruments and restore the previous state on exit.

Canonical metric names are dotted ``layer.metric`` strings; the README's
"Observability" section tables the names each layer emits.  Stage
regions use :func:`stage`, which opens a span *and* times the same
region into a ``<name>_seconds`` histogram, so a metrics-only run still
sees per-stage durations.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.tracer import NULL_TRACER, Tracer, write_spans_jsonl

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "disable",
    "enable",
    "enabled",
    "merge_snapshots",
    "metrics",
    "metrics_enabled",
    "scoped",
    "span",
    "stage",
    "timer",
    "tracer",
    "tracing_enabled",
    "write_spans_jsonl",
]

_tracer: Tracer = NULL_TRACER
_metrics: MetricsRegistry = NULL_REGISTRY


def tracer() -> Tracer:
    """The active tracer (the disabled singleton until :func:`enable`)."""
    return _tracer


def metrics() -> MetricsRegistry:
    """The active registry (the disabled singleton until :func:`enable`)."""
    return _metrics


def tracing_enabled() -> bool:
    return _tracer is not NULL_TRACER


def metrics_enabled() -> bool:
    return _metrics is not NULL_REGISTRY


def enabled() -> bool:
    return tracing_enabled() or metrics_enabled()


def enable(
    *, tracing: bool = True, metrics: bool = True
) -> tuple[Tracer, MetricsRegistry]:
    """Install fresh live instruments for the requested modes.

    Modes not requested are left exactly as they are (so
    ``enable(tracing=False)`` never tears down an active tracer).
    Returns the now-active ``(tracer, registry)`` pair.
    """
    global _tracer, _metrics
    if tracing:
        _tracer = Tracer()
    if metrics:
        _metrics = MetricsRegistry()
    return _tracer, _metrics


def disable() -> None:
    """Restore the zero-overhead disabled singletons."""
    global _tracer, _metrics
    _tracer = NULL_TRACER
    _metrics = NULL_REGISTRY


@contextlib.contextmanager
def scoped(
    *, tracing: bool = False, metrics: bool = True
) -> Iterator[tuple[Tracer, MetricsRegistry]]:
    """Fresh instruments for one region; the prior state — enabled or
    disabled — comes back on exit.

    ``run_corpus`` workers run each site under ``scoped()`` so per-site
    telemetry is isolated (and shippable in the ``SiteReport``) without
    leaking into whatever the surrounding process had active.
    """
    global _tracer, _metrics
    previous = (_tracer, _metrics)
    if tracing:
        _tracer = Tracer()
    if metrics:
        _metrics = MetricsRegistry()
    try:
        yield _tracer, _metrics
    finally:
        _tracer, _metrics = previous


# -- instrumentation shorthands ---------------------------------------------


def span(name: str, **attrs):
    """``with obs.span("service.extract_pages", site=s): ...``"""
    return _tracer.span(name, **attrs)


def timer(name: str, buckets=DEFAULT_TIME_BUCKETS):
    """``with obs.timer("scoring.predict_seconds"): ...``"""
    return _metrics.timer(name, buckets)


class _Stage:
    """A span and a ``<name>_seconds`` histogram over the same region."""

    __slots__ = ("_span", "_timing")

    def __init__(self, span_context, timing) -> None:
        self._span = span_context
        self._timing = timing

    def set(self, **attrs) -> None:
        self._span.set(**attrs)

    def __enter__(self) -> "_Stage":
        self._span.__enter__()
        self._timing.__enter__()
        return self

    def __exit__(self, *exc_info) -> None:
        self._timing.__exit__(*exc_info)
        self._span.__exit__(*exc_info)


#: Shared disabled stage context — :func:`stage` allocates nothing when
#: both instruments are off.
_NULL_STAGE = _Stage(NULL_TRACER.span(""), NULL_REGISTRY.timer(""))


def stage(name: str, **attrs) -> _Stage:
    """``with obs.stage("stage.train", site=s): ...`` — one region, both
    instruments: a ``name`` span and a ``name_seconds`` histogram."""
    if _tracer is NULL_TRACER and _metrics is NULL_REGISTRY:
        return _NULL_STAGE
    return _Stage(_tracer.span(name, **attrs), _metrics.timer(f"{name}_seconds"))
