"""Mergeable metrics: counters and fixed-bucket histograms.

A :class:`MetricsRegistry` is a flat namespace of named instruments.
Two properties drive the design:

* **snapshots merge** — :meth:`MetricsRegistry.snapshot` returns plain
  JSON data, and :func:`merge_snapshots` combines any number of them
  associatively and commutatively (counters add; histograms add
  bucket-wise and combine min/max).  ``run_corpus`` pool workers each
  fill a private registry and ship the snapshot home in their
  :class:`~repro.runtime.runner.SiteReport`; the parent folds every
  worker's numbers into one registry without loss.
* **the off switch costs nothing** — :data:`NULL_REGISTRY` hands out
  one shared no-op counter, histogram, and timing context; hot paths
  instrumented against it make constant-time method calls and allocate
  nothing (see :mod:`repro.obs`).

Histogram buckets are fixed at creation (upper bounds, seconds by
default for timers) precisely so cross-process merging is exact: equal
names must carry equal buckets, and a mismatch raises rather than
silently skewing the merge.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, Mapping, Sequence

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "merge_snapshots",
]

#: Default histogram buckets for timers (seconds): sub-millisecond
#: serving requests through minute-scale cold training both resolve.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """A monotonically increasing integer-ish counter.

    Thread-safe: the serving tier increments from handler and worker
    threads concurrently, and ``+=`` is not atomic across bytecodes.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        with self._lock:
            self.value += amount


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max.

    ``buckets`` are inclusive upper bounds; one implicit overflow bucket
    catches everything above the last bound.  ``counts[i]`` is the
    number of observations ``<= buckets[i]`` and below no earlier bound
    (i.e. non-cumulative), so merged histograms are exact sums.
    """

    __slots__ = (
        "name", "buckets", "counts", "total", "count", "min", "max", "_lock",
    )

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be non-empty and sorted")
        self.name = name
        self.buckets: tuple[float, ...] = tuple(buckets)
        self.counts: list[int] = [0] * (len(self.buckets) + 1)
        self.total = 0.0
        self.count = 0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = len(self.buckets)  # overflow bucket
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self.counts[index] += 1
            self.total += value
            self.count += 1
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _Timing:
    """Context manager timing one block into a histogram.

    ``elapsed`` holds the measured seconds after exit, so callers (the
    benchmarks' best-of-N loops) can read the sample they just took
    without re-deriving it from the histogram.
    """

    __slots__ = ("_histogram", "_started", "elapsed")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._started = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "_Timing":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._started
        self._histogram.observe(self.elapsed)


class MetricsRegistry:
    """A named collection of counters and histograms.

    Instruments are created on first use and live for the registry's
    lifetime; names are flat dotted strings (``layer.metric``, see the
    README's canonical-name table).  ``snapshot()`` is cheap and
    non-destructive; ``merge_snapshot()`` folds another registry's
    snapshot (e.g. from a pool worker) into this one.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        # Guards instrument *creation* and dict iteration; each
        # instrument then serializes its own mutations.  Two threads
        # racing counter("x") must get the same Counter, not clobber
        # each other's increments with fresh instances.
        self._registry_lock = threading.Lock()

    # -- instruments -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._registry_lock:
            found = self._counters.get(name)
            if found is None:
                found = self._counters[name] = Counter(name)
            return found

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS
    ) -> Histogram:
        with self._registry_lock:
            found = self._histograms.get(name)
            if found is None:
                found = self._histograms[name] = Histogram(name, buckets)
            elif found.buckets != tuple(buckets):
                raise ValueError(
                    f"histogram {name!r} already exists with different buckets"
                )
            return found

    # -- conveniences ------------------------------------------------------

    def inc(self, name: str, amount: int | float = 1) -> None:
        self.counter(name).inc(amount)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        self.histogram(name, buckets).observe(value)

    def timer(
        self, name: str, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS
    ) -> _Timing:
        """``with registry.timer("stage.x_seconds") as t: ...`` — the
        block's duration lands in the named histogram and ``t.elapsed``."""
        return _Timing(self.histogram(name, buckets))

    def record_cache(self, stats, prefix: str = "cache") -> None:
        """Fold one :class:`~repro.runtime.cache.CacheStats` (or its
        ``to_dict()`` form) into ``<prefix>.<name>.{hits,misses,evictions}``.

        Cache counters are cumulative per cache instance — record each
        instance once (at report time), not once per batch, or the fold
        double-counts.
        """
        data = stats if isinstance(stats, Mapping) else stats.to_dict()
        base = f"{prefix}.{data['name']}" if data.get("name") else prefix
        for field in ("hits", "misses", "evictions"):
            self.inc(f"{base}.{field}", data[field])

    # -- snapshot / merge --------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-data view: ``{"counters": {...}, "histograms": {...}}``."""
        with self._registry_lock:
            counters = sorted(self._counters.items())
            histograms = sorted(self._histograms.items())
        return {
            "counters": {name: counter.value for name, counter in counters},
            "histograms": {
                name: {
                    "buckets": list(histogram.buckets),
                    "counts": list(histogram.counts),
                    "sum": histogram.total,
                    "count": histogram.count,
                    "min": histogram.min,
                    "max": histogram.max,
                }
                for name, histogram in histograms
            },
        }

    def merge_snapshot(self, snapshot: Mapping) -> None:
        """Fold a snapshot (another registry's, possibly another
        process's) into this registry's live instruments."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, data["buckets"])
            if list(histogram.buckets) != list(data["buckets"]):
                raise ValueError(
                    f"histogram {name!r}: bucket mismatch in merge"
                )
            with histogram._lock:
                for index, count in enumerate(data["counts"]):
                    histogram.counts[index] += count
                histogram.total += data["sum"]
                histogram.count += data["count"]
                for bound, pick in (("min", min), ("max", max)):
                    incoming = data[bound]
                    if incoming is not None:
                        current = getattr(histogram, bound)
                        setattr(
                            histogram,
                            bound,
                            incoming
                            if current is None
                            else pick(current, incoming),
                        )

    def clear(self) -> None:
        with self._registry_lock:
            self._counters.clear()
            self._histograms.clear()


def merge_snapshots(snapshots: Iterable[Mapping]) -> dict:
    """Merge snapshots into one (associative and commutative: counters
    add, histogram buckets add element-wise, min/max combine)."""
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge_snapshot(snapshot)
    return merged.snapshot()


# -- disabled mode ----------------------------------------------------------


class _NullCounter(Counter):
    """Shared counter that ignores increments (disabled mode)."""

    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:  # noqa: ARG002
        return


class _NullHistogram(Histogram):
    """Shared histogram that ignores observations (disabled mode)."""

    __slots__ = ()

    def observe(self, value: float) -> None:  # noqa: ARG002
        return


class _NullTiming:
    """Shared, stateless timing context (disabled mode): reentrant and
    thread-safe because it records nothing."""

    __slots__ = ()

    elapsed = 0.0

    def __enter__(self) -> "_NullTiming":
        return self

    def __exit__(self, *exc_info) -> None:
        return


_NULL_COUNTER = _NullCounter("null")
_NULL_HISTOGRAM = _NullHistogram("null")
_NULL_TIMING = _NullTiming()


class _NullRegistry(MetricsRegistry):
    """The disabled registry: every accessor returns a shared no-op
    instrument, so instrumented hot paths allocate nothing when
    observability is off."""

    def counter(self, name: str) -> Counter:  # noqa: ARG002
        return _NULL_COUNTER

    def histogram(self, name, buckets=DEFAULT_TIME_BUCKETS):  # noqa: ARG002
        return _NULL_HISTOGRAM

    def inc(self, name, amount=1) -> None:  # noqa: ARG002
        return

    def observe(self, name, value, buckets=DEFAULT_TIME_BUCKETS):  # noqa: ARG002
        return

    def timer(self, name, buckets=DEFAULT_TIME_BUCKETS):  # noqa: ARG002
        return _NULL_TIMING

    def record_cache(self, stats, prefix="cache") -> None:  # noqa: ARG002
        return

    def merge_snapshot(self, snapshot) -> None:  # noqa: ARG002
        return


#: The process-wide disabled singleton handed out by :func:`repro.obs.metrics`
#: until :func:`repro.obs.enable` swaps in a live registry.
NULL_REGISTRY = _NullRegistry()
