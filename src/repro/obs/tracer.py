"""Nested wall-clock spans, JSONL-serializable across threads and processes.

A span is one timed region of the pipeline (``stage.annotate``,
``service.extract_pages``, ...).  :class:`Tracer` keeps a per-thread
open-span stack for parent linkage, so nesting needs no explicit
plumbing: whatever span is open on the current thread when a new one
starts becomes its parent.  Span ids embed the process id *and* a
per-process tracer sequence number, so spans exported from ``run_corpus``
pool workers (shipped home inside
:class:`~repro.runtime.runner.SiteReport` and re-absorbed by the parent,
see :meth:`Tracer.absorb`) never collide with the parent's own — not
even in inline mode, where the per-site scoped tracers share the
parent's pid.

Finished spans are plain dicts::

    {"name": ..., "span_id": "pid.tracer:serial", "parent_id": ... | None,
     "start": epoch-seconds, "duration": seconds,
     "pid": ..., "thread": ..., "attrs": {...}}

and serialize one-per-line via :func:`write_spans_jsonl`.  Spans land in
the buffer at *exit* time, children before parents — a stable order
that reconstructs nesting from ``parent_id`` alone.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import IO, Iterable

__all__ = ["NULL_TRACER", "Tracer", "write_spans_jsonl"]

#: Per-process tracer sequence (``next`` is atomic in CPython) — part of
#: every span id, so two tracers in one process can never mint the same id.
_tracer_sequence = itertools.count(1)


class _SpanContext:
    """One open span; closes (and records itself) on ``__exit__``."""

    __slots__ = ("_tracer", "record", "_perf_started")

    def __init__(self, tracer: "Tracer", record: dict) -> None:
        self._tracer = tracer
        self.record = record
        self._perf_started = 0.0

    def set(self, **attrs) -> None:
        """Attach attributes to the span while it is open."""
        self.record["attrs"].update(attrs)

    def __enter__(self) -> "_SpanContext":
        stack = self._tracer._stack()
        if stack:
            self.record["parent_id"] = stack[-1].record["span_id"]
        stack.append(self)
        self.record["start"] = time.time()
        self._perf_started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.record["duration"] = time.perf_counter() - self._perf_started
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._tracer._finished.append(self.record)


class Tracer:
    """Collects nested spans; thread-safe for concurrent span entry."""

    def __init__(self) -> None:
        self._finished: list[dict] = []  # list.append is atomic under the GIL
        self._local = threading.local()
        self._lock = threading.Lock()
        self._serial = 0
        self._pid = os.getpid()
        self._prefix = f"{self._pid}.{next(_tracer_sequence)}"

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> str:
        with self._lock:
            self._serial += 1
            return f"{self._prefix}:{self._serial}"

    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a span: ``with tracer.span("stage.train", site=s): ...``."""
        return _SpanContext(
            self,
            {
                "name": name,
                "span_id": self._next_id(),
                "parent_id": None,
                "start": 0.0,
                "duration": 0.0,
                "pid": self._pid,
                "thread": threading.get_ident(),
                "attrs": attrs,
            },
        )

    # -- export ------------------------------------------------------------

    def export(self) -> list[dict]:
        """Finished spans in completion order (children before parents)."""
        return list(self._finished)

    def absorb(self, spans: Iterable[dict]) -> None:
        """Append spans exported elsewhere (a pool worker's tracer).

        Worker span ids embed the worker pid, so absorbed spans keep
        their internal parent links and cannot collide with local ids.
        """
        self._finished.extend(spans)

    def clear(self) -> None:
        self._finished.clear()

    def write_jsonl(self, sink: IO[str]) -> int:
        return write_spans_jsonl(self.export(), sink)


def write_spans_jsonl(spans: Iterable[dict], sink: IO[str]) -> int:
    """One span dict per line; returns the number of lines written."""
    count = 0
    for span in spans:
        sink.write(json.dumps(span, ensure_ascii=False, sort_keys=True) + "\n")
        count += 1
    return count


class _NullSpanContext:
    """Shared, stateless span context (disabled mode).

    Reentrant and thread-safe because it records nothing; ``set`` is
    accepted and dropped so instrumented code never branches on mode.
    """

    __slots__ = ()

    record: dict = {}

    def set(self, **attrs) -> None:  # noqa: ARG002
        return

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, *exc_info) -> None:
        return


_NULL_SPAN = _NullSpanContext()


class _NullTracer(Tracer):
    """The disabled tracer: one shared no-op span context, nothing kept."""

    def span(self, name: str, **attrs) -> _NullSpanContext:  # noqa: ARG002
        return _NULL_SPAN

    def absorb(self, spans) -> None:  # noqa: ARG002
        return


#: The process-wide disabled singleton handed out by :func:`repro.obs.tracer`
#: until :func:`repro.obs.enable` swaps in a live tracer.
NULL_TRACER = _NullTracer()
