"""ASCII table rendering for experiment reports.

All benchmark harnesses print their tables through this module so that
``bench_output.txt`` reads like the paper's tables.
"""

from __future__ import annotations

__all__ = ["format_table", "format_prf", "format_number"]


def format_prf(value: float | None) -> str:
    """Render a precision/recall/F1 value; ``None`` renders as NA."""
    if value is None:
        return "NA"
    return f"{value:.2f}"


def format_number(value: int | float | None) -> str:
    if value is None:
        return "NA"
    if isinstance(value, float):
        return f"{value:.2f}"
    return f"{value:,}"


def format_table(
    headers: list[str],
    rows: list[list[str]],
    title: str | None = None,
) -> str:
    """Monospace table with a header rule.

    >>> print(format_table(["a", "b"], [["1", "22"]]))
    a | b
    --+---
    1 | 22
    """
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
