"""Evaluation: scoring protocols, report rendering, experiment runners."""

from repro.evaluation.fusion_eval import (
    dataset_fact_keys,
    fusion_gain,
    kb_fact_keys,
    precision_at_k,
    rank_unfused,
)
from repro.evaluation.report import format_number, format_prf, format_table
from repro.evaluation.scoring import (
    annotation_scores,
    extraction_precision,
    node_level_scores,
    page_hit_scores,
    topic_scores,
)
from repro.evaluation.transfer_eval import (
    TransferFold,
    format_loso_table,
    loso_folds,
)

__all__ = [
    "TransferFold",
    "format_loso_table",
    "loso_folds",
    "dataset_fact_keys",
    "fusion_gain",
    "kb_fact_keys",
    "precision_at_k",
    "rank_unfused",
    "format_number",
    "format_prf",
    "format_table",
    "annotation_scores",
    "extraction_precision",
    "node_level_scores",
    "page_hit_scores",
    "topic_scores",
]
