"""Evaluation: scoring protocols, report rendering, experiment runners."""

from repro.evaluation.report import format_number, format_prf, format_table
from repro.evaluation.scoring import (
    annotation_scores,
    extraction_precision,
    node_level_scores,
    page_hit_scores,
    topic_scores,
)

__all__ = [
    "format_number",
    "format_prf",
    "format_table",
    "annotation_scores",
    "extraction_precision",
    "node_level_scores",
    "page_hit_scores",
    "topic_scores",
]
