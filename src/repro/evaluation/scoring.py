"""Scoring extractions, annotations, and topic assignments against truth.

Three scoring regimes, matching the paper's three evaluation protocols:

* **Node-level** (Tables 4-6, 8, 9): an extraction/annotation is correct
  iff the *specific DOM node* it points to asserts that predicate in the
  generated page's ground truth.  This is the strictest regime — matching
  the right string in the wrong page region (a recommendation block) is a
  false positive, exactly as in the paper's manual verification ("we do
  not confirm which text fields provided the extraction" is their relaxed
  CommonCrawl protocol; we hold ourselves to the stricter one).

* **Page-hit** (Table 3, the Hao et al. protocol): one prediction per
  predicate per page; a page counts as a hit when the predicted string
  matches any truth surface for that predicate on the page.

* **Annotation recall vs the KB** (Table 6): recall denominators count
  only facts *the KB knows* — an unannotated fact the KB never contained
  is not a miss.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.annotation.types import AnnotatedPage, TopicResult
from repro.core.extraction.extractor import Extraction, PageCandidates
from repro.datasets.render import GeneratedPage
from repro.kb.ontology import NAME_PREDICATE
from repro.kb.store import KnowledgeBase
from repro.ml.metrics import PRF
from repro.text.normalize import normalize_text

__all__ = [
    "node_level_scores",
    "page_hit_scores",
    "annotation_scores",
    "topic_scores",
    "extraction_precision",
]


def _gold_instances(
    page: GeneratedPage, predicates: set[str] | None
) -> set[tuple[str, str]]:
    """Distinct (predicate, normalized object) asserted by a page."""
    gold: set[tuple[str, str]] = set()
    for predicate, values in page.truth.objects.items():
        if predicates is not None and predicate not in predicates:
            continue
        for value in values:
            gold.add((predicate, normalize_text(value)))
    return gold


def node_level_scores(
    extractions: list[Extraction],
    pages: list[GeneratedPage],
    predicates: list[str] | None = None,
    candidates: list[PageCandidates] | None = None,
    threshold: float = 0.5,
) -> dict[str, PRF]:
    """Per-predicate node-level P/R/F1 over an evaluation page set.

    ``extractions[i].page_index`` indexes into ``pages``.  When
    ``candidates`` is supplied, the ``name`` predicate is scored from each
    page's identified subject; otherwise ``name`` is skipped.
    """
    wanted = set(predicates) if predicates is not None else None
    scores: dict[str, PRF] = defaultdict(PRF)
    correct_instances: set[tuple[int, str, str]] = set()

    for extraction in extractions:
        predicate = extraction.predicate
        if wanted is not None and predicate not in wanted:
            continue
        page = pages[extraction.page_index]
        emission = page.emission_for_node(extraction.node)
        if emission is not None and emission.predicate == predicate:
            scores[predicate].tp += 1
            correct_instances.add(
                (
                    extraction.page_index,
                    predicate,
                    normalize_text(emission.object_value or extraction.object),
                )
            )
        else:
            scores[predicate].fp += 1

    for page_index, page in enumerate(pages):
        for predicate, value in _gold_instances(page, wanted):
            if predicate == NAME_PREDICATE:
                continue
            if (page_index, predicate, value) not in correct_instances:
                scores[predicate].fn += 1

    if candidates is not None and (wanted is None or NAME_PREDICATE in wanted):
        name_score = PRF()
        by_page = {c.page_index: c for c in candidates}
        for page_index, page in enumerate(pages):
            if page.topic_name is None:
                continue
            candidate = by_page.get(page_index)
            predicted = (
                candidate.subject
                if candidate is not None and candidate.name_confidence >= threshold
                else None
            )
            if predicted is None:
                name_score.fn += 1
            elif normalize_text(predicted) == normalize_text(page.topic_name):
                name_score.tp += 1
            else:
                name_score.fp += 1
                name_score.fn += 1
        scores[NAME_PREDICATE] = name_score
    return dict(scores)


def page_hit_scores(
    extractions: list[Extraction],
    pages: list[GeneratedPage],
    predicates: list[str],
    candidates: list[PageCandidates] | None = None,
    threshold: float = 0.5,
) -> dict[str, PRF]:
    """Hao et al. page-hit scoring: one prediction per predicate per page.

    For each (page, predicate): the system's highest-confidence prediction
    is compared by string against the page's truth surfaces.
    """
    best: dict[tuple[int, str], Extraction] = {}
    for extraction in extractions:
        key = (extraction.page_index, extraction.predicate)
        current = best.get(key)
        if current is None or extraction.confidence > current.confidence:
            best[key] = extraction

    scores: dict[str, PRF] = {p: PRF() for p in predicates}
    by_page = {c.page_index: c for c in (candidates or [])}
    for page_index, page in enumerate(pages):
        for predicate in predicates:
            if predicate == NAME_PREDICATE:
                truth_surfaces = (
                    {normalize_text(page.topic_name)} if page.topic_name else set()
                )
                candidate = by_page.get(page_index)
                predicted = (
                    candidate.subject
                    if candidate is not None and candidate.name_confidence >= threshold
                    else None
                )
            else:
                truth_surfaces = {
                    normalize_text(s)
                    for s in page.truth.surfaces.get(predicate, set())
                }
                hit = best.get((page_index, predicate))
                predicted = hit.object if hit is not None else None
            if predicted is None:
                if truth_surfaces:
                    scores[predicate].fn += 1
                continue
            if normalize_text(predicted) in truth_surfaces:
                scores[predicate].tp += 1
            else:
                scores[predicate].fp += 1
                if truth_surfaces:
                    scores[predicate].fn += 1
    return scores


def annotation_scores(
    annotated_pages: list[AnnotatedPage],
    pages: list[GeneratedPage],
    kb: KnowledgeBase,
    predicates: list[str] | None = None,
) -> dict[str, PRF]:
    """Annotation quality (Table 6).

    Precision: an annotation is correct iff its node asserts that
    predicate.  Recall: "the fraction of facts from KB that were correctly
    annotated" — for each annotated page, the gold set is the page's truth
    instances that the KB also contains for the true topic entity.
    """
    wanted = set(predicates) if predicates is not None else None
    scores: dict[str, PRF] = defaultdict(PRF)

    for annotated in annotated_pages:
        page = pages[annotated.page_index]
        correct: set[tuple[str, str]] = set()
        for annotation in annotated.annotations:
            predicate = annotation.predicate
            if wanted is not None and predicate not in wanted:
                continue
            emission = page.emission_for_node(annotation.node)
            if emission is not None and emission.predicate == predicate:
                scores[predicate].tp += 1
                correct.add((predicate, normalize_text(emission.object_value or "")))
            else:
                scores[predicate].fp += 1

        # Gold: page truth ∩ KB facts about the true topic.
        true_topic = page.topic_entity_id
        if true_topic is None or true_topic not in kb.entities:
            continue
        kb_values: dict[str, set[str]] = defaultdict(set)
        for triple in kb.triples_for_subject(true_topic):
            for surface in kb.object_surfaces(triple):
                kb_values[triple.predicate].add(normalize_text(surface))
        for predicate, values in page.truth.objects.items():
            if wanted is not None and predicate not in wanted:
                continue
            for value in values:
                normalized = normalize_text(value)
                if normalized in kb_values.get(predicate, set()):
                    if (predicate, normalized) not in correct:
                        scores[predicate].fn += 1
    return dict(scores)


def topic_scores(
    topics: dict[int, TopicResult],
    pages: list[GeneratedPage],
    kb: KnowledgeBase,
) -> PRF:
    """Topic identification accuracy (Table 7).

    Precision over assigned pages; recall over pages whose true topic
    exists in the KB (the paper's "strong keys" subset).
    """
    score = PRF()
    for page_index, page in enumerate(pages):
        truth = page.topic_entity_id
        assigned = topics.get(page_index)
        if assigned is not None:
            if truth is not None and assigned.entity_id == truth:
                score.tp += 1
            else:
                score.fp += 1
        if truth is not None and truth in kb.entities:
            if assigned is None or assigned.entity_id != truth:
                score.fn += 1
    return score


def extraction_precision(
    extractions: list[Extraction], pages: list[GeneratedPage]
) -> tuple[int, int]:
    """(correct, total) over node-level truth — the Table 8 per-site metric."""
    correct = 0
    for extraction in extractions:
        page = pages[extraction.page_index]
        emission = page.emission_for_node(extraction.node)
        if emission is not None and emission.predicate == extraction.predicate:
            correct += 1
    return correct, len(extractions)
