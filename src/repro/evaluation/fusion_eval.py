"""Scoring fused facts: precision@k before and after cross-site fusion.

The paper measures extraction precision per page; after fusion the unit
of evaluation is the *fact* — one canonicalized ``(subject, predicate,
object)`` regardless of how many pages or sites asserted it.  Fusion
claims to re-rank that fact set so that truth rises: this module
measures the claim as precision@k of the fused ranking (by noisy-OR
score) against the unfused ranking (each fact at its single best
extraction confidence), at equal yield.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.fusion.fuse import FactKey, FusedFact, fact_key
from repro.kb.ontology import NAME_PREDICATE
from repro.kb.store import KnowledgeBase

__all__ = [
    "dataset_fact_keys",
    "fusion_gain",
    "kb_fact_keys",
    "precision_at_k",
    "rank_unfused",
]


def kb_fact_keys(kb: KnowledgeBase) -> set[FactKey]:
    """Canonical keys of every fact the KB asserts.

    Each triple contributes one key per object surface (all surfaces of
    an entity object, all literal variants of a literal object) — any of
    those renderings extracted from a page is the same KB fact.
    """
    keys: set[FactKey] = set()
    for triple in kb.triples:
        subject = kb.entity(triple.subject).name
        for surface in kb.object_surfaces(triple):
            keys.add(fact_key(subject, triple.predicate, surface))
    return keys


def dataset_fact_keys(sites: Iterable) -> set[FactKey]:
    """Canonical keys of every true fact asserted by generated pages.

    ``sites`` holds dataset site objects whose ``pages`` are
    :class:`~repro.datasets.render.GeneratedPage`; the ``name`` predicate
    is skipped (it restates the topic, not a relation).

    Both the canonical object values *and* the page's surface renderings
    contribute keys — the page-hit protocol's stance: an extraction that
    faithfully reproduces how the page rendered a true value is correct,
    even when the rendering is ambiguous (a ``dd/mm`` date that
    canonicalizes month-first still keys onto a truth surface).
    """
    keys: set[FactKey] = set()
    for site in sites:
        for page in site.pages:
            if not page.topic_name:
                continue
            for predicate, values in page.truth.objects.items():
                if predicate == NAME_PREDICATE:
                    continue
                for value in values:
                    keys.add(fact_key(page.topic_name, predicate, value))
                for surface in page.truth.surfaces.get(predicate, ()):
                    keys.add(fact_key(page.topic_name, predicate, surface))
    return keys


def rank_unfused(
    extractions_by_site: dict[str, list],
) -> list[tuple[FactKey, float]]:
    """The pre-fusion fact ranking: distinct facts at best confidence.

    Every extraction across every site collapses onto its canonical key;
    a fact's rank confidence is the single best extraction anywhere.
    Sorted by descending confidence, then key — deterministic.
    """
    best: dict[FactKey, float] = {}
    for extractions in extractions_by_site.values():
        for extraction in extractions:
            key = fact_key(
                extraction.subject, extraction.predicate, extraction.object
            )
            current = best.get(key)
            if current is None or extraction.confidence > current:
                best[key] = extraction.confidence
    ranked = sorted(best.items(), key=lambda item: (-item[1], item[0]))
    return ranked


def precision_at_k(
    ranked_keys: Sequence[FactKey], truth: set[FactKey], k: int
) -> float | None:
    """Fraction of the top-k ranked facts present in ``truth``
    (None when the ranking is empty or k < 1)."""
    if k < 1 or not ranked_keys:
        return None
    top = ranked_keys[:k]
    return sum(1 for key in top if key in truth) / len(top)


def fusion_gain(
    fused: Sequence[FusedFact],
    extractions_by_site: dict[str, list],
    truth: set[FactKey],
    ks: Sequence[int] = (),
    yield_k: int | None = None,
) -> dict:
    """Precision@k before/after fusion, plus the equal-yield comparison.

    ``equal_yield`` evaluates both rankings at the same k, isolating
    ranking quality from yield.  By default k is the corroborated fact
    count (fused facts with 2+ supporting sites — the facts fusion
    actually promotes); when none are corroborated, or ``yield_k`` is
    given, that (or the full fused count) is used instead.
    """
    fused_keys = [fact.key() for fact in fused]
    unfused_keys = [key for key, _ in rank_unfused(extractions_by_site)]
    if yield_k is None:
        yield_k = sum(1 for fact in fused if fact.n_sites >= 2)
        if yield_k == 0:
            yield_k = len(fused_keys)
    at_k = {
        k: {
            "fused": precision_at_k(fused_keys, truth, k),
            "unfused": precision_at_k(unfused_keys, truth, k),
        }
        for k in ks
    }
    return {
        "n_fused": len(fused_keys),
        "n_unfused": len(unfused_keys),
        "equal_yield": {
            "k": yield_k,
            "fused": precision_at_k(fused_keys, truth, yield_k),
            "unfused": precision_at_k(unfused_keys, truth, yield_k),
        },
        "at_k": at_k,
    }
