"""Shared experiment plumbing: splits, system runners, result containers."""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.baselines.ceres_topic import make_ceres_topic_pipeline
from repro.baselines.vertex import TrainingPage, VertexPlusPlus
from repro.core.config import CeresConfig
from repro.core.extraction.extractor import Extraction, PageCandidates
from repro.core.pipeline import CeresPipeline, CeresResult
from repro.datasets.render import GeneratedPage
from repro.kb.ontology import NAME_PREDICATE
from repro.kb.store import KnowledgeBase

__all__ = [
    "split_pages",
    "SiteRun",
    "run_ceres",
    "run_ceres_topic",
    "run_vertex",
    "ground_truth_training_pages",
]


def split_pages(
    pages: list[GeneratedPage], seed: int = 0
) -> tuple[list[GeneratedPage], list[GeneratedPage]]:
    """The paper's split: half for annotation/training, half for evaluation."""
    indices = list(range(len(pages)))
    random.Random(seed).shuffle(indices)
    half = len(indices) // 2
    train = [pages[i] for i in sorted(indices[:half])]
    evaluation = [pages[i] for i in sorted(indices[half:])]
    return train, evaluation


@dataclass
class SiteRun:
    """Output of one system on one site."""

    train_pages: list[GeneratedPage]
    eval_pages: list[GeneratedPage]
    extractions: list[Extraction] = field(default_factory=list)
    candidates: list[PageCandidates] = field(default_factory=list)
    result: CeresResult | None = None  # CERES-family runs only


def run_ceres(
    kb: KnowledgeBase,
    train_pages: list[GeneratedPage],
    eval_pages: list[GeneratedPage],
    config: CeresConfig | None = None,
) -> SiteRun:
    """CERES-Full on one site: annotate/train on the train half, extract
    from the eval half."""
    config = config or CeresConfig()
    pipeline = CeresPipeline(kb, config)
    result = pipeline.run(
        [p.document for p in train_pages], [p.document for p in eval_pages]
    )
    return SiteRun(train_pages, eval_pages, result.extractions, result.candidates, result)


def run_ceres_topic(
    kb: KnowledgeBase,
    train_pages: list[GeneratedPage],
    eval_pages: list[GeneratedPage],
    config: CeresConfig | None = None,
) -> SiteRun:
    """CERES-Topic (all-mentions annotation) on one site."""
    config = config or CeresConfig()
    pipeline = make_ceres_topic_pipeline(kb, config)
    result = pipeline.run(
        [p.document for p in train_pages], [p.document for p in eval_pages]
    )
    return SiteRun(train_pages, eval_pages, result.extractions, result.candidates, result)


def ground_truth_training_pages(
    pages: list[GeneratedPage], predicates: list[str] | None = None
) -> list[TrainingPage]:
    """Perfect manual annotations for Vertex++, read off the ground truth."""
    wanted = set(predicates) if predicates is not None else None
    training: list[TrainingPage] = []
    for page in pages:
        annotations: dict[str, list] = {}
        for node, emission in page.aligned():
            predicate = emission.predicate
            if predicate is None:
                continue
            if wanted is not None and predicate not in wanted and predicate != NAME_PREDICATE:
                continue
            annotations.setdefault(predicate, []).append(node)
        training.append(TrainingPage(page.document, annotations))
    return training


def run_vertex(
    train_pages: list[GeneratedPage],
    eval_pages: list[GeneratedPage],
    predicates: list[str] | None = None,
    n_annotated: int = 2,
) -> SiteRun:
    """Vertex++ on one site: learn from ``n_annotated`` manually annotated
    pages (the paper: "Vertex++ required two pages per site")."""
    training = ground_truth_training_pages(train_pages[:n_annotated], predicates)
    model = VertexPlusPlus().fit(training)
    extractions = model.extract([p.document for p in eval_pages])
    # Vertex always "identifies" a name via its name rule; build candidate
    # records so name scoring is uniform across systems.
    candidates = []
    by_page: dict[int, str] = {}
    for page_index, page in enumerate(eval_pages):
        page_extractions = model.extract_page(page.document, page_index)
        subject = page_extractions[0].subject if page_extractions else None
        candidates.append(PageCandidates(page_index, subject, 1.0 if subject else 0.0, []))
        if subject:
            by_page[page_index] = subject
    return SiteRun(train_pages, eval_pages, extractions, candidates, None)
