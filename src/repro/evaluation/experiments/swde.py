"""SWDE experiments: Tables 1, 3, 4 and Figures 4, 5 of the paper."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.ceres_baseline import CeresBaseline, MemoryBudgetExceeded
from repro.core.config import CeresConfig
from repro.datasets.swde import (
    SWDEDataset,
    VERTICAL_PREDICATES,
    VERTICALS,
    generate_swde,
    seed_kb_for,
)
from repro.evaluation.experiments.common import (
    SiteRun,
    run_ceres,
    run_ceres_topic,
    run_vertex,
    split_pages,
)
from repro.evaluation.report import format_number, format_prf, format_table
from repro.evaluation.scoring import node_level_scores, page_hit_scores
from repro.kb.ontology import NAME_PREDICATE
from repro.ml.metrics import PRF, mean_prf

__all__ = [
    "Table1Result",
    "run_table1",
    "Table3Result",
    "run_table3",
    "Table4Result",
    "run_table4",
    "Figure4Result",
    "run_figure4",
    "Figure5Result",
    "run_figure5",
    "scored_predicates",
]

#: Reference F1 numbers from the paper's Table 3 (prior systems), included
#: in reports for shape comparison.  Keyed by system, then vertical.
PAPER_TABLE3 = {
    "Hao et al. [19]": {"movie": 0.79, "nbaplayer": 0.82, "university": 0.83, "book": 0.86},
    "XTPath [7]": {"movie": 0.94, "nbaplayer": 0.98, "university": 0.98, "book": 0.97},
    "Vertex++ (paper)": {"movie": 0.90, "nbaplayer": 0.97, "university": 1.00, "book": 0.94},
    "CERES-Baseline (paper)": {"movie": None, "nbaplayer": 0.78, "university": 0.72, "book": 0.27},
    "CERES-Topic (paper)": {"movie": 0.99, "nbaplayer": 0.97, "university": 0.96, "book": 0.72},
    "CERES-Full (paper)": {"movie": 0.99, "nbaplayer": 0.98, "university": 0.94, "book": 0.76},
}


def scored_predicates(vertical: str, distantly_supervised: bool) -> list[str]:
    """Predicates scored for a vertical.

    Distantly supervised systems skip predicates absent from the seed KB
    (the Movie KB has no MPAA ratings — Table 3 footnote a).
    """
    predicates = list(VERTICAL_PREDICATES[vertical])
    if distantly_supervised and vertical == "movie":
        predicates.remove("mpaa_rating")
    return predicates


# --------------------------------------------------------------------------
# Table 1: dataset overview
# --------------------------------------------------------------------------


@dataclass
class Table1Result:
    rows: list[list[str]] = field(default_factory=list)

    def format(self) -> str:
        return format_table(
            ["Vertical", "#Sites", "#Pages", "Attributes"],
            self.rows,
            title="Table 1: SWDE verticals (synthetic analogue)",
        )


def run_table1(
    n_sites: int = 10, pages_per_site: int = 32, seed: int = 0
) -> Table1Result:
    result = Table1Result()
    for vertical in VERTICALS:
        dataset = generate_swde(vertical, n_sites, pages_per_site, seed)
        n_pages = sum(len(site.pages) for site in dataset.sites)
        attributes = ", ".join(
            p for p in VERTICAL_PREDICATES[vertical] if p != NAME_PREDICATE
        )
        display = {"movie": "Movie", "book": "Book", "nbaplayer": "NBA Player",
                   "university": "University"}[vertical]
        result.rows.append(
            [display, str(len(dataset.sites)), format_number(n_pages),
             f"title/name, {attributes}"]
        )
    return result


# --------------------------------------------------------------------------
# Table 3: F1 comparison across systems
# --------------------------------------------------------------------------


@dataclass
class Table3Result:
    #: system -> vertical -> macro F1 (None = could not complete, as in the paper)
    f1: dict[str, dict[str, float | None]] = field(default_factory=dict)

    def format(self) -> str:
        rows = []
        for system, by_vertical in PAPER_TABLE3.items():
            rows.append(
                [system + " *"]
                + [format_prf(by_vertical.get(v)) for v in VERTICALS]
            )
        rows.append(["-" * 24] + ["----"] * len(VERTICALS))
        for system, by_vertical in self.f1.items():
            rows.append(
                [system] + [format_prf(by_vertical.get(v)) for v in VERTICALS]
            )
        return format_table(
            ["System", "Movie", "Book", "NBA Player", "University"],
            [
                [r[0], r[1 + VERTICALS.index("movie")], r[1 + VERTICALS.index("book")],
                 r[1 + VERTICALS.index("nbaplayer")], r[1 + VERTICALS.index("university")]]
                for r in rows
            ],
            title="Table 3: SWDE page-hit F1 (* = paper-reported reference)",
        )


def _site_page_hit_f1s(
    run: SiteRun, predicates: list[str], threshold: float
) -> list[float]:
    scores = page_hit_scores(
        run.extractions, run.eval_pages, predicates, run.candidates, threshold
    )
    return [score.f1 for score in scores.values() if score.defined]


def run_table3(
    n_sites: int = 6,
    pages_per_site: int = 32,
    seed: int = 0,
    verticals: tuple[str, ...] = VERTICALS,
    baseline_pair_budget: int = 1_000,
) -> Table3Result:
    """Run all four implemented systems on every vertical.

    ``baseline_pair_budget`` bounds the candidate pairs CERES-Baseline may
    examine per site — the memory proxy for the paper's 32 GB machine.
    The default sits an order of magnitude above what the Book/NBA/
    University verticals need (~100 pairs/site) and well below the Movie
    vertical's cast-heavy pages (~2,000 pairs/site), reproducing the
    paper's Movie-only out-of-memory NA at proportional scale.
    """
    config = CeresConfig()
    result = Table3Result()
    systems = ("Vertex++", "CERES-Baseline", "CERES-Topic", "CERES-Full")
    for system in systems:
        result.f1[system] = {}

    for vertical in verticals:
        dataset = generate_swde(vertical, n_sites, pages_per_site, seed)
        kb = seed_kb_for(dataset, seed)
        ds_predicates = scored_predicates(vertical, distantly_supervised=True)
        manual_predicates = scored_predicates(vertical, distantly_supervised=False)

        per_system_f1s: dict[str, list[float]] = {system: [] for system in systems}
        baseline_failed = False
        for site in dataset.sites:
            train_pages, eval_pages = split_pages(site.pages, seed)
            train_docs = [p.document for p in train_pages]
            eval_docs = [p.document for p in eval_pages]

            vertex_run = run_vertex(train_pages, eval_pages, manual_predicates)
            per_system_f1s["Vertex++"].extend(
                _site_page_hit_f1s(vertex_run, manual_predicates, config.confidence_threshold)
            )

            full_run = run_ceres(kb, train_pages, eval_pages, config)
            per_system_f1s["CERES-Full"].extend(
                _site_page_hit_f1s(full_run, ds_predicates, config.confidence_threshold)
            )

            topic_run = run_ceres_topic(kb, train_pages, eval_pages, config)
            per_system_f1s["CERES-Topic"].extend(
                _site_page_hit_f1s(topic_run, ds_predicates, config.confidence_threshold)
            )

            if not baseline_failed:
                try:
                    baseline = CeresBaseline(kb, config, pair_budget=baseline_pair_budget)
                    baseline.fit(train_docs)
                    extractions = baseline.extract(eval_docs)
                    pair_predicates = [p for p in ds_predicates if p != NAME_PREDICATE]
                    run = SiteRun(train_pages, eval_pages, extractions, [])
                    per_system_f1s["CERES-Baseline"].extend(
                        _site_page_hit_f1s(run, pair_predicates, config.confidence_threshold)
                    )
                except (MemoryBudgetExceeded, ValueError):
                    baseline_failed = True

        for system in systems:
            f1s = per_system_f1s[system]
            if system == "CERES-Baseline" and baseline_failed:
                result.f1[system][vertical] = None
            else:
                result.f1[system][vertical] = (
                    sum(f1s) / len(f1s) if f1s else 0.0
                )
    return result


# --------------------------------------------------------------------------
# Table 4: per-predicate P/R/F1, Vertex++ vs CERES-Full
# --------------------------------------------------------------------------


@dataclass
class Table4Result:
    #: vertical -> predicate -> {"vertex": PRF|None, "ceres": PRF|None}
    scores: dict[str, dict[str, dict[str, PRF | None]]] = field(default_factory=dict)

    def format(self) -> str:
        rows = []
        for vertical, predicates in self.scores.items():
            both: dict[str, list[PRF]] = {"vertex": [], "ceres": []}
            for predicate, systems in predicates.items():
                cells = [vertical, predicate]
                for key in ("vertex", "ceres"):
                    score = systems.get(key)
                    if score is None or not score.defined:
                        cells.extend(["NA", "NA", "NA"])
                    else:
                        cells.extend(format_prf(v) for v in score.as_tuple())
                        both[key].append(score)
                rows.append(cells)
            average = [vertical, "Average"]
            for key in ("vertex", "ceres"):
                average.extend(format_prf(v) for v in mean_prf(both[key]))
            rows.append(average)
        return format_table(
            ["Vertical", "Predicate", "V++ P", "V++ R", "V++ F1",
             "CERES P", "CERES R", "CERES F1"],
            rows,
            title="Table 4: per-predicate extraction quality (node-level)",
        )


def run_table4(
    n_sites: int = 6,
    pages_per_site: int = 32,
    seed: int = 0,
    verticals: tuple[str, ...] = VERTICALS,
) -> Table4Result:
    config = CeresConfig()
    result = Table4Result()
    for vertical in verticals:
        dataset = generate_swde(vertical, n_sites, pages_per_site, seed)
        kb = seed_kb_for(dataset, seed)
        ds_predicates = scored_predicates(vertical, True)
        manual_predicates = scored_predicates(vertical, False)
        vertex_total: dict[str, PRF] = {p: PRF() for p in manual_predicates}
        ceres_total: dict[str, PRF] = {p: PRF() for p in manual_predicates}
        for site in dataset.sites:
            train_pages, eval_pages = split_pages(site.pages, seed)
            vertex_run = run_vertex(train_pages, eval_pages, manual_predicates)
            for predicate, score in node_level_scores(
                vertex_run.extractions, eval_pages, manual_predicates,
                vertex_run.candidates, config.confidence_threshold,
            ).items():
                vertex_total[predicate] += score
            ceres_run = run_ceres(kb, train_pages, eval_pages, config)
            for predicate, score in node_level_scores(
                ceres_run.extractions, eval_pages, ds_predicates,
                ceres_run.candidates, config.confidence_threshold,
            ).items():
                ceres_total[predicate] += score
        result.scores[vertical] = {}
        for predicate in manual_predicates:
            result.scores[vertical][predicate] = {
                "vertex": vertex_total[predicate],
                "ceres": ceres_total[predicate] if predicate in ds_predicates else None,
            }
    return result


# --------------------------------------------------------------------------
# Figure 4: Book vertical F1 vs seed-KB overlap
# --------------------------------------------------------------------------


@dataclass
class Figure4Result:
    #: (site name, overlap pages, macro F1)
    points: list[tuple[str, int, float]] = field(default_factory=list)

    def format(self) -> str:
        rows = [
            [name, str(overlap), format_prf(f1)]
            for name, overlap, f1 in sorted(self.points, key=lambda p: p[1])
        ]
        return format_table(
            ["Site", "#Pages overlapping KB", "F1"],
            rows,
            title="Figure 4: Book vertical — F1 vs seed-KB overlap",
        )


def run_figure4(
    n_sites: int = 10, pages_per_site: int = 32, seed: int = 0
) -> Figure4Result:
    config = CeresConfig()
    dataset = generate_swde("book", n_sites, pages_per_site, seed)
    kb = seed_kb_for(dataset, seed)
    kb_titles = {kb.entity(e).name for e in kb.entities}
    predicates = scored_predicates("book", True)
    result = Figure4Result()
    # The KB-source site is omitted, as the paper omits abebooks.
    for site in dataset.sites[1:]:
        overlap = sum(1 for page in site.pages if page.topic_name in kb_titles)
        train_pages, eval_pages = split_pages(site.pages, seed)
        run = run_ceres(kb, train_pages, eval_pages, config)
        f1s = _site_page_hit_f1s(run, predicates, config.confidence_threshold)
        f1 = sum(f1s) / len(f1s) if f1s else 0.0
        result.points.append((site.name, overlap, f1))
    return result


# --------------------------------------------------------------------------
# Figure 5: Movie vertical F1 vs number of annotated pages used
# --------------------------------------------------------------------------


@dataclass
class Figure5Result:
    #: (cap on annotated pages, macro F1)
    points: list[tuple[int, float]] = field(default_factory=list)

    def format(self) -> str:
        rows = [[str(cap), format_prf(f1)] for cap, f1 in self.points]
        return format_table(
            ["#Annotated pages", "F1"],
            rows,
            title="Figure 5: Movie vertical — F1 vs annotated pages used (log sweep)",
        )


def run_figure5(
    pages_per_site: int = 48,
    seed: int = 0,
    caps: tuple[int, ...] = (1, 2, 4, 8, 16, 24),
    n_sites: int = 3,
) -> Figure5Result:
    """Cap the number of annotated pages available to training."""
    from repro.core.annotation.examples import build_training_examples
    from repro.core.pipeline import CeresPipeline

    config = CeresConfig()
    dataset = generate_swde("movie", n_sites, pages_per_site, seed)
    kb = seed_kb_for(dataset, seed)
    predicates = scored_predicates("movie", True)
    result = Figure5Result()
    runs = []
    for site in dataset.sites:
        train_pages, eval_pages = split_pages(site.pages, seed)
        pipeline = CeresPipeline(kb, config)
        annotated = pipeline.annotate([p.document for p in train_pages])
        originals = [list(c.annotated_pages) for c in annotated.cluster_results]
        runs.append((pipeline, annotated, originals, train_pages, eval_pages))
    for cap in caps:
        f1s: list[float] = []
        for pipeline, capped, originals, train_pages, eval_pages in runs:
            for cluster, original in zip(capped.cluster_results, originals):
                cluster.annotated_pages = original[:cap]
                cluster.model = None
            capped.annotated_pages = [
                p for c in capped.cluster_results for p in c.annotated_pages
            ]
            pipeline.train([p.document for p in train_pages], capped)
            pipeline.extract(capped, [p.document for p in eval_pages])
            run = SiteRun(
                train_pages, eval_pages, capped.extractions, capped.candidates
            )
            f1s.extend(
                _site_page_hit_f1s(run, predicates, config.confidence_threshold)
            )
        result.points.append((cap, sum(f1s) / len(f1s) if f1s else 0.0))
    return result
