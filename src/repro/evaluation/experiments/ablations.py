"""Ablation experiments for the design choices DESIGN.md calls out.

These go beyond the paper's own tables: each isolates one mechanism of the
CERES pipeline and measures its contribution on the IMDb testbed, where
the hazards that motivate the mechanisms are planted.

* **Annotation evidence** (Section 3.2): local evidence only vs local +
  global clustering (CERES-Full) vs neither (all-mentions = CERES-Topic).
* **Negative sampling** (Section 4.1): list-index exclusion on/off and the
  negatives-per-positive ratio r.
* **Feature families** (Section 4.2): structural features only, text
  features only, both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.ceres_topic import make_ceres_topic_pipeline
from repro.core.annotation.relation import RelationAnnotator
from repro.core.config import CeresConfig
from repro.core.pipeline import CeresPipeline
from repro.datasets.imdb import IMDbDataset, PERSON_PREDICATES, generate_imdb
from repro.evaluation.experiments.common import split_pages
from repro.evaluation.report import format_prf, format_table
from repro.evaluation.scoring import node_level_scores
from repro.ml.metrics import PRF

__all__ = [
    "AblationResult",
    "run_annotation_evidence_ablation",
    "run_negative_sampling_ablation",
    "run_feature_ablation",
]


@dataclass
class AblationResult:
    title: str
    #: variant name -> pooled PRF over person-page predicates
    scores: dict[str, PRF] = field(default_factory=dict)

    def format(self) -> str:
        rows = [
            [variant] + [format_prf(v) for v in score.as_tuple()]
            for variant, score in self.scores.items()
        ]
        return format_table(["Variant", "P", "R", "F1"], rows, title=self.title)


class _LocalOnlyAnnotator(RelationAnnotator):
    """Algorithm 2 with the global clustering step disabled: local ties and
    over-represented objects are simply dropped."""

    def _choose_mention(self, obj, co_mentions, frequently_duplicated,
                        over_represented, clusters_for):
        best = self.best_local_mentions(obj.mentions, co_mentions)
        if len(best) == 1:
            return best[0]
        return None


def _pooled_scores(run_extractions, eval_pages, candidates, config) -> PRF:
    scores = node_level_scores(
        run_extractions, eval_pages, PERSON_PREDICATES, candidates,
        config.confidence_threshold,
    )
    total = PRF()
    for score in scores.values():
        total += score
    return total


def run_annotation_evidence_ablation(
    seed: int = 0, dataset: IMDbDataset | None = None
) -> AblationResult:
    """All-mentions vs local-only vs local+global on IMDb person pages."""
    config = CeresConfig()
    if dataset is None:
        dataset = generate_imdb(seed, n_films=40, n_people=36, n_episodes=12)
    kb = dataset.kb
    assert kb is not None
    train_pages, eval_pages = split_pages(dataset.person_pages, seed)
    train_docs = [p.document for p in train_pages]
    eval_docs = [p.document for p in eval_pages]

    result = AblationResult("Ablation: relation-annotation evidence (IMDb person pages)")

    pipeline = make_ceres_topic_pipeline(kb, config)
    run = pipeline.run(train_docs, eval_docs)
    result.scores["all-mentions (CERES-Topic)"] = _pooled_scores(
        run.extractions, eval_pages, run.candidates, config
    )

    pipeline = CeresPipeline(kb, config)
    pipeline.annotator = _LocalOnlyAnnotator(kb, config, pipeline.matcher)
    run = pipeline.run(train_docs, eval_docs)
    result.scores["local evidence only"] = _pooled_scores(
        run.extractions, eval_pages, run.candidates, config
    )

    pipeline = CeresPipeline(kb, config)
    run = pipeline.run(train_docs, eval_docs)
    result.scores["local + global (CERES-Full)"] = _pooled_scores(
        run.extractions, eval_pages, run.candidates, config
    )
    return result


def run_negative_sampling_ablation(
    seed: int = 0, dataset: IMDbDataset | None = None
) -> AblationResult:
    """Negatives-per-positive ratio and list-index exclusion."""
    if dataset is None:
        dataset = generate_imdb(seed, n_films=40, n_people=36, n_episodes=12)
    kb = dataset.kb
    assert kb is not None
    train_pages, eval_pages = split_pages(dataset.person_pages, seed)
    train_docs = [p.document for p in train_pages]
    eval_docs = [p.document for p in eval_pages]

    result = AblationResult("Ablation: negative sampling (IMDb person pages)")
    variants = [
        ("r=1, with list exclusion", CeresConfig(negatives_per_positive=1)),
        ("r=3, with list exclusion (paper)", CeresConfig(negatives_per_positive=3)),
        ("r=5, with list exclusion", CeresConfig(negatives_per_positive=5)),
    ]
    for name, config in variants:
        pipeline = CeresPipeline(kb, config)
        run = pipeline.run(train_docs, eval_docs)
        result.scores[name] = _pooled_scores(
            run.extractions, eval_pages, run.candidates, config
        )

    # Disable list exclusion by monkey-free configuration: rebuild examples
    # with patterns suppressed via a subclassed pipeline stage.
    import repro.core.annotation.examples as examples_mod

    config = CeresConfig(negatives_per_positive=3)
    original = examples_mod.list_exclusion_patterns
    try:
        examples_mod.list_exclusion_patterns = lambda page: []
        pipeline = CeresPipeline(kb, config)
        run = pipeline.run(train_docs, eval_docs)
        result.scores["r=3, no list exclusion"] = _pooled_scores(
            run.extractions, eval_pages, run.candidates, config
        )
    finally:
        examples_mod.list_exclusion_patterns = original
    return result


def run_feature_ablation(
    seed: int = 0, dataset: IMDbDataset | None = None
) -> AblationResult:
    """Structural-only vs text-only vs both feature families."""
    if dataset is None:
        dataset = generate_imdb(seed, n_films=40, n_people=36, n_episodes=12)
    kb = dataset.kb
    assert kb is not None
    train_pages, eval_pages = split_pages(dataset.person_pages, seed)
    train_docs = [p.document for p in train_pages]
    eval_docs = [p.document for p in eval_pages]

    result = AblationResult("Ablation: node feature families (IMDb person pages)")
    variants = [
        ("structural only", CeresConfig(max_frequent_strings=0)),
        ("text only", CeresConfig(struct_ancestor_levels=0, struct_sibling_width=0)),
        ("structural + text (paper)", CeresConfig()),
    ]
    for name, config in variants:
        pipeline = CeresPipeline(kb, config)
        run = pipeline.run(train_docs, eval_docs)
        result.scores[name] = _pooled_scores(
            run.extractions, eval_pages, run.candidates, config
        )
    return result
