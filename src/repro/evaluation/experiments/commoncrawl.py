"""CommonCrawl experiments: Tables 2, 8, 9 and Figure 6 of the paper."""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.core.config import CeresConfig
from repro.core.pipeline import CeresPipeline, CeresResult
from repro.datasets.commoncrawl import (
    CommonCrawlDataset,
    DEFAULT_SITES,
    generate_commoncrawl,
)
from repro.datasets.entities import MovieUniverse
from repro.datasets.kbgen import kb_from_universe
from repro.evaluation.report import format_number, format_prf, format_table
from repro.evaluation.scoring import extraction_precision
from repro.kb.ontology import NAME_PREDICATE

__all__ = [
    "Table2Result",
    "run_table2",
    "SiteOutcome",
    "Table8Result",
    "run_table8",
    "Table9Result",
    "run_table9",
    "Figure6Result",
    "run_figure6",
]


# --------------------------------------------------------------------------
# Table 2: seed-KB profile
# --------------------------------------------------------------------------


@dataclass
class Table2Result:
    rows: list[list[str]] = field(default_factory=list)
    total_triples: int = 0

    def format(self) -> str:
        table = format_table(
            ["Entity Type", "#Instances", "#Predicates"],
            self.rows,
            title="Table 2: seed KB for the Movie vertical (synthetic analogue)",
        )
        return f"{table}\nTotal triples: {format_number(self.total_triples)}"


def run_table2(seed: int = 0, universe: MovieUniverse | None = None) -> Table2Result:
    if universe is None:
        universe = MovieUniverse(seed=seed, n_people=500, n_films=400, n_series=14,
                                 episodes_per_series=8)
    kb = kb_from_universe(
        universe.entities(), universe.facts(), universe.ontology, seed=seed
    )
    result = Table2Result(total_triples=len(kb))
    type_counts: Counter[str] = Counter(e.type for e in kb.entities.values())
    predicates_by_type: dict[str, set[str]] = defaultdict(set)
    for triple in kb.triples:
        subject_type = kb.entity(triple.subject).type
        predicates_by_type[subject_type].add(triple.predicate)
    display = {"person": "Person", "film": "Film", "series": "TV Series",
               "episode": "TV Episode"}
    for type_name in ("person", "film", "series", "episode"):
        result.rows.append(
            [
                display[type_name],
                format_number(type_counts.get(type_name, 0)),
                str(len(predicates_by_type.get(type_name, set()))),
            ]
        )
    return result


# --------------------------------------------------------------------------
# Table 8: per-site breakdown
# --------------------------------------------------------------------------


@dataclass
class SiteOutcome:
    """One row of Table 8."""

    name: str
    focus: str
    n_pages: int
    n_annotated_pages: int
    n_annotations: int
    n_extractions: int
    extracted_to_annotated_pages: float
    extraction_to_annotation: float
    precision: float | None  # None when nothing was extracted
    result: CeresResult | None = None


@dataclass
class Table8Result:
    sites: list[SiteOutcome] = field(default_factory=list)

    def totals(self) -> SiteOutcome:
        total_correct = 0
        total_scored = 0
        n_pages = n_ann_pages = n_ann = n_ext = 0
        for site in self.sites:
            n_pages += site.n_pages
            n_ann_pages += site.n_annotated_pages
            n_ann += site.n_annotations
            n_ext += site.n_extractions
            if site.precision is not None:
                total_correct += round(site.precision * site.n_extractions)
                total_scored += site.n_extractions
        return SiteOutcome(
            name="Total",
            focus="-",
            n_pages=n_pages,
            n_annotated_pages=n_ann_pages,
            n_annotations=n_ann,
            n_extractions=n_ext,
            extracted_to_annotated_pages=0.0,
            extraction_to_annotation=(n_ext / n_ann) if n_ann else 0.0,
            precision=(total_correct / total_scored) if total_scored else None,
        )

    def format(self) -> str:
        rows = []
        ordered = sorted(
            self.sites, key=lambda s: (-(s.precision if s.precision is not None else -1))
        )
        for site in ordered + [self.totals()]:
            rows.append(
                [
                    site.name,
                    site.focus,
                    format_number(site.n_pages),
                    format_number(site.n_annotated_pages),
                    format_number(site.n_annotations),
                    format_number(site.n_extractions),
                    f"{site.extraction_to_annotation:.2f}",
                    format_prf(site.precision),
                ]
            )
        return format_table(
            ["Website", "Focus", "#Pages", "#AnnPages", "#Annotations",
             "#Extractions", "Ext:Ann", "Precision"],
            rows,
            title="Table 8: long-tail movie websites at confidence 0.5",
        )


def run_table8(
    seed: int = 0,
    sites=DEFAULT_SITES,
    dataset: CommonCrawlDataset | None = None,
    threshold: float = 0.5,
) -> tuple[Table8Result, CommonCrawlDataset, dict[str, CeresResult]]:
    """Run the full pipeline over every long-tail site.

    Returns the table, the dataset, and per-site pipeline results so that
    Table 9 and Figure 6 can reuse the (expensive) runs.
    """
    config = CeresConfig(confidence_threshold=threshold)
    if dataset is None:
        dataset = generate_commoncrawl(seed, sites)
    table = Table8Result()
    results: dict[str, CeresResult] = {}
    for site in dataset.sites:
        pipeline = CeresPipeline(dataset.kb, config)
        documents = [p.document for p in site.pages]
        # The paper annotates and extracts over the full site (no split).
        result = pipeline.run(documents, documents)
        results[site.name] = result
        correct, total = extraction_precision(result.extractions, site.pages)
        extracted_pages = {e.page_index for e in result.extractions}
        annotated_pages = {p.page_index for p in result.annotated_pages}
        table.sites.append(
            SiteOutcome(
                name=site.name,
                focus=site.config.focus,
                n_pages=len(site.pages),
                n_annotated_pages=len(result.annotated_pages),
                n_annotations=result.annotation_count,
                n_extractions=total,
                extracted_to_annotated_pages=(
                    len(extracted_pages) / len(annotated_pages)
                    if annotated_pages
                    else 0.0
                ),
                extraction_to_annotation=(
                    total / result.annotation_count if result.annotation_count else 0.0
                ),
                precision=(correct / total) if total else None,
                result=result,
            )
        )
    return table, dataset, results


# --------------------------------------------------------------------------
# Table 9: top predicates
# --------------------------------------------------------------------------


@dataclass
class Table9Result:
    #: predicate -> (#annotations, #extractions, precision|None)
    rows: dict[str, tuple[int, int, float | None]] = field(default_factory=dict)

    def format(self) -> str:
        ordered = sorted(self.rows.items(), key=lambda kv: -kv[1][1])[:10]
        body = [
            [predicate, format_number(ann), format_number(ext), format_prf(precision)]
            for predicate, (ann, ext, precision) in ordered
        ]
        return format_table(
            ["Predicate", "#Annotations", "#Extractions", "Precision"],
            body,
            title="Table 9: most-extracted predicates on the long-tail corpus",
        )


def run_table9(
    dataset: CommonCrawlDataset,
    results: dict[str, "CeresResult"],
) -> Table9Result:
    annotations: Counter[str] = Counter()
    extractions: Counter[str] = Counter()
    correct: Counter[str] = Counter()
    for site in dataset.sites:
        result = results.get(site.name)
        if result is None:
            continue
        for page in result.annotated_pages:
            for annotation in page.annotations:
                annotations[annotation.predicate] += 1
        for extraction in result.extractions:
            extractions[extraction.predicate] += 1
            page = site.pages[extraction.page_index]
            emission = page.emission_for_node(extraction.node)
            if emission is not None and emission.predicate == extraction.predicate:
                correct[extraction.predicate] += 1
    table = Table9Result()
    # sorted(): set-union order is hash-seed-dependent, and Table9Result
    # breaks extraction-count ties by insertion order — iterate
    # deterministically so the report is byte-identical across runs.
    for predicate in sorted(set(annotations) | set(extractions)):
        if predicate == NAME_PREDICATE:
            continue
        n_ext = extractions[predicate]
        table.rows[predicate] = (
            annotations[predicate],
            n_ext,
            (correct[predicate] / n_ext) if n_ext else None,
        )
    return table


# --------------------------------------------------------------------------
# Figure 6: precision vs number of extractions across thresholds
# --------------------------------------------------------------------------


@dataclass
class Figure6Result:
    #: (threshold, #extractions, precision)
    points: list[tuple[float, int, float]] = field(default_factory=list)

    def format(self) -> str:
        rows = [
            [f"{threshold:.2f}", format_number(count), format_prf(precision)]
            for threshold, count, precision in self.points
        ]
        return format_table(
            ["Confidence threshold", "#Extractions", "Precision"],
            rows,
            title="Figure 6: precision / volume trade-off on the long-tail corpus",
        )


def run_figure6(
    dataset: CommonCrawlDataset,
    results: dict[str, "CeresResult"],
    thresholds: tuple[float, ...] = (0.5, 0.6, 0.7, 0.75, 0.8, 0.9, 0.95),
) -> Figure6Result:
    figure = Figure6Result()
    for threshold in thresholds:
        total = 0
        correct = 0
        for site in dataset.sites:
            result = results.get(site.name)
            if result is None:
                continue
            extractions = result.extractions_at(threshold)
            c, t = extraction_precision(extractions, site.pages)
            correct += c
            total += t
        figure.points.append(
            (threshold, total, (correct / total) if total else 0.0)
        )
    return figure
