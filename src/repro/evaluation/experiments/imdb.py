"""IMDb experiments: Tables 5, 6, and 7 of the paper.

The IMDb testbed compares CERES-Full against CERES-Topic on a complex
multi-relation site, measuring extraction quality (Table 5), annotation
quality (Table 6), and topic-identification accuracy (Table 7) on the
film/TV and person page populations separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.ceres_topic import make_ceres_topic_pipeline
from repro.core.config import CeresConfig
from repro.core.pipeline import CeresPipeline
from repro.datasets.imdb import (
    FILM_PREDICATES,
    IMDbDataset,
    PERSON_PREDICATES,
    generate_imdb,
)
from repro.evaluation.experiments.common import SiteRun, split_pages
from repro.evaluation.report import format_prf, format_table
from repro.evaluation.scoring import annotation_scores, node_level_scores, topic_scores
from repro.ml.metrics import PRF

__all__ = [
    "Table5Result",
    "run_table5",
    "Table6Result",
    "run_table6",
    "Table7Result",
    "run_table7",
]

#: Paper-reported "All Extractions" rows for shape reference.
PAPER_TABLE5_ALL = {
    ("person", "topic"): (0.36, 0.65, 0.46),
    ("person", "full"): (0.93, 0.68, 0.79),
    ("film", "topic"): (0.88, 0.59, 0.70),
    ("film", "full"): (0.99, 0.65, 0.78),
}


def _domain_predicates(domain: str) -> list[str]:
    return FILM_PREDICATES if domain == "film" else PERSON_PREDICATES


def _run_domain(
    dataset: IMDbDataset,
    domain: str,
    system: str,
    config: CeresConfig,
    seed: int,
) -> tuple[SiteRun, object]:
    """Run one system on one IMDb domain; returns the run + pipeline result."""
    pages = dataset.film_pages if domain == "film" else dataset.person_pages
    train_pages, eval_pages = split_pages(pages, seed)
    kb = dataset.kb
    assert kb is not None
    if system == "full":
        pipeline = CeresPipeline(kb, config)
    else:
        pipeline = make_ceres_topic_pipeline(kb, config)
    result = pipeline.run(
        [p.document for p in train_pages], [p.document for p in eval_pages]
    )
    run = SiteRun(train_pages, eval_pages, result.extractions, result.candidates, result)
    return run, result


# --------------------------------------------------------------------------
# Table 5: extraction quality
# --------------------------------------------------------------------------


@dataclass
class Table5Result:
    #: domain -> predicate -> {"topic": PRF, "full": PRF}
    scores: dict[str, dict[str, dict[str, PRF]]] = field(default_factory=dict)

    def format(self) -> str:
        rows = []
        for domain, predicates in self.scores.items():
            totals = {"topic": PRF(), "full": PRF()}
            for predicate, systems in predicates.items():
                cells = [domain, predicate]
                for key in ("topic", "full"):
                    score = systems[key]
                    totals[key] += score
                    if score.defined:
                        cells.extend(format_prf(v) for v in score.as_tuple())
                    else:
                        cells.extend(["NA"] * 3)
                rows.append(cells)
            all_row = [domain, "All Extractions"]
            for key in ("topic", "full"):
                all_row.extend(format_prf(v) for v in totals[key].as_tuple())
            rows.append(all_row)
            paper_topic = PAPER_TABLE5_ALL[(domain, "topic")]
            paper_full = PAPER_TABLE5_ALL[(domain, "full")]
            rows.append(
                [domain, "All (paper)*"]
                + [format_prf(v) for v in paper_topic]
                + [format_prf(v) for v in paper_full]
            )
        return format_table(
            ["Domain", "Predicate", "Topic P", "Topic R", "Topic F1",
             "Full P", "Full R", "Full F1"],
            rows,
            title="Table 5: IMDb extraction quality — CERES-Topic vs CERES-Full",
        )


def run_table5(
    seed: int = 0,
    n_films: int = 50,
    n_people: int = 40,
    n_episodes: int = 16,
    dataset: IMDbDataset | None = None,
) -> Table5Result:
    config = CeresConfig()
    if dataset is None:
        dataset = generate_imdb(seed, n_films, n_people, n_episodes)
    result = Table5Result()
    for domain in ("person", "film"):
        predicates = _domain_predicates(domain)
        result.scores[domain] = {p: {} for p in predicates}
        for system in ("topic", "full"):
            run, _ = _run_domain(dataset, domain, system, config, seed)
            scores = node_level_scores(
                run.extractions, run.eval_pages, predicates, run.candidates,
                config.confidence_threshold,
            )
            for predicate in predicates:
                result.scores[domain][predicate][system] = scores.get(predicate, PRF())
    return result


# --------------------------------------------------------------------------
# Table 6: annotation quality
# --------------------------------------------------------------------------


@dataclass
class Table6Result:
    scores: dict[str, dict[str, dict[str, PRF]]] = field(default_factory=dict)

    def format(self) -> str:
        rows = []
        for domain, predicates in self.scores.items():
            totals = {"topic": PRF(), "full": PRF()}
            for predicate, systems in predicates.items():
                cells = [domain, predicate]
                for key in ("topic", "full"):
                    score = systems[key]
                    totals[key] += score
                    if score.defined:
                        cells.extend(format_prf(v) for v in score.as_tuple())
                    else:
                        cells.extend(["NA"] * 3)
                rows.append(cells)
            all_row = [domain, "All Annotations"]
            for key in ("topic", "full"):
                all_row.extend(format_prf(v) for v in totals[key].as_tuple())
            rows.append(all_row)
        return format_table(
            ["Domain", "Predicate", "Topic P", "Topic R", "Topic F1",
             "Full P", "Full R", "Full F1"],
            rows,
            title="Table 6: IMDb annotation quality — CERES-Topic vs CERES-Full",
        )


def run_table6(
    seed: int = 0,
    n_films: int = 50,
    n_people: int = 40,
    n_episodes: int = 16,
    dataset: IMDbDataset | None = None,
) -> Table6Result:
    config = CeresConfig()
    if dataset is None:
        dataset = generate_imdb(seed, n_films, n_people, n_episodes)
    kb = dataset.kb
    assert kb is not None
    result = Table6Result()
    for domain in ("person", "film"):
        predicates = [p for p in _domain_predicates(domain) if p != "name"]
        result.scores[domain] = {p: {} for p in predicates}
        pages = dataset.film_pages if domain == "film" else dataset.person_pages
        train_pages, _ = split_pages(pages, seed)
        for system in ("topic", "full"):
            if system == "full":
                pipeline = CeresPipeline(kb, config)
            else:
                pipeline = make_ceres_topic_pipeline(kb, config)
            annotated = pipeline.annotate([p.document for p in train_pages])
            scores = annotation_scores(
                annotated.annotated_pages, train_pages, kb, predicates
            )
            for predicate in predicates:
                result.scores[domain][predicate][system] = scores.get(predicate, PRF())
    return result


# --------------------------------------------------------------------------
# Table 7: topic identification accuracy
# --------------------------------------------------------------------------


@dataclass
class Table7Result:
    scores: dict[str, PRF] = field(default_factory=dict)

    def format(self) -> str:
        rows = [
            [domain] + [format_prf(v) for v in score.as_tuple()]
            for domain, score in self.scores.items()
        ]
        return format_table(
            ["Domain", "P", "R", "F1"],
            rows,
            title="Table 7: IMDb topic identification accuracy",
        )


def run_table7(
    seed: int = 0,
    n_films: int = 50,
    n_people: int = 40,
    n_episodes: int = 16,
    dataset: IMDbDataset | None = None,
) -> Table7Result:
    config = CeresConfig()
    if dataset is None:
        dataset = generate_imdb(seed, n_films, n_people, n_episodes)
    kb = dataset.kb
    assert kb is not None
    result = Table7Result()
    for domain in ("person", "film"):
        pages = dataset.film_pages if domain == "film" else dataset.person_pages
        pipeline = CeresPipeline(kb, config)
        annotated = pipeline.annotate([p.document for p in pages])
        result.scores[domain] = topic_scores(annotated.topics, pages, kb)
    return result
