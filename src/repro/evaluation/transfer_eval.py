"""Leave-one-site-out evaluation of the cross-site transfer model.

The per-site CERES model cannot say anything about a site it never
trained on; the global model (:mod:`repro.transfer`) claims it can,
because its ``xfer:`` representation contains nothing site-specific.
This module puts a number on that claim the way ZeroShotCeres does:
**leave-one-site-out** (LOSO) over a multi-site vertical.  For each site
in the dataset, a global model is trained on every *other* site and
evaluated zero-shot on the held-out one, scored node-level against the
generated ground truth (:func:`~repro.evaluation.scoring.
extraction_precision` — the same strict protocol Table 8 uses).

Annotation is the expensive step and is site-local, so each site is
annotated exactly once (:func:`~repro.transfer.trainer.
collect_site_examples`) and the N folds re-pool the cached example
streams — N models, one annotation pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import CeresConfig
from repro.datasets.swde import SWDEDataset
from repro.evaluation.report import format_table
from repro.evaluation.scoring import extraction_precision
from repro.kb.store import KnowledgeBase
from repro.transfer.trainer import SiteExamples, collect_site_examples, train_global

__all__ = ["TransferFold", "loso_folds", "format_loso_table"]


@dataclass
class TransferFold:
    """One held-out site's zero-shot result."""

    site: str
    n_pages: int
    n_train_sites: int
    n_train_examples: int
    correct: int
    total: int

    @property
    def precision(self) -> float | None:
        """Node-level precision; None when the fold extracted nothing."""
        if self.total == 0:
            return None
        return self.correct / self.total


def loso_folds(
    dataset: SWDEDataset,
    kb: KnowledgeBase,
    config: CeresConfig | None = None,
    threshold: float | None = None,
) -> list[TransferFold]:
    """Run leave-one-site-out transfer over every site of ``dataset``.

    Each fold trains a global model on the other sites' pooled examples
    and extracts zero-shot from the held-out site's pages.
    """
    config = config or CeresConfig()
    predicates = kb.ontology.names()
    pools: list[SiteExamples] = []
    for site in dataset.sites:
        documents = [page.document for page in site.pages]
        pools.append(collect_site_examples(site.name, kb, documents, config))

    folds: list[TransferFold] = []
    for index, site in enumerate(dataset.sites):
        train_pools = pools[:index] + pools[index + 1 :]
        model = train_global(train_pools, predicates, config)
        held_out = pools[index].documents
        extractions = model.extract(held_out, threshold)
        correct, total = extraction_precision(extractions, list(site.pages))
        folds.append(
            TransferFold(
                site=site.name,
                n_pages=len(held_out),
                n_train_sites=len(train_pools),
                n_train_examples=sum(len(p.examples) for p in train_pools),
                correct=correct,
                total=total,
            )
        )
    return folds


def format_loso_table(folds: list[TransferFold]) -> str:
    """Render per-fold rows plus a micro-averaged total."""
    rows = []
    for fold in folds:
        precision = fold.precision
        rows.append(
            [
                fold.site,
                str(fold.n_pages),
                str(fold.n_train_sites),
                str(fold.total),
                "NA" if precision is None else f"{precision:.3f}",
            ]
        )
    correct = sum(fold.correct for fold in folds)
    total = sum(fold.total for fold in folds)
    rows.append(
        [
            "micro-avg",
            str(sum(fold.n_pages for fold in folds)),
            "-",
            str(total),
            "NA" if total == 0 else f"{correct / total:.3f}",
        ]
    )
    return format_table(
        ["held-out site", "pages", "train sites", "extractions", "precision"],
        rows,
        title="Zero-shot transfer: leave-one-site-out (node-level precision)",
    )
