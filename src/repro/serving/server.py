"""The resilient HTTP serving tier in front of :class:`ExtractionService`.

``python -m repro serve-http`` starts a :class:`ServingServer`: a
stdlib-only threaded HTTP/JSON server designed around failure rather
than around the happy path.

* **Backpressure, not buffering.**  Admission goes through a bounded
  queue (:class:`~repro.serving.batching.AdmissionQueue`); when it is
  full the request is shed immediately with ``429`` + ``Retry-After``.
  Queue depth and shed counts surface through :mod:`repro.obs`.
* **Deadlines end-to-end.**  Every request carries a cooperative
  :class:`~repro.runtime.resilience.Deadline`; a request that cannot be
  answered in time gets ``504`` — from the worker if it is still
  queued, from its own handler thread if a worker wedged.
* **Per-site circuit breakers.**  Consecutive *permanent* failures of a
  site's warm path open its breaker
  (:class:`~repro.serving.breaker.CircuitBreaker`); while open, the
  site degrades to the zero-shot transfer model (rows tagged
  ``model="transfer"``) instead of 500ing every request.
* **Cross-request micro-batching.**  Workers pull all queued requests
  for one ``(site, threshold)`` at once, so the compiled scoring engine
  sees full batches even from single-page clients.
* **Graceful drain.**  SIGTERM stops admission (503 for new work),
  flushes everything already accepted, then exits 0.  Every accepted
  request is answered exactly once, drain or no drain.

Endpoints: ``POST /extract``, ``GET /healthz`` (process liveness),
``GET /readyz`` (admission state), ``GET /stats`` (queue, breakers,
metrics, cache residency).
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import obs
from repro.core.config import CeresConfig
from repro.dom.parser import ParseLimitError, parse_html
from repro.runtime.resilience import classify_error, soft_deadline
from repro.runtime.runner import extraction_row
from repro.serving.batching import (
    OFFER_ACCEPTED,
    OFFER_FULL,
    AdmissionQueue,
    PendingRequest,
)
from repro.serving.breaker import BreakerBoard
from repro.serving.config import ServingConfig
from repro.testing.faults import fault_point

__all__ = ["ServingServer"]

#: classify_error category -> HTTP status for a failed extraction.
_CATEGORY_STATUS = {"permanent": 500, "transient": 503, "overload": 429}

PHASE_READY = "ready"
PHASE_DRAINING = "draining"
PHASE_STOPPED = "stopped"


class _JsonReply(Exception):
    """Internal control flow: abort request handling with this response."""

    def __init__(
        self, status: int, payload: dict, retry_after: float | None = None
    ) -> None:
        super().__init__(payload.get("error", ""))
        self.status = status
        self.payload = payload
        self.retry_after = retry_after


class _HTTPServer(ThreadingHTTPServer):
    # One thread per connection; daemonized so a handler wedged by an
    # injected hang fault can never block process exit, and shutdown
    # does not wait on it either.
    daemon_threads = True
    block_on_close = False
    allow_reuse_address = True
    app: "ServingServer"


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: _HTTPServer

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # request logging goes through repro.obs, not stderr

    def _reply(
        self, status: int, payload: dict, retry_after: float | None = None
    ) -> None:
        body = json.dumps(payload, ensure_ascii=False).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if retry_after is not None:
                self.send_header("Retry-After", str(math.ceil(retry_after)))
            self.end_headers()
            self.wfile.write(body)
        except OSError:
            # The client hung up mid-response; nothing left to answer.
            self.close_connection = True

    def do_GET(self) -> None:
        app = self.server.app
        if self.path == "/healthz":
            self._reply(200, {"status": "alive"})
        elif self.path == "/readyz":
            phase = app.phase
            if phase == PHASE_READY:
                self._reply(200, {"status": PHASE_READY})
            else:
                self._reply(
                    503, {"status": phase}, retry_after=app.config.retry_after
                )
        elif self.path == "/stats":
            self._reply(200, app.stats_payload())
        else:
            self._reply(404, {"error": f"no such endpoint: {self.path}"})

    def do_POST(self) -> None:
        app = self.server.app
        if self.path != "/extract":
            self._reply(404, {"error": f"no such endpoint: {self.path}"})
            return
        with obs.metrics().timer("serving.request_seconds"):
            try:
                status, payload, retry_after = app.handle_extract(self)
            except _JsonReply as reply:
                status = reply.status
                payload = reply.payload
                retry_after = reply.retry_after
            except Exception as exc:
                # Injected handler faults and genuine bugs end up here;
                # classify so chaos runs see the taxonomy on the wire.
                category = classify_error(exc)
                status = _CATEGORY_STATUS[category]
                payload = {
                    "error": f"{type(exc).__name__}: {exc}",
                    "category": category,
                }
                retry_after = (
                    app.config.retry_after if status in (429, 503) else None
                )
        self._reply(status, payload, retry_after)


class ServingServer:
    """Owns the HTTP listener, the admission queue, and the batch workers.

    Thread model: one handler thread per connection (produces
    :class:`PendingRequest`s and waits on them), ``config.workers``
    batch workers (consume site batches), one acceptor thread running
    ``serve_forever``, and — once drain starts — one drain thread.
    ``_lifecycle`` guards the request gauge and the phase machine.
    """

    def __init__(
        self,
        service,
        config: ServingConfig | None = None,
        *,
        ceres_config: CeresConfig | None = None,
    ) -> None:
        self.service = service
        self.config = config or ServingConfig()
        parse_defaults = ceres_config or getattr(
            service, "config", None
        ) or CeresConfig()
        self._max_parse_depth = (
            self.config.max_parse_depth
            if self.config.max_parse_depth is not None
            else parse_defaults.max_parse_depth
        )
        self._max_parse_nodes = (
            self.config.max_parse_nodes
            if self.config.max_parse_nodes is not None
            else parse_defaults.max_parse_nodes
        )
        self.queue = AdmissionQueue(
            max_depth=self.config.max_queue_depth,
            batch_max_pages=self.config.batch_max_pages,
            batch_linger=self.config.batch_linger,
        )
        self.breakers = BreakerBoard(
            failures=self.config.breaker_failures,
            cooldown=self.config.breaker_cooldown,
            probes=self.config.breaker_probes,
        )
        self._lifecycle = threading.Condition()
        self._phase = PHASE_READY
        self._inflight = 0
        self._workers: list[threading.Thread] = []
        self._acceptor: threading.Thread | None = None
        self._httpd: _HTTPServer | None = None
        self._stopped_event = threading.Event()
        self.port: int | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Bind, spawn workers, and start accepting (returns at once)."""
        self._httpd = _HTTPServer(
            (self.config.host, self.config.port), _Handler
        )
        self._httpd.app = self
        self.port = self._httpd.server_address[1]
        for index in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"serving-worker-{index}",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)
        self._acceptor = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="serving-acceptor",
            daemon=True,
        )
        self._acceptor.start()

    @property
    def phase(self) -> str:
        with self._lifecycle:
            return self._phase

    def initiate_drain(self) -> None:
        """Begin graceful shutdown (idempotent, signal-handler safe).

        New work is refused with 503 immediately; already-accepted work
        keeps flowing.  A background thread completes the drain and
        flips the server to ``stopped``.
        """
        with self._lifecycle:
            if self._phase != PHASE_READY:
                return
            self._phase = PHASE_DRAINING
        self.queue.begin_drain()
        threading.Thread(
            target=self._drain, name="serving-drain", daemon=True
        ).start()

    def _drain(self) -> None:
        with soft_deadline(self.config.drain_timeout) as budget:
            clean = self.queue.wait_idle(
                budget.remaining() or self.config.drain_timeout
            )
            clean = self._wait_inflight(budget) and clean
        if not clean:
            # Forced drain: whatever is still queued gets a definitive
            # 503 now rather than a hang; in-flight batches keep their
            # workers (daemonized) and die with the process.
            for request in self.queue.abort_pending():
                if request.fulfill(
                    (
                        "error",
                        503,
                        "server shut down before the request could run",
                        "overload",
                    )
                ):
                    obs.metrics().inc("serving.drain_forced")
        try:
            fault_point("serving.drain")
        except Exception as exc:
            # An injected drain fault must not leave the process hanging
            # half-stopped; note it and finish shutting down anyway.
            obs.metrics().inc(f"serving.drain_errors_{classify_error(exc)}")
        self.queue.stop()
        for worker in self._workers:
            worker.join(timeout=2.0)
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        with self._lifecycle:
            self._phase = PHASE_STOPPED
        self._stopped_event.set()

    def _wait_inflight(self, budget) -> bool:
        with self._lifecycle:
            while self._inflight > 0:
                remaining = budget.remaining()
                if remaining is not None and remaining <= 0:
                    return False
                self._lifecycle.wait(
                    0.1 if remaining is None else min(0.1, remaining)
                )
            return True

    def wait_stopped(self, timeout: float | None = None) -> bool:
        """Block until the drain completes (signal-friendly polling)."""
        with soft_deadline(timeout) as budget:
            while not self._stopped_event.is_set():
                remaining = budget.remaining()
                if remaining is not None and remaining <= 0:
                    return False
                self._stopped_event.wait(
                    0.2 if remaining is None else min(0.2, remaining)
                )
        return True

    def stop(self, timeout: float = 10.0) -> bool:
        """Drain and wait for the server to stop (test convenience)."""
        self.initiate_drain()
        return self.wait_stopped(timeout)

    # -- request path (handler threads) ------------------------------------

    def handle_extract(self, handler: _Handler):
        """Admit, wait, and shape one ``/extract`` response.

        Returns ``(status, payload, retry_after)``; raises
        :class:`_JsonReply` for early-out responses.
        """
        payload = self._read_request(handler)
        site = payload.get("site")
        if not isinstance(site, str) or not site:
            raise _JsonReply(400, {"error": "body must carry a 'site' string"})
        fault_point("serving.handle", site=site)
        documents = self._parse_pages(payload)
        threshold = self._number_field(payload, "threshold")
        deadline_s = self.config.request_deadline
        client_deadline = self._number_field(payload, "deadline")
        if client_deadline is not None and client_deadline > 0:
            deadline_s = min(deadline_s, client_deadline)
        if self.phase != PHASE_READY:
            raise _JsonReply(
                503,
                {"error": "server is draining", "category": "overload"},
                retry_after=self.config.retry_after,
            )
        registry = obs.metrics()
        with soft_deadline(deadline_s) as request_deadline:
            request = PendingRequest(
                site=site,
                documents=documents,
                threshold=threshold,
                deadline=request_deadline,
            )
            verdict = self.queue.offer(request)
            if verdict == OFFER_FULL:
                registry.inc("serving.shed")
                raise _JsonReply(
                    429,
                    {"error": "admission queue is full", "category": "overload"},
                    retry_after=self.config.retry_after,
                )
            if verdict != OFFER_ACCEPTED:
                raise _JsonReply(
                    503,
                    {"error": "server is draining", "category": "overload"},
                    retry_after=self.config.retry_after,
                )
            registry.inc("serving.accepted")
            registry.observe(
                "serving.queue_depth", self.queue.stats()["depth"]
            )
            self._begin_request()
            try:
                fulfilled = request.wait()
                if not fulfilled and request.forsake():
                    registry.inc("serving.deadline_expired")
                    raise _JsonReply(
                        504,
                        {
                            "error": (
                                f"deadline of {deadline_s}s expired before "
                                "a worker could answer"
                            ),
                            "category": "overload",
                        },
                    )
            finally:
                self._end_request()
        outcome = request.outcome
        registry.inc("serving.responses")
        if outcome[0] == "ok":
            _, rows, model = outcome
            return (
                200,
                {
                    "site": site,
                    "model": model,
                    "pages": len(documents),
                    "extractions": len(rows),
                    "rows": rows,
                },
                None,
            )
        _, status, message, category = outcome
        retry_after = (
            self.config.retry_after if status in (429, 503) else None
        )
        return status, {"error": message, "category": category}, retry_after

    def _read_request(self, handler: _Handler) -> dict:
        try:
            length = int(handler.headers.get("Content-Length", ""))
        except ValueError:
            handler.close_connection = True  # body never read
            raise _JsonReply(
                411, {"error": "Content-Length is required"}
            ) from None
        if length > self.config.max_body_bytes:
            handler.close_connection = True  # refuse to read the body
            raise _JsonReply(
                413,
                {
                    "error": (
                        f"body of {length} bytes exceeds the "
                        f"{self.config.max_body_bytes}-byte limit"
                    )
                },
            )
        body = handler.rfile.read(length)
        try:
            payload = json.loads(body)
        except ValueError as exc:
            raise _JsonReply(
                400, {"error": f"body is not valid JSON: {exc}"}
            ) from None
        if not isinstance(payload, dict):
            raise _JsonReply(400, {"error": "body must be a JSON object"})
        return payload

    def _parse_pages(self, payload: dict) -> list:
        pages = payload.get("pages")
        if not isinstance(pages, list) or not pages:
            raise _JsonReply(
                400, {"error": "body must carry a non-empty 'pages' list"}
            )
        documents = []
        for index, page in enumerate(pages):
            if not isinstance(page, dict) or not isinstance(
                page.get("html"), str
            ):
                raise _JsonReply(
                    400,
                    {"error": f"pages[{index}] must carry an 'html' string"},
                )
            try:
                documents.append(
                    parse_html(
                        page["html"],
                        url=str(page.get("url", f"page-{index}")),
                        max_depth=self._max_parse_depth,
                        max_nodes=self._max_parse_nodes,
                    )
                )
            except ParseLimitError as exc:
                obs.metrics().inc("serving.parse_rejected")
                raise _JsonReply(
                    422,
                    {
                        "error": f"pages[{index}]: {exc}",
                        "category": "permanent",
                    },
                ) from None
        return documents

    @staticmethod
    def _number_field(payload: dict, key: str) -> float | None:
        value = payload.get(key)
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise _JsonReply(400, {"error": f"'{key}' must be a number"})
        return float(value)

    def _begin_request(self) -> None:
        with self._lifecycle:
            self._inflight += 1

    def _end_request(self) -> None:
        with self._lifecycle:
            self._inflight -= 1
            self._lifecycle.notify_all()

    # -- introspection -----------------------------------------------------

    def stats_payload(self) -> dict:
        """The ``/stats`` body: runbook view of the whole serving tier."""
        with self._lifecycle:
            phase = self._phase
            inflight = self._inflight
        return {
            "phase": phase,
            "inflight": inflight,
            "queue": self.queue.stats(),
            "breakers": self.breakers.snapshot(),
            "metrics": obs.metrics().snapshot(),
            "service": self.service.cache_stats(),
        }

    # -- batch path (worker threads) ---------------------------------------

    def _worker_loop(self) -> None:
        while True:
            claimed = self.queue.take_batch()
            if claimed is None:
                return
            site, batch = claimed
            try:
                self._process_batch(site, batch)
            finally:
                self.queue.finish_site(site)

    def _process_batch(self, site: str, batch: list) -> None:
        registry = obs.metrics()
        live = []
        for request in batch:
            if request.deadline.expired():
                if request.fulfill(
                    (
                        "error",
                        504,
                        "request expired while queued",
                        "overload",
                    )
                ):
                    registry.inc("serving.deadline_expired_queued")
            else:
                live.append(request)
        if not live:
            return
        threshold = live[0].threshold
        merged: list = []
        offsets: list[int] = []
        for request in live:
            offsets.append(len(merged))
            merged.extend(request.documents)
        registry.inc("serving.batches")
        registry.observe("serving.batch_pages", len(merged))
        breaker = self.breakers.for_site(site)
        route = breaker.route()
        if route == "primary":
            try:
                with obs.span(
                    "serving.batch", site=site, pages=len(merged),
                    route="primary",
                ):
                    fault_point("serving.batch", site=site)
                    extractions = self.service.extract_pages(
                        site, merged, threshold
                    )
            except Exception as exc:
                category = classify_error(exc)
                if breaker.record_failure(category):
                    registry.inc("serving.breaker_opened")
                registry.inc(f"serving.errors_{category}")
                outcome = (
                    "error",
                    _CATEGORY_STATUS[category],
                    f"{type(exc).__name__}: {exc}",
                    category,
                )
                for request in live:
                    request.fulfill(outcome)
                return
            breaker.record_success()
            registry.inc("serving.primary_requests", len(live))
            # The primary route still serves zero-shot when the service
            # has --transfer-fallback on and no model for this site.
            label = (
                "site" if self.service.has_site_model(site) else "transfer"
            )
            self._fulfill_split(live, offsets, merged, extractions, site, label)
            return
        try:
            with obs.span(
                "serving.batch", site=site, pages=len(merged),
                route="fallback",
            ):
                extractions = self.service.extract_pages_transfer(
                    site, merged, threshold
                )
        except Exception as exc:
            category = classify_error(exc)
            registry.inc(f"serving.fallback_errors_{category}")
            outcome = (
                "error",
                503,
                (
                    f"circuit breaker open for {site!r} and the zero-shot "
                    f"fallback failed: {type(exc).__name__}: {exc}"
                ),
                "overload",
            )
            for request in live:
                request.fulfill(outcome)
            return
        registry.inc("serving.fallback_requests", len(live))
        self._fulfill_split(live, offsets, merged, extractions, site, "transfer")

    @staticmethod
    def _fulfill_split(
        live: list, offsets: list[int], merged: list, extractions: list,
        site: str, model: str,
    ) -> None:
        """Route each extraction back to the request that sent its page."""
        # The extractions themselves are the provenance of record: a
        # service-level --transfer-fallback can serve an unseen site
        # zero-shot even on the breaker's primary route, and then the
        # top-level label must say "transfer" like the rows do.
        provenances = {getattr(e, "model", "site") for e in extractions}
        if len(provenances) == 1:
            model = provenances.pop()
        per_request: list[list[dict]] = [[] for _ in live]
        bounds = offsets[1:] + [len(merged)]
        owner = 0
        for extraction in sorted(extractions, key=lambda e: e.page_index):
            while extraction.page_index >= bounds[owner]:
                owner += 1
            per_request[owner].append(
                extraction_row(
                    extraction, merged[extraction.page_index].url, site
                )
            )
        for request, rows in zip(live, per_request):
            request.fulfill(("ok", rows, model))
