"""Knobs for the resilient online serving tier (``serve-http``).

Every field maps to a CLI flag; defaults are sized for a laptop-scale
deployment and are deliberately conservative about memory (bounded
queue) and latency (short linger).  :class:`ServingConfig` is frozen —
the server reads it from many threads.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServingConfig"]


@dataclass(frozen=True)
class ServingConfig:
    """All knobs of the HTTP serving tier, validated at construction."""

    # --- wire ---
    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (the bound port is printed on
    #: startup and exposed as :attr:`ServingServer.port`).
    port: int = 8080
    #: Largest accepted request body; beyond it the request is answered
    #: 413 without being read.
    max_body_bytes: int = 16 << 20

    # --- admission / backpressure ---
    #: Batch worker threads (cross-*site* parallelism; requests for one
    #: site are serialized through its extractor pool).
    workers: int = 2
    #: Bounded admission queue depth (requests).  A full queue sheds new
    #: work with 429 + ``Retry-After`` instead of queueing unboundedly.
    max_queue_depth: int = 64
    #: ``Retry-After`` value (seconds) sent with shed (429) and
    #: draining (503) responses.
    retry_after: float = 1.0

    # --- deadlines ---
    #: Per-request wall-clock budget, enqueue to response.  A request
    #: whose budget runs out is answered 504 — by the worker if it is
    #: still queued, by the handler if the worker is wedged.  Clients
    #: may request *less* via a ``deadline`` body field, never more.
    request_deadline: float = 30.0

    # --- cross-request micro-batching ---
    #: Page cap per merged batch fed to the scoring engine.
    batch_max_pages: int = 64
    #: After claiming a batch, wait up to this long for more same-site
    #: requests to arrive before scoring (0 disables).  Trades a little
    #: latency for fuller :class:`BatchScorer` batches.
    batch_linger: float = 0.0

    # --- per-site circuit breakers ---
    #: Consecutive *permanent* failures that open a site's breaker
    #: (transient/overload failures never count).
    breaker_failures: int = 3
    #: Seconds an open breaker waits before letting a probe through
    #: (open → half-open).
    breaker_cooldown: float = 30.0
    #: Consecutive successful probes required to close a half-open
    #: breaker.
    breaker_probes: int = 1

    # --- graceful drain ---
    #: Seconds the SIGTERM drain waits for queued + in-flight work
    #: before force-answering what remains with 503 and exiting anyway.
    drain_timeout: float = 30.0

    # --- hostile-input parse caps (None → CeresConfig defaults) ---
    max_parse_depth: int | None = None
    max_parse_nodes: int | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.batch_max_pages < 1:
            raise ValueError("batch_max_pages must be >= 1")
        if self.request_deadline <= 0:
            raise ValueError("request_deadline must be > 0 seconds")
        if self.breaker_failures < 1:
            raise ValueError("breaker_failures must be >= 1")
        if self.breaker_probes < 1:
            raise ValueError("breaker_probes must be >= 1")
        if self.breaker_cooldown < 0 or self.batch_linger < 0:
            raise ValueError("durations must be >= 0")
        if self.drain_timeout <= 0:
            raise ValueError("drain_timeout must be > 0 seconds")
