"""Bounded admission queue with cross-request micro-batching.

The HTTP handler threads *produce* :class:`PendingRequest`s; a small
pool of batch workers *consumes* them.  Two properties matter more than
throughput:

* **Bounded memory** — :meth:`AdmissionQueue.offer` never blocks and
  never grows past ``max_depth``; a full queue is the caller's signal
  to shed (HTTP 429).
* **Exactly one response per accepted request** — a request is answered
  either by the worker (:meth:`PendingRequest.fulfill`) or by its
  waiting handler claiming it back on deadline
  (:meth:`PendingRequest.forsake`), never both, never zero times.  Both
  sides race through one flag under the request's own lock.

Batching: workers pull *all* queued requests for one ``(site,
threshold)`` pair at once (up to ``batch_max_pages`` pages) so the
scoring engine sees full batches even when every client sends one page.
Requests for one site are mutually serialized — the underlying extractor
pool and its caches are not thread-safe — but distinct sites proceed in
parallel across workers.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.runtime.resilience import Deadline

__all__ = [
    "OFFER_ACCEPTED",
    "OFFER_CLOSED",
    "OFFER_FULL",
    "AdmissionQueue",
    "PendingRequest",
]

OFFER_ACCEPTED = "accepted"
OFFER_FULL = "full"
OFFER_CLOSED = "closed"


class PendingRequest:
    """One admitted ``/extract`` request, in flight between threads.

    The *outcome* is an opaque tuple the server interprets; the queue
    only guarantees the exactly-once handoff.
    """

    __slots__ = (
        "site",
        "documents",
        "threshold",
        "deadline",
        "outcome",
        "_lock",
        "_event",
        "_answered",
    )

    def __init__(
        self,
        site: str,
        documents: list,
        threshold: float | None,
        deadline: Deadline,
    ) -> None:
        self.site = site
        self.documents = documents
        self.threshold = threshold
        self.deadline = deadline
        self.outcome = None
        self._lock = threading.Lock()
        self._event = threading.Event()
        self._answered = False

    def fulfill(self, outcome) -> bool:
        """Worker side: deliver *outcome*.  False if the waiter gave up."""
        with self._lock:
            if self._answered:
                return False
            self._answered = True
            self.outcome = outcome
        self._event.set()
        return True

    def forsake(self) -> bool:
        """Waiter side: reclaim the request (deadline expired).

        True means the waiter now owns the response (the worker will
        see ``fulfill`` fail and drop its result); False means a worker
        answered first and ``outcome`` is set.
        """
        with self._lock:
            if self._answered:
                return False
            self._answered = True
            return True

    def wait(self, grace: float = 0.05) -> bool:
        """Block until fulfilled or the deadline (+*grace*) passes."""
        return self.deadline.wait(self._event, grace=grace)

    def batch_key(self) -> tuple[str, float | None]:
        return (self.site, self.threshold)


class AdmissionQueue:
    """Bounded FIFO of :class:`PendingRequest` with per-site claims."""

    def __init__(
        self,
        max_depth: int = 64,
        batch_max_pages: int = 64,
        batch_linger: float = 0.0,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if batch_max_pages < 1:
            raise ValueError("batch_max_pages must be >= 1")
        self._max_depth = max_depth
        self._batch_max_pages = batch_max_pages
        self._batch_linger = batch_linger
        self._lock = threading.Condition()
        self._pending: deque[PendingRequest] = deque()
        self._active_sites: set[str] = set()
        self._draining = False
        self._stopped = False

    # --- producer side (HTTP handler threads) ---

    def offer(self, request: PendingRequest) -> str:
        """Try to admit *request*; never blocks.

        Returns :data:`OFFER_ACCEPTED`, :data:`OFFER_FULL` (shed with
        429), or :data:`OFFER_CLOSED` (draining/stopped, answer 503).
        """
        with self._lock:
            if self._draining or self._stopped:
                return OFFER_CLOSED
            if len(self._pending) >= self._max_depth:
                return OFFER_FULL
            self._pending.append(request)
            self._lock.notify()
            return OFFER_ACCEPTED

    # --- consumer side (batch workers) ---

    def take_batch(self) -> tuple[str, list[PendingRequest]] | None:
        """Claim the next same-``(site, threshold)`` batch, or None to exit.

        Blocks until a request for an unclaimed site is available.  The
        claimed site stays marked active — serializing it — until the
        worker calls :meth:`finish_site`.  Returns None only once the
        queue is stopped and empty.
        """
        with self._lock:
            while True:
                head = self._pick_unclaimed_locked()
                if head is not None:
                    break
                if self._stopped and not self._pending:
                    return None
                self._lock.wait(0.1)
            self._active_sites.add(head.site)
            if self._batch_linger > 0 and not self._stopped:
                # One bounded wait for same-site stragglers, so a burst
                # of single-page requests scores as one batch.
                self._lock.wait(self._batch_linger)
            batch = self._collect_batch_locked(head)
        return head.site, batch

    def _pick_unclaimed_locked(self) -> PendingRequest | None:
        # Called with the lock held; the re-entrant `with` (Condition
        # wraps an RLock) keeps the lock discipline lexically checkable.
        with self._lock:
            for request in self._pending:
                if request.site not in self._active_sites:
                    return request
            return None

    def _collect_batch_locked(self, head: PendingRequest) -> list[PendingRequest]:
        with self._lock:
            key = head.batch_key()
            batch: list[PendingRequest] = []
            pages = 0
            kept: deque[PendingRequest] = deque()
            for request in self._pending:
                if (
                    request.batch_key() == key
                    and pages + len(request.documents) <= self._batch_max_pages
                ):
                    batch.append(request)
                    pages += len(request.documents)
                else:
                    kept.append(request)
            if not batch:  # head alone exceeds the page cap: take just it
                batch.append(head)
                kept.remove(head)
            self._pending.clear()
            self._pending.extend(kept)
            return batch

    def finish_site(self, site: str) -> None:
        """Release the per-site claim taken by :meth:`take_batch`."""
        with self._lock:
            self._active_sites.discard(site)
            self._lock.notify_all()

    # --- lifecycle (drain / stop) ---

    def begin_drain(self) -> None:
        """Stop admitting; queued work keeps flowing to workers."""
        with self._lock:
            self._draining = True
            self._lock.notify_all()

    def stop(self) -> None:
        """Tell workers to exit once the queue is empty."""
        with self._lock:
            self._draining = True
            self._stopped = True
            self._lock.notify_all()

    def abort_pending(self) -> list[PendingRequest]:
        """Forced drain: claim back everything still queued."""
        with self._lock:
            aborted = list(self._pending)
            self._pending.clear()
            self._lock.notify_all()
        return aborted

    def wait_idle(self, timeout: float) -> bool:
        """Wait until nothing is queued or claimed; False on timeout."""
        idle = Deadline(timeout)
        with self._lock:
            while self._pending or self._active_sites:
                remaining = idle.remaining()
                if remaining is None or remaining <= 0:
                    return False
                self._lock.wait(min(0.1, remaining))
            return True

    def stats(self) -> dict:
        with self._lock:
            return {
                "depth": len(self._pending),
                "max_depth": self._max_depth,
                "active_sites": sorted(self._active_sites),
                "draining": self._draining,
                "stopped": self._stopped,
            }
