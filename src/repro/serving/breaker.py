"""Per-site circuit breakers for the serving tier.

A breaker watches the *permanent* failure stream of one site's warm
extraction path and cuts the site over to the zero-shot transfer
fallback when that path is clearly broken (corrupt artifact, model
incompatible with current code, poisoned template).  Transient and
overload failures never trip a breaker — retrying those is the whole
point of classifying them.

States follow the classic pattern:

``closed``
    Normal operation.  ``breaker_failures`` *consecutive* permanent
    failures open the breaker.
``open``
    All traffic routes to the fallback.  After ``breaker_cooldown``
    seconds the next request is let through as a probe (half-open).
``half-open``
    At most one probe is in flight at a time.  ``breaker_probes``
    consecutive probe successes close the breaker; a permanent probe
    failure reopens it (and restarts the cooldown).

The board and each breaker are thread-safe; ``clock`` is injectable so
tests can drive the cooldown without sleeping.
"""

from __future__ import annotations

import time
from typing import Callable

import threading

__all__ = ["BreakerBoard", "CircuitBreaker", "CLOSED", "HALF_OPEN", "OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure-driven routing switch for one site's primary path."""

    def __init__(
        self,
        failures: int = 3,
        cooldown: float = 30.0,
        probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failures < 1:
            raise ValueError("failures must be >= 1")
        if probes < 1:
            raise ValueError("probes must be >= 1")
        self._failures = failures
        self._cooldown = cooldown
        self._probes = probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = {
            "phase": CLOSED,
            "consecutive_failures": 0,
            "opened_at": 0.0,
            "probe_in_flight": False,
            "probe_successes": 0,
            "opened_total": 0,
        }

    def route(self) -> str:
        """Where the next request should go: ``"primary"`` or ``"fallback"``.

        Calling this is a commitment: a ``"primary"`` answer in the
        half-open phase claims the single probe slot, and the caller
        must report back via :meth:`record_success` /
        :meth:`record_failure` to release it.
        """
        with self._lock:
            state = self._state
            if state["phase"] == CLOSED:
                return "primary"
            if state["phase"] == OPEN:
                if self._clock() - state["opened_at"] < self._cooldown:
                    return "fallback"
                state["phase"] = HALF_OPEN
                state["probe_in_flight"] = False
                state["probe_successes"] = 0
            # half-open: one probe at a time, everyone else falls back.
            if state["probe_in_flight"]:
                return "fallback"
            state["probe_in_flight"] = True
            return "primary"

    def record_success(self) -> None:
        """Report a primary-path success (closes a probed breaker)."""
        with self._lock:
            state = self._state
            state["consecutive_failures"] = 0
            if state["phase"] == HALF_OPEN:
                state["probe_in_flight"] = False
                state["probe_successes"] += 1
                if state["probe_successes"] >= self._probes:
                    state["phase"] = CLOSED

    def record_failure(self, category: str) -> bool:
        """Report a primary-path failure of ``classify_error`` *category*.

        Returns True when this report opened (or reopened) the breaker.
        Only ``"permanent"`` failures count against the trip threshold;
        a transient/overload probe failure just releases the probe slot
        so the next request can try again.
        """
        with self._lock:
            state = self._state
            if state["phase"] == HALF_OPEN:
                state["probe_in_flight"] = False
                if category != "permanent":
                    return False
                state["phase"] = OPEN
                state["opened_at"] = self._clock()
                state["opened_total"] += 1
                return True
            if category != "permanent":
                return False
            state["consecutive_failures"] += 1
            if state["phase"] == CLOSED and state["consecutive_failures"] >= self._failures:
                state["phase"] = OPEN
                state["opened_at"] = self._clock()
                state["opened_total"] += 1
                return True
            return False

    @property
    def phase(self) -> str:
        with self._lock:
            return self._state["phase"]

    def snapshot(self) -> dict:
        """A point-in-time copy of the breaker's state (for ``/stats``)."""
        with self._lock:
            return dict(self._state)


class BreakerBoard:
    """Lazily-created :class:`CircuitBreaker` per site."""

    def __init__(
        self,
        failures: int = 3,
        cooldown: float = 30.0,
        probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._failures = failures
        self._cooldown = cooldown
        self._probes = probes
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}

    def for_site(self, site: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(site)
            if breaker is None:
                breaker = CircuitBreaker(
                    failures=self._failures,
                    cooldown=self._cooldown,
                    probes=self._probes,
                    clock=self._clock,
                )
                self._breakers[site] = breaker
            return breaker

    def snapshot(self) -> dict[str, dict]:
        """Per-site breaker snapshots, sites sorted for stable output."""
        with self._lock:
            boards = sorted(self._breakers.items())
        return {site: breaker.snapshot() for site, breaker in boards}
