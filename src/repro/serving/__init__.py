"""Resilient online serving tier (``python -m repro serve-http``).

A stdlib-only threaded HTTP/JSON front for
:class:`~repro.runtime.service.ExtractionService`, built around the
failure modes a long-lived server actually meets: overload (bounded
admission + 429 shedding), slow requests (cooperative deadlines → 504),
broken site models (per-site circuit breakers degrading to the
zero-shot transfer model), and shutdown (SIGTERM drains accepted work,
then exits 0).  See :mod:`repro.serving.server` for the full design
notes and the README's "Online serving" section for the runbook.
"""

from __future__ import annotations

from repro.serving.batching import (
    OFFER_ACCEPTED,
    OFFER_CLOSED,
    OFFER_FULL,
    AdmissionQueue,
    PendingRequest,
)
from repro.serving.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    CircuitBreaker,
)
from repro.serving.config import ServingConfig
from repro.serving.server import ServingServer

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OFFER_ACCEPTED",
    "OFFER_CLOSED",
    "OFFER_FULL",
    "OPEN",
    "AdmissionQueue",
    "BreakerBoard",
    "CircuitBreaker",
    "PendingRequest",
    "ServingConfig",
    "ServingServer",
]
