"""Precision / recall / F1 containers and aggregation helpers.

The paper's primary metrics (Section 5.2):

    precision = tp / (tp + fp)        recall = tp / (tp + fn)

with F1 their harmonic mean.  ``PRF`` instances are additive, so
per-predicate scores can be summed into the "All Extractions" rows of
Tables 4-6.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PRF", "f1_score", "mean_prf"]


def f1_score(precision: float, recall: float) -> float:
    """Harmonic mean of precision and recall (0 when both are 0)."""
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


@dataclass
class PRF:
    """True-positive / false-positive / false-negative counts."""

    tp: int = 0
    fp: int = 0
    fn: int = 0

    @property
    def precision(self) -> float:
        total = self.tp + self.fp
        return self.tp / total if total else 0.0

    @property
    def recall(self) -> float:
        total = self.tp + self.fn
        return self.tp / total if total else 0.0

    @property
    def f1(self) -> float:
        return f1_score(self.precision, self.recall)

    @property
    def defined(self) -> bool:
        """True when at least one prediction or gold item exists."""
        return (self.tp + self.fp + self.fn) > 0

    def __add__(self, other: PRF) -> PRF:
        return PRF(self.tp + other.tp, self.fp + other.fp, self.fn + other.fn)

    def __iadd__(self, other: PRF) -> PRF:
        self.tp += other.tp
        self.fp += other.fp
        self.fn += other.fn
        return self

    def as_tuple(self) -> tuple[float, float, float]:
        """(precision, recall, f1) triple for table rendering."""
        return (self.precision, self.recall, self.f1)

    def __repr__(self) -> str:
        return (
            f"PRF(P={self.precision:.3f} R={self.recall:.3f} F1={self.f1:.3f} "
            f"tp={self.tp} fp={self.fp} fn={self.fn})"
        )


def mean_prf(scores: list[PRF]) -> tuple[float, float, float]:
    """Macro average of (precision, recall, f1) over defined scores.

    Used for the per-vertical "Average" rows of Table 4, which average the
    per-predicate metrics rather than pooling counts.
    """
    defined = [s for s in scores if s.defined]
    if not defined:
        return (0.0, 0.0, 0.0)
    n = len(defined)
    return (
        sum(s.precision for s in defined) / n,
        sum(s.recall for s in defined) / n,
        sum(s.f1 for s in defined) / n,
    )
