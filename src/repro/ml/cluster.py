"""Agglomerative clustering (scikit-learn AgglomerativeClustering substitute).

Used by the global-evidence step of relation annotation (Section 3.2.2):
"we use an agglomerative clustering approach, where in each iteration we
find two nodes with the closest distance, and merge the clusters they
belong to, until we reach the desired number of clusters.  The distance
function between two DOM nodes is defined as the Levenshtein distance
between their corresponding XPaths."

The implementation performs average-linkage agglomeration over a
precomputed distance matrix via the Lance–Williams update, O(n^2 log n)
overall.  Heap entries are validated with *per-cluster version counters*
(each merge bumps the surviving cluster's version; an entry is live only
if both endpoint versions still match), so stale entries can never be
confused with fresh ones — unlike the float-equality check this replaces,
which compared a popped distance against the current matrix cell and
could in principle mistake a stale entry for live after Lance–Williams
averaging recreated an old value.  Row updates run vectorized over the
whole distance matrix; the per-element arithmetic is the same IEEE
multiply-add-divide the scalar loop performed, so merge distances are
bit-identical to the legacy implementation's.

The distance matrix itself comes from the interned-token batched
Levenshtein engine (:func:`repro.text.distance.levenshtein_matrix`) —
one numpy DP over all pairs instead of ``n^2/2`` Python calls;
``engine="python"`` keeps the pure-Python pairwise path as the
equivalence oracle.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Sequence
from typing import TypeVar

import numpy as np

from repro.text.distance import levenshtein, levenshtein_matrix

__all__ = ["agglomerative_cluster", "cluster_xpaths", "pairwise_distance_matrix"]

T = TypeVar("T")


def pairwise_distance_matrix(
    items: Sequence[T], distance_fn: Callable[[T, T], float]
) -> np.ndarray:
    """Symmetric distance matrix with a zero diagonal (pure-Python pairwise)."""
    n = len(items)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            d = float(distance_fn(items[i], items[j]))
            matrix[i, j] = d
            matrix[j, i] = d
    return matrix


def agglomerative_cluster(
    distances: np.ndarray, n_clusters: int
) -> list[int]:
    """Average-linkage agglomerative clustering on a distance matrix.

    Args:
        distances: ``(n, n)`` symmetric matrix of pairwise distances.
        n_clusters: desired number of clusters; clipped to ``[1, n]``.

    Returns:
        A label per item, labels renumbered to ``0..k-1`` in order of first
        appearance (deterministic given the matrix).
    """
    n = distances.shape[0]
    if distances.shape != (n, n):
        raise ValueError("distance matrix must be square")
    n_clusters = max(1, min(n_clusters, n))
    if n == 0:
        return []

    # active[i] is True while cluster i exists; sizes track member counts
    # for the average-linkage (UPGMA) Lance-Williams update.  version[i]
    # stamps heap entries: any merge touching i invalidates entries that
    # recorded an older stamp.
    current = distances.astype(float).copy()
    active = np.ones(n, dtype=bool)
    sizes = np.ones(n)
    version = [0] * n
    members: list[list[int]] = [[i] for i in range(n)]
    heap: list[tuple[float, int, int, int, int]] = [
        (current[i, j], i, j, 0, 0) for i in range(n) for j in range(i + 1, n)
    ]
    heapq.heapify(heap)

    remaining = n
    while remaining > n_clusters and heap:
        d, i, j, stamp_i, stamp_j = heapq.heappop(heap)
        if (
            not (active[i] and active[j])
            or version[i] != stamp_i
            or version[j] != stamp_j
        ):
            continue  # stale entry
        # Merge j into i.
        active[j] = False
        members[i].extend(members[j])
        members[j] = []
        si, sj = sizes[i], sizes[j]
        sizes[i] = si + sj
        version[i] += 1
        stamp_i = version[i]
        # Vectorized Lance-Williams (UPGMA) row update: identical IEEE
        # operations per element as the scalar loop it replaces.
        merged = (si * current[i] + sj * current[j]) / (si + sj)
        targets = active.copy()
        targets[i] = False
        current[i, targets] = merged[targets]
        current[targets, i] = merged[targets]
        push = heapq.heappush
        for k in np.flatnonzero(targets):
            k = int(k)
            if i < k:
                push(heap, (merged[k], i, k, stamp_i, version[k]))
            else:
                push(heap, (merged[k], k, i, version[k], stamp_i))
        remaining -= 1

    labels = [-1] * n
    next_label = 0
    for i in range(n):
        if active[i]:
            for member in members[i]:
                labels[member] = next_label
            next_label += 1
    return labels


def cluster_xpaths(
    xpath_tokens: Sequence[tuple],
    n_clusters: int,
    max_items: int = 400,
    *,
    engine: str = "batched",
) -> list[int]:
    """Cluster XPath step tuples by Levenshtein distance.

    ``xpath_tokens`` are tuples of steps (see :func:`repro.dom.xpath.parse_xpath`).
    When more than ``max_items`` paths are supplied, clustering runs on the
    distinct paths only (identical paths trivially co-cluster), keeping the
    distance matrix tractable.

    ``engine`` selects the distance-matrix implementation: ``"batched"``
    (default) interns the steps and runs the vectorized all-pairs DP,
    ``"python"`` is the pure-Python pairwise oracle.  Both produce exact
    integer distances, so labels are identical.

    Returns one label per input path.
    """
    n = len(xpath_tokens)
    if n == 0:
        return []
    distinct: dict[tuple, int] = {}
    for path in xpath_tokens:
        if path not in distinct:
            distinct[path] = len(distinct)
    unique_paths = list(distinct.keys())
    if len(unique_paths) > max_items:
        # Deterministic thinning: keep evenly spaced unique paths, assign
        # dropped paths to the cluster of their nearest kept path later.
        stride = len(unique_paths) / max_items
        kept_indices = sorted({int(i * stride) for i in range(max_items)})
        kept_paths = [unique_paths[i] for i in kept_indices]
    else:
        kept_paths = unique_paths

    if engine == "batched":
        matrix = levenshtein_matrix(kept_paths)
    elif engine == "python":
        matrix = pairwise_distance_matrix(kept_paths, levenshtein)
    else:
        raise ValueError(f"unknown cluster_xpaths engine {engine!r}")
    kept_labels = agglomerative_cluster(matrix, n_clusters)
    label_of_kept = dict(zip(kept_paths, kept_labels))

    def label_for(path: tuple) -> int:
        found = label_of_kept.get(path)
        if found is not None:
            return found
        # Nearest kept path, with the early-exit limit seeded by the best
        # distance so far: a candidate whose true distance exceeds the
        # limit returns *some* value above it, which loses the `<`
        # comparison exactly as the true distance would — so the chosen
        # label matches the unbounded scan's.
        best_label, best_distance = 0, None
        for kept, label in label_of_kept.items():
            d = levenshtein(path, kept, limit=best_distance)
            if best_distance is None or d < best_distance:
                best_distance, best_label = d, label
        return best_label

    return [label_for(path) for path in xpath_tokens]
