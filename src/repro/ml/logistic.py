"""Multinomial logistic regression trained with L-BFGS (sklearn substitute).

The paper (Section 4.2, 5.2) models ``Pr(Y = k | X)`` as multinomial
logistic regression trained with scikit-learn's LBFGS solver under L2
regularization with ``C = 1``.  This implementation reproduces that
objective exactly:

    minimize  0.5 * ||W||^2  +  C * sum_i  -log P(y_i | x_i)

(the scikit-learn convention: the regularizer is unscaled and the data
term is multiplied by ``C``), optimized with ``scipy.optimize`` L-BFGS-B
using analytic gradients.  Intercepts are unregularized, as in
scikit-learn.

Two solve paths produce **bit-identical coefficients**:

* the *reference* path — the original textbook objective handed to
  ``scipy.optimize.minimize`` — kept as the equivalence oracle;
* the *fast* path (default), which removes interpreter and allocator
  overhead without changing a single float operation:

  - duplicate CSR rows (template sites repeat feature patterns on every
    page) are collapsed for the forward matvec and the softmax chain —
    each distinct row's logits and log-probabilities are computed by the
    same op sequence and broadcast back by row gather, so every value is
    the one the full-matrix pass would produce;
  - ``csr_matvecs`` is invoked directly with preallocated buffers,
    replicating ``scipy.sparse``'s ``_matmul_multivector`` exactly;
  - the elementwise chain reuses ``out=`` buffers, keeping the identical
    sequence of IEEE operations;
  - the L-BFGS-B driver loop calls ``setulb`` directly, replicating
    ``scipy.optimize._minimize_lbfgsb``'s call sequence (same ``factr``,
    ``pgtol``, ``m``, ``maxls``, iteration/termination bookkeeping) while
    skipping the per-evaluation ``ScalarFunction`` wrapper cost.  If the
    private interface is unavailable or mismatched, the fast path falls
    back to ``scipy.optimize.minimize`` transparently.
"""

from __future__ import annotations

import numpy as np
import scipy.optimize
import scipy.sparse as sp
from scipy.sparse import _sparsetools

try:  # pragma: no cover - exercised implicitly on import
    from scipy.optimize import _lbfgsb as _lbfgsb_module

    # The driver replicates the scipy >= 1.15 C-translated interface
    # (int32 task codes, trailing ln_task).  Older interfaces fall back.
    _HAVE_FAST_LBFGSB = "ln_task" in (getattr(_lbfgsb_module, "setulb", None).__doc__ or "")
except Exception:  # pragma: no cover - depends on scipy build
    _lbfgsb_module = None
    _HAVE_FAST_LBFGSB = False

__all__ = ["SoftmaxRegression"]

#: scipy.optimize.minimize's L-BFGS-B defaults, replicated by the fast
#: driver: options {maxiter, gtol} leave ftol/maxcor/maxls/maxfun at these.
_LBFGSB_FTOL = 2.2204460492503131e-09
_LBFGSB_MAXCOR = 10
_LBFGSB_MAXLS = 20
_LBFGSB_MAXFUN = 15000

#: Collapse duplicate rows for the forward pass only when they actually
#: repeat; below this ratio the gather costs more than it saves.
_UNIQUE_ROW_RATIO = 0.8


def _log_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))


class SoftmaxRegression:
    """Multinomial logistic regression with L2 regularization.

    Parameters:
        C: inverse regularization strength (paper: 1.0).
        max_iter: L-BFGS iteration budget.
        tol: optimizer convergence tolerance.

    Attributes (after fit):
        classes_: sorted array of class labels.
        coef_: ``(n_classes, n_features)`` weight matrix.
        intercept_: ``(n_classes,)`` bias vector.
    """

    def __init__(self, C: float = 1.0, max_iter: int = 300, tol: float = 1e-6) -> None:
        if C <= 0:
            raise ValueError("C must be positive")
        self.C = C
        self.max_iter = max_iter
        self.tol = tol
        self.classes_: np.ndarray | None = None
        self.coef_: np.ndarray | None = None
        self.intercept_: np.ndarray | None = None

    # -- training ---------------------------------------------------------

    def fit(self, X: sp.spmatrix, y, engine: str = "fast") -> SoftmaxRegression:
        """Fit on sparse features ``X`` and labels ``y`` (any hashables).

        ``engine="fast"`` (default) runs the deduplicated, preallocated
        objective through the direct ``setulb`` driver; ``"reference"``
        runs the original objective through ``scipy.optimize.minimize``.
        Both produce bit-identical coefficients (covered by tests).
        """
        if engine not in ("fast", "reference"):
            raise ValueError(f"unknown fit engine {engine!r}")
        X = sp.csr_matrix(X)
        y = np.asarray(y)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree on sample count")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty training set")
        self.classes_, y_idx = np.unique(y, return_inverse=True)
        n_samples, n_features = X.shape
        n_classes = len(self.classes_)
        if n_classes < 2:
            # Degenerate but legal: a single observed class.  Predictions
            # will return that class with probability 1.
            self.coef_ = np.zeros((1, n_features))
            self.intercept_ = np.zeros(1)
            return self

        Y = np.zeros((n_samples, n_classes))
        Y[np.arange(n_samples), y_idx] = 1.0

        if engine == "fast":
            objective = self._fast_objective(X, Y)
            flat = _minimize_lbfgsb(
                objective,
                n_classes * n_features + n_classes,
                maxiter=self.max_iter,
                pgtol=self.tol,
            )
        else:
            objective = self._reference_objective(X, Y)
            flat = scipy.optimize.minimize(
                objective,
                np.zeros(n_classes * n_features + n_classes),
                jac=True,
                method="L-BFGS-B",
                options={"maxiter": self.max_iter, "gtol": self.tol},
            ).x
        self.coef_ = flat[: n_classes * n_features].reshape(n_classes, n_features)
        self.intercept_ = flat[n_classes * n_features :]
        return self

    def _reference_objective(self, X: sp.csr_matrix, Y: np.ndarray):
        """The original textbook loss/gradient closure (equivalence oracle)."""
        n_samples, n_features = X.shape
        n_classes = Y.shape[1]
        Xt = X.T.tocsr()

        def objective(flat: np.ndarray):
            W = flat[: n_classes * n_features].reshape(n_classes, n_features)
            b = flat[n_classes * n_features :]
            logits = X @ W.T + b
            log_prob = _log_softmax(logits)
            data_loss = -np.sum(Y * log_prob)
            reg_loss = 0.5 * np.sum(W * W)
            loss = reg_loss + self.C * data_loss

            P = np.exp(log_prob)
            G = self.C * (P - Y)  # (n_samples, n_classes)
            grad_W = (Xt @ G).T + W
            grad_b = G.sum(axis=0)
            return loss, np.concatenate([grad_W.ravel(), grad_b])

        return objective

    def _fast_objective(self, X: sp.csr_matrix, Y: np.ndarray):
        """Preallocated, row-deduplicated closure.

        Every float is produced by the same operation sequence as the
        reference closure: the forward matvec replicates
        ``_matmul_multivector`` (zeroed output + ``csr_matvecs`` on a
        C-contiguous ``W.T``), row-level ops are computed once per
        *distinct* row and gathered back (row-local math is identical),
        and full-matrix reductions (``sum(Y * log_prob)``, ``G.sum(0)``,
        ``Xt @ G``) still run over the expanded matrices in the original
        order.
        """
        n_samples, n_features = X.shape
        n_classes = Y.shape[1]
        C = self.C
        Xt = X.T.tocsr()
        t_indptr, t_indices, t_data = Xt.indptr, Xt.indices, Xt.data

        # -- duplicate-row collapse for the forward pass ------------------
        indptr, indices, data = X.indptr, X.indices, X.data
        row_group = np.empty(n_samples, dtype=np.intp)
        group_of: dict[bytes, int] = {}
        unique_rows: list[int] = []
        for row in range(n_samples):
            start, stop = indptr[row], indptr[row + 1]
            key = indices[start:stop].tobytes() + data[start:stop].tobytes()
            group = group_of.get(key)
            if group is None:
                group = len(group_of)
                group_of[key] = group
                unique_rows.append(row)
            row_group[row] = group
        n_unique = len(unique_rows)
        if n_unique <= _UNIQUE_ROW_RATIO * n_samples:
            forward = sp.csr_matrix(X[np.asarray(unique_rows)])
            expand: np.ndarray | None = row_group
        else:
            forward = X
            expand = None
        f_rows = forward.shape[0]
        f_indptr, f_indices, f_data = forward.indptr, forward.indices, forward.data

        # -- preallocated buffers ----------------------------------------
        logits = np.empty((f_rows, n_classes))
        row_max = np.empty((f_rows, 1))
        shifted = np.empty((f_rows, n_classes))
        exp_buf = np.empty((f_rows, n_classes))
        row_sum = np.empty((f_rows, 1))
        log_prob_rows = np.empty((f_rows, n_classes))
        prob_rows = np.empty((f_rows, n_classes))
        if expand is None:
            log_prob = log_prob_rows
            P = prob_rows
        else:
            log_prob = np.empty((n_samples, n_classes))
            P = np.empty((n_samples, n_classes))
        loss_buf = np.empty((n_samples, n_classes))
        G = np.empty((n_samples, n_classes))
        XtG = np.empty((n_features, n_classes))
        coef_size = n_classes * n_features
        logits_flat = logits.ravel()
        XtG_flat = XtG.ravel()
        XtG_T = XtG.T

        # Local bindings keep the per-evaluation interpreter overhead off
        # the 200+ L-BFGS iterations.
        matvecs = _sparsetools.csr_matvecs
        ascontiguous = np.ascontiguousarray
        add, subtract, multiply = np.add, np.subtract, np.multiply
        nmax, nsum, nexp, nlog, ntake = np.max, np.sum, np.exp, np.log, np.take
        empty = np.empty

        def objective(flat: np.ndarray):
            W = flat[:coef_size].reshape(n_classes, n_features)
            b = flat[coef_size:]
            # logits = X @ W.T + b, exactly as _matmul_multivector does it.
            Wt = ascontiguous(W.T)
            logits.fill(0.0)
            matvecs(
                f_rows, n_features, n_classes,
                f_indptr, f_indices, f_data, Wt.ravel(), logits_flat,
            )
            add(logits, b, out=logits)
            # log-softmax, one pass per distinct row.
            nmax(logits, axis=1, keepdims=True, out=row_max)
            subtract(logits, row_max, out=shifted)
            nexp(shifted, out=exp_buf)
            nsum(exp_buf, axis=1, keepdims=True, out=row_sum)
            nlog(row_sum, out=row_sum)
            subtract(shifted, row_sum, out=log_prob_rows)
            nexp(log_prob_rows, out=prob_rows)
            if expand is not None:
                ntake(log_prob_rows, expand, axis=0, out=log_prob)
                ntake(prob_rows, expand, axis=0, out=P)
            # Loss: full-matrix reductions in the reference order.
            multiply(Y, log_prob, out=loss_buf)
            data_loss = -nsum(loss_buf)
            reg_loss = 0.5 * nsum(W * W)
            loss = reg_loss + (data_loss if C == 1.0 else C * data_loss)
            # Gradient.  C == 1.0 multiplications are exact identities.
            subtract(P, Y, out=G)
            if C != 1.0:
                multiply(C, G, out=G)
            XtG.fill(0.0)
            matvecs(
                n_features, n_samples, n_classes,
                t_indptr, t_indices, t_data, G.ravel(), XtG_flat,
            )
            grad = empty(coef_size + n_classes)
            grad_W = grad[:coef_size].reshape(n_classes, n_features)
            add(XtG_T, W, out=grad_W)
            nsum(G, axis=0, out=grad[coef_size:])
            return loss, grad

        return objective

    # -- inference ----------------------------------------------------------

    def decision_function(self, X: sp.spmatrix) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        return np.asarray(X @ self.coef_.T + self.intercept_)

    def predict_proba(self, X: sp.spmatrix) -> np.ndarray:
        """Class probabilities, rows summing to 1."""
        if self.classes_ is not None and len(self.classes_) == 1:
            return np.ones((X.shape[0], 1))
        return np.exp(_log_softmax(self.decision_function(X)))

    def predict(self, X: sp.spmatrix) -> np.ndarray:
        """Most probable class label per row."""
        if self.classes_ is None:
            raise RuntimeError("model is not fitted")
        if len(self.classes_) == 1:
            return np.repeat(self.classes_, X.shape[0])
        return self.classes_[np.argmax(self.decision_function(X), axis=1)]

    def log_loss(self, X: sp.spmatrix, y) -> float:
        """Mean negative log-likelihood of ``y`` under the model."""
        if self.classes_ is None:
            raise RuntimeError("model is not fitted")
        probabilities = self.predict_proba(X)
        class_index = {label: idx for idx, label in enumerate(self.classes_)}
        rows = np.arange(len(y))
        cols = np.array([class_index[label] for label in y])
        picked = np.clip(probabilities[rows, cols], 1e-12, None)
        return float(-np.mean(np.log(picked)))


def _minimize_lbfgsb(objective, n: int, maxiter: int, pgtol: float) -> np.ndarray:
    """Unbounded L-BFGS-B from ``x0 = 0`` via direct ``setulb`` calls.

    Replicates ``scipy.optimize._lbfgsb_py._minimize_lbfgsb`` for the
    exact configuration this module uses (``jac=True``, no bounds, no
    callback, options ``{maxiter, gtol}``): the same workspace layout,
    ``factr``/``pgtol``, task-code handling, and iteration/``maxfun``
    bookkeeping — so the evaluation sequence, and therefore the returned
    ``x``, match ``scipy.optimize.minimize`` bit for bit.  Falls back to
    ``scipy.optimize.minimize`` when the private interface is missing or
    refuses the call.
    """
    if _HAVE_FAST_LBFGSB:
        try:
            return _setulb_loop(objective, n, maxiter, pgtol)
        except TypeError:  # pragma: no cover - future setulb signature drift
            pass
    result = scipy.optimize.minimize(  # pragma: no cover - fallback path
        objective,
        np.zeros(n),
        jac=True,
        method="L-BFGS-B",
        options={"maxiter": maxiter, "gtol": pgtol},
    )
    return result.x


def _setulb_loop(objective, n: int, maxiter: int, pgtol: float) -> np.ndarray:
    m = _LBFGSB_MAXCOR
    factr = _LBFGSB_FTOL / np.finfo(float).eps
    x = np.zeros(n, dtype=np.float64)
    low_bnd = np.zeros(n, dtype=np.float64)
    upper_bnd = np.zeros(n, dtype=np.float64)
    nbd = np.zeros(n, dtype=np.int32)
    f = np.array(0.0, dtype=np.float64)
    g = np.zeros(n, dtype=np.float64)
    wa = np.zeros(2 * m * n + 5 * n + 11 * m * m + 8 * m, dtype=np.float64)
    iwa = np.zeros(3 * n, dtype=np.int32)
    task = np.zeros(2, dtype=np.int32)
    ln_task = np.zeros(2, dtype=np.int32)
    lsave = np.zeros(4, dtype=np.int32)
    isave = np.zeros(44, dtype=np.int32)
    dsave = np.zeros(29, dtype=np.float64)
    setulb = _lbfgsb_module.setulb

    n_iterations = 0
    n_evaluations = 0
    while True:
        g = g.astype(np.float64)
        setulb(
            m, x, low_bnd, upper_bnd, nbd, f, g, factr, pgtol, wa, iwa,
            task, lsave, isave, dsave, _LBFGSB_MAXLS, ln_task,
        )
        if task[0] == 3:
            # The minimization routine wants f and g at the current x.
            f, g = objective(x)
            n_evaluations += 1
        elif task[0] == 1:
            # New iteration; replicate scipy's stop bookkeeping.
            n_iterations += 1
            if n_iterations >= maxiter:
                task[0] = 5
                task[1] = 504
            elif n_evaluations > _LBFGSB_MAXFUN:
                task[0] = 5
                task[1] = 502
        else:
            break
    return x
