"""Multinomial logistic regression trained with L-BFGS (sklearn substitute).

The paper (Section 4.2, 5.2) models ``Pr(Y = k | X)`` as multinomial
logistic regression trained with scikit-learn's LBFGS solver under L2
regularization with ``C = 1``.  This implementation reproduces that
objective exactly:

    minimize  0.5 * ||W||^2  +  C * sum_i  -log P(y_i | x_i)

(the scikit-learn convention: the regularizer is unscaled and the data
term is multiplied by ``C``), optimized with ``scipy.optimize`` L-BFGS-B
using analytic gradients.  Intercepts are unregularized, as in
scikit-learn.
"""

from __future__ import annotations

import numpy as np
import scipy.optimize
import scipy.sparse as sp

__all__ = ["SoftmaxRegression"]


def _log_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))


class SoftmaxRegression:
    """Multinomial logistic regression with L2 regularization.

    Parameters:
        C: inverse regularization strength (paper: 1.0).
        max_iter: L-BFGS iteration budget.
        tol: optimizer convergence tolerance.

    Attributes (after fit):
        classes_: sorted array of class labels.
        coef_: ``(n_classes, n_features)`` weight matrix.
        intercept_: ``(n_classes,)`` bias vector.
    """

    def __init__(self, C: float = 1.0, max_iter: int = 300, tol: float = 1e-6) -> None:
        if C <= 0:
            raise ValueError("C must be positive")
        self.C = C
        self.max_iter = max_iter
        self.tol = tol
        self.classes_: np.ndarray | None = None
        self.coef_: np.ndarray | None = None
        self.intercept_: np.ndarray | None = None

    # -- training ---------------------------------------------------------

    def fit(self, X: sp.spmatrix, y) -> SoftmaxRegression:
        """Fit on sparse features ``X`` and labels ``y`` (any hashables)."""
        X = sp.csr_matrix(X)
        y = np.asarray(y)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree on sample count")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty training set")
        self.classes_, y_idx = np.unique(y, return_inverse=True)
        n_samples, n_features = X.shape
        n_classes = len(self.classes_)
        if n_classes < 2:
            # Degenerate but legal: a single observed class.  Predictions
            # will return that class with probability 1.
            self.coef_ = np.zeros((1, n_features))
            self.intercept_ = np.zeros(1)
            return self

        Y = np.zeros((n_samples, n_classes))
        Y[np.arange(n_samples), y_idx] = 1.0
        Xt = X.T.tocsr()

        def objective(flat: np.ndarray):
            W = flat[: n_classes * n_features].reshape(n_classes, n_features)
            b = flat[n_classes * n_features :]
            logits = X @ W.T + b
            log_prob = _log_softmax(logits)
            data_loss = -np.sum(Y * log_prob)
            reg_loss = 0.5 * np.sum(W * W)
            loss = reg_loss + self.C * data_loss

            P = np.exp(log_prob)
            G = self.C * (P - Y)  # (n_samples, n_classes)
            grad_W = (Xt @ G).T + W
            grad_b = G.sum(axis=0)
            return loss, np.concatenate([grad_W.ravel(), grad_b])

        x0 = np.zeros(n_classes * n_features + n_classes)
        result = scipy.optimize.minimize(
            objective,
            x0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter, "gtol": self.tol},
        )
        flat = result.x
        self.coef_ = flat[: n_classes * n_features].reshape(n_classes, n_features)
        self.intercept_ = flat[n_classes * n_features :]
        return self

    # -- inference ----------------------------------------------------------

    def decision_function(self, X: sp.spmatrix) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        return np.asarray(X @ self.coef_.T + self.intercept_)

    def predict_proba(self, X: sp.spmatrix) -> np.ndarray:
        """Class probabilities, rows summing to 1."""
        if self.classes_ is not None and len(self.classes_) == 1:
            return np.ones((X.shape[0], 1))
        return np.exp(_log_softmax(self.decision_function(X)))

    def predict(self, X: sp.spmatrix) -> np.ndarray:
        """Most probable class label per row."""
        if self.classes_ is None:
            raise RuntimeError("model is not fitted")
        if len(self.classes_) == 1:
            return np.repeat(self.classes_, X.shape[0])
        return self.classes_[np.argmax(self.decision_function(X), axis=1)]

    def log_loss(self, X: sp.spmatrix, y) -> float:
        """Mean negative log-likelihood of ``y`` under the model."""
        if self.classes_ is None:
            raise RuntimeError("model is not fitted")
        probabilities = self.predict_proba(X)
        class_index = {label: idx for idx, label in enumerate(self.classes_)}
        rows = np.arange(len(y))
        cols = np.array([class_index[label] for label in y])
        picked = np.clip(probabilities[rows, cols], 1e-12, None)
        return float(-np.mean(np.log(picked)))
