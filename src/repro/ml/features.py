"""Dict-of-features → sparse matrix vectorization (DictVectorizer substitute).

CERES represents each DOM node as a sparse bag of named features
(Section 4.2).  The vectorizer learns a vocabulary on fit and produces
``scipy.sparse`` CSR matrices; unseen features at transform time are
silently dropped (the standard behaviour the paper's scikit-learn stack
provides).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np
import scipy.sparse as sp

__all__ = ["FeatureVectorizer"]


class FeatureVectorizer:
    """Maps feature dictionaries to rows of a CSR matrix."""

    def __init__(self) -> None:
        self.vocabulary_: dict[str, int] = {}
        self._fitted = False

    @property
    def n_features(self) -> int:
        return len(self.vocabulary_)

    def fit(self, samples: Sequence[Mapping[str, float]]) -> FeatureVectorizer:
        """Learn the feature vocabulary (sorted for determinism)."""
        names: set[str] = set()
        for sample in samples:
            names.update(sample.keys())
        self.vocabulary_ = {name: idx for idx, name in enumerate(sorted(names))}
        self._fitted = True
        return self

    def transform(self, samples: Sequence[Mapping[str, float]]) -> sp.csr_matrix:
        """Vectorize ``samples`` against the learned vocabulary.

        Mapping keys are unique, so duplicate columns within a row are
        impossible and no ``sum_duplicates()`` pass is needed; entries are
        emitted in ascending column order (the canonical CSR layout that
        ``sum_duplicates()`` used to establish) into preallocated buffers.
        """
        if not self._fitted:
            raise RuntimeError("vectorizer is not fitted")
        vocabulary = self.vocabulary_
        n_samples = len(samples)
        capacity = sum(len(sample) for sample in samples)
        indices = np.empty(capacity, dtype=np.int32)
        data = np.empty(capacity, dtype=np.float64)
        indptr = np.empty(n_samples + 1, dtype=np.int32)
        indptr[0] = 0
        cursor = 0
        for row, sample in enumerate(samples):
            entries = sorted(
                (column, value)
                for name, value in sample.items()
                if value and (column := vocabulary.get(name)) is not None
            )
            for column, value in entries:
                indices[cursor] = column
                data[cursor] = value
                cursor += 1
            indptr[row + 1] = cursor
        matrix = sp.csr_matrix(
            (data[:cursor], indices[:cursor], indptr),
            shape=(n_samples, len(vocabulary)),
        )
        matrix.has_sorted_indices = True
        return matrix

    def fit_transform(self, samples: Sequence[Mapping[str, float]]) -> sp.csr_matrix:
        return self.fit(samples).transform(samples)

    def feature_names(self) -> list[str]:
        """Feature names in column order."""
        return sorted(self.vocabulary_, key=self.vocabulary_.__getitem__)
