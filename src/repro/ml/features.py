"""Dict-of-features → sparse matrix vectorization (DictVectorizer substitute).

CERES represents each DOM node as a sparse bag of named features
(Section 4.2).  The vectorizer learns a vocabulary on fit and produces
``scipy.sparse`` CSR matrices; unseen features at transform time are
silently dropped (the standard behaviour the paper's scikit-learn stack
provides).

Feature namespaces
------------------

Every feature the extraction stack produces carries an explicit
namespace prefix separating *site-local* vocabulary from *transferable*
structure (the split ZeroShotCeres showed matters for cross-site
generalization):

* ``site:`` — anything tied to one site's private vocabulary: HTML
  attribute values (CSS class names, ids, microdata URLs), the site's
  frequent-string lexicon, raw paths.  These features are meaningless on
  any other site.
* ``xfer:`` — topology-relative structure that transfers across sites
  of a vertical: tag-name ancestry/sibling windows, depth and layout
  buckets, token overlap with predicate names, node-text shape classes.

Per-site models consume both namespaces; the cross-site global model
(:mod:`repro.transfer`) is trained on ``xfer:`` features only.  The
helpers here (:func:`split_namespace`, :data:`SITE_NAMESPACE`,
:data:`TRANSFER_NAMESPACE`) are the single source of truth for the
prefix scheme, and :class:`FeatureVectorizer` exposes the namespace
structure of a fitted vocabulary (:meth:`FeatureVectorizer.namespace_counts`,
:meth:`FeatureVectorizer.restrict`).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np
import scipy.sparse as sp

__all__ = [
    "FeatureVectorizer",
    "NAMESPACE_SEPARATOR",
    "SITE_NAMESPACE",
    "TRANSFER_NAMESPACE",
    "namespace_of",
    "split_namespace",
]

#: Separator between a feature's namespace prefix and its local name.
NAMESPACE_SEPARATOR = ":"
#: Namespace of site-local vocabulary (attr values, frequent strings).
SITE_NAMESPACE = "site"
#: Namespace of transferable, topology-relative structure.
TRANSFER_NAMESPACE = "xfer"


def split_namespace(name: str) -> tuple[str, str]:
    """``(namespace, local name)`` of a feature name.

    Names without a separator belong to the anonymous namespace ``""``
    (hand-built test vocabularies; nothing the extraction stack emits).
    """
    namespace, separator, local = name.partition(NAMESPACE_SEPARATOR)
    if not separator:
        return "", name
    return namespace, local


def namespace_of(name: str) -> str:
    """The namespace prefix of a feature name (``""`` when absent)."""
    return split_namespace(name)[0]


class FeatureVectorizer:
    """Maps feature dictionaries to rows of a CSR matrix."""

    def __init__(self) -> None:
        self.vocabulary_: dict[str, int] = {}
        self._fitted = False

    @property
    def n_features(self) -> int:
        return len(self.vocabulary_)

    def fit(self, samples: Sequence[Mapping[str, float]]) -> FeatureVectorizer:
        """Learn the feature vocabulary (sorted for determinism)."""
        names: set[str] = set()
        for sample in samples:
            names.update(sample.keys())
        self.vocabulary_ = {name: idx for idx, name in enumerate(sorted(names))}
        self._fitted = True
        return self

    def transform(self, samples: Sequence[Mapping[str, float]]) -> sp.csr_matrix:
        """Vectorize ``samples`` against the learned vocabulary.

        Mapping keys are unique, so duplicate columns within a row are
        impossible and no ``sum_duplicates()`` pass is needed; entries are
        emitted in ascending column order (the canonical CSR layout that
        ``sum_duplicates()`` used to establish) into preallocated buffers.
        """
        if not self._fitted:
            raise RuntimeError("vectorizer is not fitted")
        vocabulary = self.vocabulary_
        n_samples = len(samples)
        capacity = sum(len(sample) for sample in samples)
        indices = np.empty(capacity, dtype=np.int32)
        data = np.empty(capacity, dtype=np.float64)
        indptr = np.empty(n_samples + 1, dtype=np.int32)
        indptr[0] = 0
        cursor = 0
        for row, sample in enumerate(samples):
            entries = sorted(
                (column, value)
                for name, value in sample.items()
                if value and (column := vocabulary.get(name)) is not None
            )
            for column, value in entries:
                indices[cursor] = column
                data[cursor] = value
                cursor += 1
            indptr[row + 1] = cursor
        matrix = sp.csr_matrix(
            (data[:cursor], indices[:cursor], indptr),
            shape=(n_samples, len(vocabulary)),
        )
        matrix.has_sorted_indices = True
        return matrix

    def fit_transform(self, samples: Sequence[Mapping[str, float]]) -> sp.csr_matrix:
        return self.fit(samples).transform(samples)

    # -- batched name-row path (training hot path) -------------------------

    def fit_names(self, rows: Sequence[Sequence[str]]) -> FeatureVectorizer:
        """:meth:`fit` over feature-*name* rows instead of dicts.

        Rows produced by :class:`repro.core.extraction.features.FeatureNameBatcher`
        share identity for template-identical nodes, so the union skips
        already-seen row objects.  The vocabulary is identical to fitting
        the equivalent dicts: the same name set, sorted.
        """
        names: set[str] = set()
        seen_rows: set[int] = set()
        for row in rows:
            key = id(row)
            if key in seen_rows:
                continue
            seen_rows.add(key)
            names.update(row)
        self.vocabulary_ = {name: idx for idx, name in enumerate(sorted(names))}
        self._fitted = True
        return self

    def transform_name_rows(self, rows: Sequence[Sequence[str]]) -> sp.csr_matrix:
        """:meth:`transform` over feature-name rows with all-ones values.

        Produces exactly the matrix :meth:`transform` would for dicts
        mapping those names to ``1.0``: per row, the sorted unique known
        columns with unit values (duplicate names collapse just as
        duplicate dict keys cannot exist).  Distinct row *objects* are
        resolved against the vocabulary once and memoized by identity.
        """
        if not self._fitted:
            raise RuntimeError("vectorizer is not fitted")
        vocabulary = self.vocabulary_
        n_samples = len(rows)
        column_cache: dict[int, np.ndarray] = {}
        row_columns: list[np.ndarray] = []
        capacity = 0
        for row in rows:
            columns = column_cache.get(id(row))
            if columns is None:
                found = {
                    column
                    for name in row
                    if (column := vocabulary.get(name)) is not None
                }
                columns = np.fromiter(
                    sorted(found), dtype=np.int32, count=len(found)
                )
                column_cache[id(row)] = columns
            row_columns.append(columns)
            capacity += len(columns)
        indices = np.empty(capacity, dtype=np.int32)
        indptr = np.empty(n_samples + 1, dtype=np.int32)
        indptr[0] = 0
        cursor = 0
        for index, columns in enumerate(row_columns):
            width = len(columns)
            indices[cursor : cursor + width] = columns
            cursor += width
            indptr[index + 1] = cursor
        matrix = sp.csr_matrix(
            (np.ones(capacity, dtype=np.float64), indices, indptr),
            shape=(n_samples, len(vocabulary)),
        )
        matrix.has_sorted_indices = True
        return matrix

    def fit_transform_name_rows(self, rows: Sequence[Sequence[str]]) -> sp.csr_matrix:
        return self.fit_names(rows).transform_name_rows(rows)

    def feature_names(self) -> list[str]:
        """Feature names in column order."""
        return sorted(self.vocabulary_, key=self.vocabulary_.__getitem__)

    # -- namespace structure -----------------------------------------------

    def namespace_counts(self) -> dict[str, int]:
        """Feature count per namespace prefix of the fitted vocabulary."""
        counts: dict[str, int] = {}
        for name in self.vocabulary_:
            namespace = namespace_of(name)
            counts[namespace] = counts.get(namespace, 0) + 1
        return counts

    def columns_for_namespace(self, namespace: str) -> np.ndarray:
        """Sorted column indices of the features in ``namespace``."""
        prefix = namespace + NAMESPACE_SEPARATOR
        return np.fromiter(
            sorted(
                column
                for name, column in self.vocabulary_.items()
                if name.startswith(prefix)
            ),
            dtype=np.int64,
        )

    def restrict(self, namespace: str) -> FeatureVectorizer:
        """A new fitted vectorizer over one namespace of this vocabulary.

        Columns are re-enumerated in sorted-name order (the canonical
        layout :meth:`fit` would produce over the same names), so a
        restricted vectorizer behaves exactly like one fitted on the
        namespace's features alone.
        """
        prefix = namespace + NAMESPACE_SEPARATOR
        restricted = FeatureVectorizer()
        restricted.vocabulary_ = {
            name: index
            for index, name in enumerate(
                sorted(n for n in self.vocabulary_ if n.startswith(prefix))
            )
        }
        restricted._fitted = True
        return restricted
