"""Dict-of-features → sparse matrix vectorization (DictVectorizer substitute).

CERES represents each DOM node as a sparse bag of named features
(Section 4.2).  The vectorizer learns a vocabulary on fit and produces
``scipy.sparse`` CSR matrices; unseen features at transform time are
silently dropped (the standard behaviour the paper's scikit-learn stack
provides).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np
import scipy.sparse as sp

__all__ = ["FeatureVectorizer"]


class FeatureVectorizer:
    """Maps feature dictionaries to rows of a CSR matrix."""

    def __init__(self) -> None:
        self.vocabulary_: dict[str, int] = {}
        self._fitted = False

    @property
    def n_features(self) -> int:
        return len(self.vocabulary_)

    def fit(self, samples: Sequence[Mapping[str, float]]) -> FeatureVectorizer:
        """Learn the feature vocabulary (sorted for determinism)."""
        names: set[str] = set()
        for sample in samples:
            names.update(sample.keys())
        self.vocabulary_ = {name: idx for idx, name in enumerate(sorted(names))}
        self._fitted = True
        return self

    def transform(self, samples: Sequence[Mapping[str, float]]) -> sp.csr_matrix:
        """Vectorize ``samples`` against the learned vocabulary."""
        if not self._fitted:
            raise RuntimeError("vectorizer is not fitted")
        indptr = [0]
        indices: list[int] = []
        data: list[float] = []
        vocabulary = self.vocabulary_
        for sample in samples:
            for name, value in sample.items():
                column = vocabulary.get(name)
                if column is not None and value:
                    indices.append(column)
                    data.append(float(value))
            indptr.append(len(indices))
        matrix = sp.csr_matrix(
            (np.asarray(data), np.asarray(indices, dtype=np.int32), np.asarray(indptr, dtype=np.int32)),
            shape=(len(samples), len(vocabulary)),
        )
        matrix.sum_duplicates()
        return matrix

    def fit_transform(self, samples: Sequence[Mapping[str, float]]) -> sp.csr_matrix:
        return self.fit(samples).transform(samples)

    def feature_names(self) -> list[str]:
        """Feature names in column order."""
        return sorted(self.vocabulary_, key=self.vocabulary_.__getitem__)
