"""Machine-learning substrate: vectorizer, classifier, clustering, metrics."""

from repro.ml.cluster import agglomerative_cluster, cluster_xpaths, pairwise_distance_matrix
from repro.ml.features import FeatureVectorizer
from repro.ml.logistic import SoftmaxRegression
from repro.ml.metrics import PRF, f1_score, mean_prf

__all__ = [
    "agglomerative_cluster",
    "cluster_xpaths",
    "pairwise_distance_matrix",
    "FeatureVectorizer",
    "SoftmaxRegression",
    "PRF",
    "f1_score",
    "mean_prf",
]
