"""Table 5: IMDb extraction quality — CERES-Topic vs CERES-Full.

The complex-site experiment: person pages with Known For / filmography /
Projects-in-Development hazards, film pages with recommendation rails and
long cast lists, plus TV-episode pages as a second template.  Expected
shape (paper): CERES-Full ≫ CERES-Topic in precision on both domains,
with the largest gap on person pages.
"""

from conftest import report

from repro.evaluation.experiments import run_table5
from repro.ml.metrics import PRF


def _pooled(result, domain, system):
    total = PRF()
    for systems in result.scores[domain].values():
        total += systems[system]
    return total


def test_table5_imdb_extraction(benchmark):
    result = benchmark.pedantic(
        run_table5,
        kwargs={"seed": 0, "n_films": 50, "n_people": 40, "n_episodes": 16},
        rounds=1,
        iterations=1,
    )
    report("table5_imdb_extraction", result.format())

    for domain in ("person", "film"):
        full = _pooled(result, domain, "full")
        topic = _pooled(result, domain, "topic")
        assert full.precision >= topic.precision, domain
        assert full.f1 >= topic.f1, domain
    assert _pooled(result, "person", "full").precision > 0.9
