"""Fault tolerance under fire: kill + resume equivalence and chaos recovery.

Two scenarios, both gated:

1. **Kill + resume** — a real ``python -m repro run-corpus`` subprocess
   with ``--run-dir`` is SIGKILLed (whole process group, so pool workers
   die too) right after its first site commits to the journal, then
   rerun with ``--resume``.  Gates: the resumed run's extraction JSONL
   and fused-fact JSONL are **byte-identical** to an uninterrupted
   baseline, and at least one completed site was skipped (resumed from
   the journal rather than recomputed).  Recovery overhead — resumed-run
   wall clock over baseline wall clock — is gated in full mode and
   informational in ``--quick`` (CI hardware jitter).

2. **Chaos plan** — ``run_corpus`` in-process under an injected fault
   plan (one site fails transiently once, one other site has a poison
   page).  Gates: zero sites lost, the transient failure retried
   (``runner.retries``), the poison page quarantined and reported
   (``runner.quarantined``, ``SiteReport.n_quarantined_pages``).

Run::

    PYTHONPATH=src python benchmarks/bench_resilience.py [--quick]
"""

from __future__ import annotations

import argparse
import io
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))  # for conftest.report
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from conftest import report, report_metrics  # noqa: E402

from repro import obs  # noqa: E402
from repro.datasets import generate_swde, seed_kb_for  # noqa: E402
from repro.kb.io import save_kb  # noqa: E402
from repro.obs import MetricsRegistry  # noqa: E402
from repro.runtime import run_corpus  # noqa: E402
from repro.testing.faults import FaultPlan, FaultSpec, active  # noqa: E402

#: Resumed-run wall clock over baseline wall clock (full mode gate): the
#: resume skips at least one site, so even with process startup on top
#: it must not cost more than the uninterrupted run plus slack.
MAX_RECOVERY_RATIO = 1.25
#: How long to wait for the doomed run to commit its first site.
KILL_POLL_TIMEOUT = 300.0


def build_corpus(root: Path, n_sites: int, pages_per_site: int) -> tuple[Path, Path, list[str]]:
    dataset = generate_swde("movie", n_sites=n_sites + 1,
                            pages_per_site=pages_per_site, seed=23)
    root.mkdir(parents=True, exist_ok=True)
    kb_path = root / "kb.json"
    save_kb(seed_kb_for(dataset, 23), kb_path)
    corpus_dir = root / "sites"
    corpus_dir.mkdir()
    names = []
    for site in dataset.sites[1:]:
        site_dir = corpus_dir / site.name
        site_dir.mkdir()
        for index, page in enumerate(site.pages):
            (site_dir / f"page{index:03d}.html").write_text(page.html)
        names.append(site.name)
    return kb_path, corpus_dir, sorted(names)


def corpus_args(kb_path: Path, corpus_dir: Path, root: Path, tag: str) -> list[str]:
    return [
        sys.executable, "-m", "repro", "run-corpus",
        "--kb", str(kb_path), "--corpus", str(corpus_dir),
        "--registry", str(root / f"models-{tag}"),
        "--output", str(root / f"rows-{tag}.jsonl"),
        "--fuse-output", str(root / f"facts-{tag}.jsonl"),
        "--run-dir", str(root / f"run-{tag}"),
        "--workers", "2",
    ]


def subprocess_env() -> dict:
    env = dict(os.environ)
    env.pop("REPRO_FAULT_PLAN", None)
    src = str(Path(__file__).parent.parent / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def count_committed(journal_path: Path) -> int:
    """Sites the journal shows fully committed (done/quarantined)."""
    if not journal_path.exists():
        return 0
    committed = set()
    for line in journal_path.read_text(encoding="utf-8").splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # the torn tail of an in-flight append
        if record.get("event") == "site" and record.get("state") in (
            "done", "quarantined",
        ):
            committed.add(record["site"])
    return len(committed)


def run_kill_resume(root: Path, n_sites: int, pages_per_site: int,
                    bench: MetricsRegistry) -> dict:
    kb_path, corpus_dir, names = build_corpus(root, n_sites, pages_per_site)
    env = subprocess_env()

    # Uninterrupted baseline.
    with bench.timer("bench.baseline_seconds") as baseline_timing:
        subprocess.run(
            corpus_args(kb_path, corpus_dir, root, "base"),
            check=True, env=env, capture_output=True,
        )

    # The doomed run: its own session (process group), so SIGKILLing the
    # group takes the pool workers down with the coordinator — the
    # harshest crash shape short of pulling power.  A hang fault at the
    # commit point freezes the coordinator right after its first site is
    # durably journaled, so the kill lands at a deterministic boundary
    # instead of racing the run to completion.
    doomed_env = dict(env)
    doomed_env["REPRO_FAULT_PLAN"] = FaultPlan(
        [FaultSpec("runner.site_committed", action="hang", times=1)]
    ).to_json()
    doomed = subprocess.Popen(
        corpus_args(kb_path, corpus_dir, root, "kill"),
        env=doomed_env, start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    journal_path = root / "run-kill" / "journal.jsonl"
    deadline = time.monotonic() + KILL_POLL_TIMEOUT
    killed_after = None
    try:
        while time.monotonic() < deadline:
            committed = count_committed(journal_path)
            if committed >= 1:
                killed_after = committed
                break
            if doomed.poll() is not None:
                raise RuntimeError(
                    "doomed run exited before the kill landed "
                    f"(rc={doomed.returncode})"
                )
            # repro: allow[bare-sleep] polling the victim's journal from outside the process — not a retry loop, no backoff wanted
            time.sleep(0.05)
        else:
            raise RuntimeError("doomed run never committed a site")
        os.killpg(os.getpgid(doomed.pid), signal.SIGKILL)
    finally:
        doomed.wait()

    # Resume from the journal.
    with bench.timer("bench.resume_seconds") as resume_timing:
        resumed_proc = subprocess.run(
            corpus_args(kb_path, corpus_dir, root, "kill") + ["--resume"],
            check=True, env=env, capture_output=True, text=True,
        )
    resumed_sites = resumed_proc.stderr.count(" resumed (unchanged")

    rows_equal = (
        (root / "rows-base.jsonl").read_bytes()
        == (root / "rows-kill.jsonl").read_bytes()
    )
    facts_equal = (
        (root / "facts-base.jsonl").read_bytes()
        == (root / "facts-kill.jsonl").read_bytes()
    )
    return {
        "n_sites": len(names),
        "committed_at_kill": killed_after,
        "resumed_sites": resumed_sites,
        "rows_bytes": (root / "rows-base.jsonl").stat().st_size,
        "rows_equal": rows_equal,
        "facts_equal": facts_equal,
        "baseline_seconds": baseline_timing.elapsed,
        "resume_seconds": resume_timing.elapsed,
        "recovery_ratio": resume_timing.elapsed / baseline_timing.elapsed,
    }


def run_chaos(root: Path, n_sites: int, pages_per_site: int,
              bench: MetricsRegistry) -> dict:
    kb_path, corpus_dir, names = build_corpus(
        root / "chaos", n_sites, pages_per_site
    )
    flaky, poisoned = names[0], names[1]
    plan = FaultPlan(
        [
            FaultSpec("site.run", action="raise-transient",
                      site=flaky, times=1),
            FaultSpec("page.parse", action="raise",
                      site=poisoned, page="page001.html"),
        ]
    )
    output = io.StringIO()
    with bench.timer("bench.chaos_seconds") as chaos_timing:
        with obs.scoped(tracing=False, metrics=True) as (_, registry):
            with active(plan):
                reports = run_corpus(
                    corpus_dir, kb_path, None, max_workers=1,
                    output=output, max_attempts=3, retry_backoff=0.01,
                )
            counters = registry.snapshot()["counters"]
    by_site = {r.site: r for r in reports}
    return {
        "n_sites": len(names),
        "sites_ok": sum(1 for r in reports if r.ok),
        "retries": counters.get("runner.retries", 0),
        "quarantined": counters.get("runner.quarantined", 0),
        "flaky_attempts": by_site[flaky].attempts,
        "poisoned_degraded": by_site[poisoned].degraded,
        "poisoned_quarantined_pages": by_site[poisoned].n_quarantined_pages,
        "chaos_seconds": chaos_timing.elapsed,
    }


def format_table(kr: dict, chaos: dict, quick: bool) -> str:
    def verdict(ok: bool) -> str:
        return "MET" if ok else "MISSED"

    ratio_line = (
        f"  recovery ratio (resume/baseline) {kr['recovery_ratio']:6.2f}   "
        + (
            "(informational in --quick)"
            if quick
            else f"(gate <= {MAX_RECOVERY_RATIO:.2f}: "
            f"{verdict(kr['recovery_ratio'] <= MAX_RECOVERY_RATIO)})"
        )
    )
    lines = [
        "Resilience: SIGKILL + resume equivalence, chaos recovery",
        f"  corpus                 {kr['n_sites']} sites",
        f"  sites committed at kill          {kr['committed_at_kill']}",
        f"  sites resumed unchanged          {kr['resumed_sites']}   "
        f"(gate >= 1: {verdict(kr['resumed_sites'] >= 1)})",
        f"  extraction JSONL identical       {kr['rows_equal']}   "
        f"(gate: {verdict(kr['rows_equal'])})",
        f"  fused JSONL identical            {kr['facts_equal']}   "
        f"(gate: {verdict(kr['facts_equal'])})",
        f"  baseline wall clock    {kr['baseline_seconds']:8.2f}s",
        f"  resume wall clock      {kr['resume_seconds']:8.2f}s",
        ratio_line,
        "  chaos plan: 1 transient site failure + 1 poison page",
        f"  sites ok               {chaos['sites_ok']}/{chaos['n_sites']}   "
        f"(gate: zero lost: {verdict(chaos['sites_ok'] == chaos['n_sites'])})",
        f"  transient retries      {chaos['retries']}   "
        f"(gate >= 1: {verdict(chaos['retries'] >= 1)})",
        f"  pages quarantined      {chaos['quarantined']}   "
        f"(gate == 1: {verdict(chaos['quarantined'] == 1)})",
        f"  chaos wall clock       {chaos['chaos_seconds']:8.2f}s",
    ]
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small corpus; equivalence gates stay hard, timing gates "
        "become informational (CI smoke)",
    )
    args = parser.parse_args()
    n_sites, pages = (3, 10) if args.quick else (6, 16)

    bench = MetricsRegistry()
    with tempfile.TemporaryDirectory(prefix="bench_resilience_") as tmp:
        root = Path(tmp)
        kr = run_kill_resume(root, n_sites, pages, bench)
        chaos = run_chaos(root, n_sites, pages, bench)

    report("resilience", format_table(kr, chaos, args.quick))
    report_metrics("resilience", bench.snapshot())

    failures = []
    if not kr["rows_equal"]:
        failures.append("resumed extraction JSONL diverged from baseline")
    if not kr["facts_equal"]:
        failures.append("resumed fused JSONL diverged from baseline")
    if kr["resumed_sites"] < 1:
        failures.append("resume recomputed every site (journal unused)")
    if not args.quick and kr["recovery_ratio"] > MAX_RECOVERY_RATIO:
        failures.append(
            f"recovery ratio {kr['recovery_ratio']:.2f} exceeds "
            f"{MAX_RECOVERY_RATIO:.2f}"
        )
    if chaos["sites_ok"] != chaos["n_sites"]:
        failures.append("chaos run lost a site")
    if chaos["retries"] < 1:
        failures.append("transient failure was not retried")
    if chaos["quarantined"] != 1 or chaos["poisoned_quarantined_pages"] != 1:
        failures.append("poison page was not quarantined/reported")
    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
