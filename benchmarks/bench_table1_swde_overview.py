"""Table 1: SWDE dataset overview (synthetic analogue).

Regenerates the vertical/site/page/attribute inventory.  The benchmark
time measures full corpus generation including DOM parsing of every page.
"""

from conftest import report

from repro.evaluation.experiments import run_table1


def test_table1_swde_overview(benchmark):
    result = benchmark.pedantic(
        run_table1, kwargs={"n_sites": 10, "pages_per_site": 32, "seed": 0},
        rounds=1, iterations=1,
    )
    report("table1_swde_overview", result.format())
    assert len(result.rows) == 4
