"""Ablation: node feature families (design choice, Section 4.2).

Structural-only vs text-only vs both, on IMDb person pages.  Expected:
the combination is at least as good as either family alone — structural
features carry most of the signal on template pages, text features
disambiguate rows that share a shape.
"""

from conftest import report

from repro.evaluation.experiments import run_feature_ablation


def test_ablation_features(benchmark):
    result = benchmark.pedantic(
        run_feature_ablation, kwargs={"seed": 0}, rounds=1, iterations=1
    )
    report("ablation_features", result.format())

    structural = result.scores["structural only"]
    text = result.scores["text only"]
    both = result.scores["structural + text (paper)"]
    assert both.f1 >= max(structural.f1, text.f1) - 0.05
    assert structural.defined and text.defined
