"""Serving throughput: cold pipeline vs. warm ExtractionService.

The cold path re-runs template clustering, topic identification,
relation annotation, and L-BFGS training on every call; the warm path
(``repro.runtime.service.ExtractionService``) loads a registry artifact
once and only does feature extraction + a matrix multiply per page.
This script measures pages/sec for both on a 200-page synthetic movie
site and reports the speedup, giving future serving-perf PRs a baseline.

Target: warm ≥ 5× cold.

Run::

    PYTHONPATH=src python benchmarks/bench_runtime_throughput.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))  # for conftest.report
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from conftest import report  # noqa: E402

from repro.core.config import CeresConfig  # noqa: E402
from repro.core.pipeline import CeresPipeline  # noqa: E402
from repro.datasets import generate_swde, seed_kb_for  # noqa: E402
from repro.runtime import ExtractionService, ModelRegistry, SiteModel  # noqa: E402

N_PAGES = 200
WARM_ROUNDS = 3
TARGET_SPEEDUP = 5.0


def run_benchmark(tmp_registry: str | Path = "/tmp/repro_bench_registry") -> dict:
    dataset = generate_swde("movie", n_sites=2, pages_per_site=N_PAGES, seed=11)
    kb = seed_kb_for(dataset, 11)
    site = dataset.sites[1]
    documents = [page.document for page in site.pages]  # parse outside timing
    config = CeresConfig()

    # Cold: the full annotate → train → extract pipeline, as `extract` runs it.
    started = time.perf_counter()
    pipeline = CeresPipeline(kb, config)
    result = pipeline.run(documents, documents)
    cold_seconds = time.perf_counter() - started
    cold_pps = len(documents) / cold_seconds

    # Persist the trained model and serve it back through the registry,
    # exactly as `train` + `serve` do.
    registry = ModelRegistry(tmp_registry)
    registry.save(SiteModel.from_result(site.name, config, result))
    service = ExtractionService(registry)
    service.extract_pages(site.name, documents[:4])  # load + build extractors

    started = time.perf_counter()
    for _ in range(WARM_ROUNDS):
        warm_extractions = service.extract_pages(site.name, documents)
    warm_seconds = (time.perf_counter() - started) / WARM_ROUNDS
    warm_pps = len(documents) / warm_seconds

    speedup = warm_pps / cold_pps
    return {
        "n_pages": len(documents),
        "cold_seconds": cold_seconds,
        "cold_pps": cold_pps,
        "warm_seconds": warm_seconds,
        "warm_pps": warm_pps,
        "speedup": speedup,
        "cold_extractions": len(result.extractions),
        "warm_extractions": len(warm_extractions),
    }


def format_table(stats: dict) -> str:
    met = "MET" if stats["speedup"] >= TARGET_SPEEDUP else "MISSED"
    lines = [
        "Runtime throughput: cold pipeline vs. warm ExtractionService",
        f"  pages per batch        {stats['n_pages']}",
        f"  cold (annotate+train+extract)  "
        f"{stats['cold_seconds']:8.2f}s   {stats['cold_pps']:10.1f} pages/s",
        f"  warm (registry artifact)       "
        f"{stats['warm_seconds']:8.2f}s   {stats['warm_pps']:10.1f} pages/s",
        f"  speedup                {stats['speedup']:8.1f}x   "
        f"(target >= {TARGET_SPEEDUP:.0f}x: {met})",
        f"  extractions cold/warm  {stats['cold_extractions']}/"
        f"{stats['warm_extractions']}",
    ]
    return "\n".join(lines)


def main() -> int:
    stats = run_benchmark()
    report("runtime_throughput", format_table(stats))
    if stats["cold_extractions"] != stats["warm_extractions"]:
        print("ERROR: warm path diverged from cold path", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
