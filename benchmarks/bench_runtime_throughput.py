"""Serving throughput: cold pipeline vs. warm ExtractionService.

The cold path re-runs template clustering, topic identification,
relation annotation, and L-BFGS training on every call; the warm path
(``repro.runtime.service.ExtractionService``) loads a registry artifact
once and only does feature extraction + a matrix multiply per page.
This script measures pages/sec for both on a 200-page synthetic movie
site and reports the speedup, giving future serving-perf PRs a baseline.

It also gates the observability tax: the warm batch is re-measured with
``repro.obs`` fully enabled (tracing + metrics) and must keep at least
``OBS_MIN_RATIO`` of the disabled-mode throughput — the "zero overhead
when off, cheap when on" contract in executable form.

Targets: warm ≥ 5× cold; enabled warm ≥ 97% of disabled warm.

Run::

    PYTHONPATH=src python benchmarks/bench_runtime_throughput.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))  # for conftest.report
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from conftest import report, report_metrics  # noqa: E402

from repro import obs  # noqa: E402
from repro.core.config import CeresConfig  # noqa: E402
from repro.core.pipeline import CeresPipeline  # noqa: E402
from repro.datasets import generate_swde, seed_kb_for  # noqa: E402
from repro.obs import MetricsRegistry  # noqa: E402
from repro.runtime import ExtractionService, ModelRegistry, SiteModel  # noqa: E402

N_PAGES = 200
WARM_ROUNDS = 3
#: Rounds per observability mode — best-of-N, so more rounds make the
#: 3% overhead gate robust to host noise.
OBS_ROUNDS = 5
TARGET_SPEEDUP = 5.0
#: Enabled-mode warm throughput must keep this fraction of disabled-mode.
OBS_MIN_RATIO = 0.97


def run_benchmark(tmp_registry: str | Path = "/tmp/repro_bench_registry") -> dict:
    dataset = generate_swde("movie", n_sites=2, pages_per_site=N_PAGES, seed=11)
    kb = seed_kb_for(dataset, 11)
    site = dataset.sites[1]
    documents = [page.document for page in site.pages]  # parse outside timing
    config = CeresConfig()
    #: the benchmark's own instrument — not the process-wide obs one,
    #: which this script deliberately toggles.
    bench = MetricsRegistry()

    # Cold: the full annotate → train → extract pipeline, as `extract` runs it.
    with bench.timer("bench.cold_seconds") as cold_timing:
        pipeline = CeresPipeline(kb, config)
        result = pipeline.run(documents, documents)
    cold_seconds = cold_timing.elapsed
    cold_pps = len(documents) / cold_seconds

    # Persist the trained model and serve it back through the registry,
    # exactly as `train` + `serve` do.
    registry = ModelRegistry(tmp_registry)
    registry.save(SiteModel.from_result(site.name, config, result))
    service = ExtractionService(registry)
    service.extract_pages(site.name, documents[:4])  # load + build extractors

    warm_extractions: list = []

    def warm_round() -> float:
        nonlocal warm_extractions
        with bench.timer("bench.warm_round_seconds") as timing:
            warm_extractions = service.extract_pages(site.name, documents)
        return timing.elapsed

    round_times = [warm_round() for _ in range(WARM_ROUNDS)]
    warm_seconds = sum(round_times) / len(round_times)
    warm_pps = len(documents) / warm_seconds

    # Observability overhead: the same warm batch, obs off vs fully on
    # (tracing + metrics — the most expensive mode).  Modes are
    # interleaved round-robin so host drift (thermal, frequency) hits
    # both equally, and compared best-of-N.
    disabled_best = enabled_best = float("inf")
    try:
        for _ in range(OBS_ROUNDS):
            obs.disable()
            disabled_best = min(disabled_best, warm_round())
            obs.enable(tracing=True, metrics=True)
            enabled_best = min(enabled_best, warm_round())
    finally:
        obs.disable()
    obs_ratio = disabled_best / enabled_best if enabled_best else 0.0

    speedup = warm_pps / cold_pps
    return {
        "n_pages": len(documents),
        "cold_seconds": cold_seconds,
        "cold_pps": cold_pps,
        "warm_seconds": warm_seconds,
        "warm_pps": warm_pps,
        "speedup": speedup,
        "obs_disabled_pps": len(documents) / disabled_best,
        "obs_enabled_pps": len(documents) / enabled_best,
        "obs_ratio": obs_ratio,
        "cold_extractions": len(result.extractions),
        "warm_extractions": len(warm_extractions),
        "obs_snapshot": bench.snapshot(),
    }


def format_table(stats: dict) -> str:
    met = "MET" if stats["speedup"] >= TARGET_SPEEDUP else "MISSED"
    obs_met = "MET" if stats["obs_ratio"] >= OBS_MIN_RATIO else "MISSED"
    lines = [
        "Runtime throughput: cold pipeline vs. warm ExtractionService",
        f"  pages per batch        {stats['n_pages']}",
        f"  cold (annotate+train+extract)  "
        f"{stats['cold_seconds']:8.2f}s   {stats['cold_pps']:10.1f} pages/s",
        f"  warm (registry artifact)       "
        f"{stats['warm_seconds']:8.2f}s   {stats['warm_pps']:10.1f} pages/s",
        f"  speedup                {stats['speedup']:8.1f}x   "
        f"(target >= {TARGET_SPEEDUP:.0f}x: {met})",
        f"  extractions cold/warm  {stats['cold_extractions']}/"
        f"{stats['warm_extractions']}",
        f"  warm, obs disabled     {stats['obs_disabled_pps']:10.1f} pages/s",
        f"  warm, obs enabled      {stats['obs_enabled_pps']:10.1f} pages/s",
        f"  obs enabled/disabled   {stats['obs_ratio']:8.3f}    "
        f"(gate >= {OBS_MIN_RATIO:.2f}: {obs_met})",
    ]
    return "\n".join(lines)


def main() -> int:
    stats = run_benchmark()
    snapshot = stats.pop("obs_snapshot")
    report("runtime_throughput", format_table(stats))
    report_metrics("runtime_throughput", snapshot)
    if stats["cold_extractions"] != stats["warm_extractions"]:
        print("ERROR: warm path diverged from cold path", file=sys.stderr)
        return 1
    if stats["obs_ratio"] < OBS_MIN_RATIO:
        print(
            f"ERROR: enabled-observability warm throughput is "
            f"{stats['obs_ratio']:.3f} of disabled (gate {OBS_MIN_RATIO:.2f})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
