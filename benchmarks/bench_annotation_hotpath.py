"""Annotation & training hot path: vectorized engine vs. pure-Python legacy.

PR 3 made warm serving fast; the cold path — template clustering, topic
identification, relation annotation (Algorithms 1-2), and L-BFGS training
— still ran one Python loop at a time (~288 pages/s at the PR 4 head, per
``benchmarks/out/runtime_throughput.txt``).  This PR rebuilds it as a
vectorized engine, keeping the original code as the equivalence oracle:

* interned-XPath batched Levenshtein matrices + version-stamped
  agglomerative clustering (``repro.text.distance``, ``repro.ml.cluster``);
* per-subject ``SurfaceIndex`` replacing per-triple ``surface_variants``
  regeneration (``repro.kb.surfaces``);
* bitset local evidence with prefix/suffix blocked-set unions
  (``RelationAnnotator.best_local_mentions``);
* batched feature-name rows + preallocated-CSR vectorization + the
  deduplicated direct-``setulb`` L-BFGS solve
  (``FeatureNameBatcher``, ``FeatureVectorizer.transform_name_rows``,
  ``SoftmaxRegression.fit``).

Two fixtures, two gates (full mode; ``--quick`` gates equivalence only):

* **PR 4 fixture** (SWDE movie site, scaled up): cold annotate+train must
  clear ``2x`` the 288 pages/s PR 4 baseline, byte-identical annotations,
  model coefficients, and extractions.  The issue's stretch target was
  3x; the measured ceiling is lower because ~70% of this fixture's cold
  time is the L-BFGS data term (ordered backward matvec + ``setulb``
  trajectory), which byte-identical coefficients pin to the exact legacy
  operation sequence — the table reports how far the rest moved.
* **All-genres hazard fixture** (Section 5.5.1's over-representation
  hazard with per-page template jitter, hundreds of distinct mention
  XPaths): the annotation stage itself — where the paper's bottleneck
  lives and nothing is optimizer-locked — must clear ``3x`` legacy.

Run::

    PYTHONPATH=src python benchmarks/bench_annotation_hotpath.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))  # for conftest.report
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from conftest import report, report_metrics  # noqa: E402

from repro.core.annotation.relation import RelationAnnotator  # noqa: E402
from repro.obs import MetricsRegistry, merge_snapshots  # noqa: E402
from repro.core.annotation.topic import TopicIdentifier  # noqa: E402
from repro.core.config import CeresConfig  # noqa: E402
from repro.core.pipeline import CeresPipeline  # noqa: E402
from repro.datasets import generate_swde, seed_kb_for  # noqa: E402
from repro.dom.parser import parse_html  # noqa: E402
from repro.kb.ontology import Ontology, Predicate  # noqa: E402
from repro.kb.store import KnowledgeBase  # noqa: E402
from repro.kb.triple import Entity, Value  # noqa: E402

#: Cold annotate+train+extract throughput at the PR 4 head
#: (benchmarks/out/runtime_throughput.txt).
PR4_BASELINE_PPS = 288.0
#: Required end-to-end speedup over the PR 4 baseline (full mode).
REQUIRED_COLD_SPEEDUP = 2.0
#: Required annotation-stage speedup on the hazard fixture (full mode).
REQUIRED_ANNOTATION_SPEEDUP = 3.0


# -- fixtures ---------------------------------------------------------------


def all_genres_site(
    n_pages: int, seed: int = 7, max_fill: int = 40, max_depth: int = 5
) -> tuple[KnowledgeBase, list]:
    """The paper's all-genres hazard (Section 5.5.1) with template jitter.

    Every page lists the full (small) genre vocabulary in a browse list
    whose item positions, filler counts, and nesting depths jitter per
    page, alongside the film's real genres in the info section.  Every
    genre is therefore duplicated *and* over-represented, so Algorithm 2
    must cluster hundreds of distinct mention XPaths per predicate —
    the pairwise-Levenshtein wall the batched engine removes.
    """
    rng = random.Random(seed)
    ontology = Ontology(
        [
            Predicate("directed_by", range_kind="entity"),
            Predicate("has_cast_member", range_kind="entity", multi_valued=True),
            Predicate("genre", range_kind="string", multi_valued=True),
        ]
    )
    kb = KnowledgeBase(ontology)
    genres = ["Drama", "Comedy", "Action", "Documentary"]
    pages = []
    for i in range(n_pages):
        film, director = f"f{i}", f"d{i}"
        kb.add_entity(Entity(film, f"Feature Film {i} Story", "film"))
        kb.add_entity(Entity(director, f"Director Person {i}", "person"))
        cast = [f"a{i}_{j}" for j in range(4)]
        for j, actor in enumerate(cast):
            kb.add_entity(Entity(actor, f"Actor Person {i} {j}", "person"))
        kb.add_fact(film, "directed_by", Value.entity(director))
        page_genres = rng.sample(genres, 3)
        for genre in page_genres:
            kb.add_fact(film, "genre", Value.literal(genre))
        for actor in cast:
            kb.add_fact(film, "has_cast_member", Value.entity(actor))

        pad_top = "".join(
            f"<div class='pad'><span>filler {k}</span></div>"
            for k in range(rng.randint(0, 8))
        )
        cast_items = "".join(
            f"<li class='cast'>Actor Person {i} {j}</li>" for j in range(4)
        )
        genre_spans = "".join(
            f"<span class='g'>{genre}</span>" for genre in page_genres
        )
        items = []
        for genre in genres:
            depth = rng.randint(0, max_depth)
            items.append(
                "<li class='bg'>" + "<b>" * depth + genre + "</b>" * depth + "</li>"
            )
        for k in range(rng.randint(2, max_fill)):
            items.append(f"<li class='fill'>browse item {k}</li>")
        rng.shuffle(items)
        html = (
            f"<html><body><div class='main'>{pad_top}"
            f"<h1>Feature Film {i} Story</h1>"
            f"<div class='credit'><span>Director</span><span>Director Person {i}</span></div>"
            f"<div class='genres'>{genre_spans}</div>"
            f"<ul class='castlist'>{cast_items}</ul>"
            f"</div><aside class='browse'><ul class='all'>{''.join(items)}</ul></aside>"
            f"</body></html>"
        )
        pages.append(parse_html(html))
    return kb, pages


# -- equivalence helpers ----------------------------------------------------


def annotation_rows(result) -> str:
    return json.dumps(
        [
            (
                page.page_index,
                page.topic_entity_id,
                page.topic_node.xpath,
                annotation.predicate,
                annotation.node.xpath,
                annotation.object_key,
                annotation.object_text,
            )
            for page in result.annotated_pages
            for annotation in page.annotations
        ]
    )


def model_fingerprint(result) -> tuple:
    out = []
    for cluster in result.cluster_results:
        model = cluster.model
        if model is None:
            out.append(None)
            continue
        out.append(
            (
                sorted(model.vectorizer.vocabulary_.items()),
                model.classifier.coef_.tobytes(),
                model.classifier.intercept_.tobytes(),
                list(model.classifier.classes_),
                sorted(model.feature_extractor.frequent_strings),
            )
        )
    return tuple(out)


def extraction_rows(result) -> list:
    return [
        (e.page_index, e.subject, e.predicate, e.object, e.confidence)
        for e in result.extractions
    ]


# -- part 1: cold annotate+train on the PR 4 fixture ------------------------


def bench_cold_pipeline(n_pages: int, n_batches: int) -> dict:
    dataset = generate_swde("movie", n_sites=2, pages_per_site=n_pages, seed=11)
    kb = seed_kb_for(dataset, 11)
    documents = [page.document for page in dataset.sites[1].pages]
    # The match cache must hold the cluster (PR 2's sizing rule); both
    # paths share the same config.
    config = CeresConfig(page_match_cache_size=max(1024, 2 * n_pages))
    bench = MetricsRegistry()

    def cold(legacy: bool):
        pipeline = CeresPipeline(kb, config)
        if legacy:
            result = pipeline.legacy_annotate(documents)
            pipeline.legacy_train(documents, result)
        else:
            result = pipeline.annotate(documents)
            pipeline.train(documents, result)
        return pipeline, result

    # Warm process-wide memo caches (normalize/surface variants) for both
    # paths symmetrically, then check equivalence once on the warm runs.
    fast_pipeline, fast_result = cold(legacy=False)
    legacy_pipeline, legacy_result = cold(legacy=True)
    if annotation_rows(fast_result) != annotation_rows(legacy_result):
        raise AssertionError("vectorized annotations diverged from legacy")
    if model_fingerprint(fast_result) != model_fingerprint(legacy_result):
        raise AssertionError("vectorized model coefficients diverged from legacy")
    fast_pipeline.extract(fast_result, documents)
    legacy_pipeline.extract(legacy_result, documents)
    if extraction_rows(fast_result) != extraction_rows(legacy_result):
        raise AssertionError("vectorized extractions diverged from legacy")

    def measure(legacy: bool, batches: int) -> float:
        name = "bench.cold_legacy_seconds" if legacy else "bench.cold_fast_seconds"
        best = float("inf")
        for _ in range(batches):
            with bench.timer(name) as timing:
                cold(legacy)
            if timing.elapsed < best:
                best = timing.elapsed
        return n_pages / best

    fast_pps = measure(False, n_batches)
    legacy_pps = measure(True, max(1, n_batches // 2))
    return {
        "n_pages": n_pages,
        "fast_pps": fast_pps,
        "legacy_pps": legacy_pps,
        "speedup_vs_legacy": fast_pps / legacy_pps if legacy_pps else 0.0,
        "speedup_vs_pr4": fast_pps / PR4_BASELINE_PPS,
        "extractions": len(extraction_rows(fast_result)),
        "obs_snapshot": bench.snapshot(),
    }


# -- part 2: annotation stage on the hazard fixture -------------------------


def bench_annotation_stage(n_pages: int, n_batches: int) -> dict:
    kb, pages = all_genres_site(n_pages)
    config = CeresConfig(page_match_cache_size=max(1024, 2 * n_pages))
    identifier = TopicIdentifier(kb, config)
    topics = identifier.identify(pages)
    bench = MetricsRegistry()
    # Warm the shared match cache: the stage under test is annotation
    # logic (mention gathering, local evidence, clustering), not matching.
    for page in pages:
        identifier.matcher.match(page)

    def run(legacy: bool):
        annotator = RelationAnnotator(kb, config, identifier.matcher)
        name = (
            "bench.annotate_legacy_seconds"
            if legacy
            else "bench.annotate_fast_seconds"
        )
        with bench.timer(name) as timing:
            annotated = (
                annotator.legacy_annotate if legacy else annotator.annotate
            )(pages, topics)
        return timing.elapsed, annotated

    _, fast_pages = run(False)
    _, legacy_pages = run(True)
    fast_rows = [
        (p.page_index, a.predicate, a.node.xpath, a.object_key, a.object_text)
        for p in fast_pages
        for a in p.annotations
    ]
    legacy_rows = [
        (p.page_index, a.predicate, a.node.xpath, a.object_key, a.object_text)
        for p in legacy_pages
        for a in p.annotations
    ]
    if fast_rows != legacy_rows:
        raise AssertionError("hazard-fixture annotations diverged from legacy")

    def measure(legacy: bool, batches: int) -> float:
        best = float("inf")
        for _ in range(batches):
            seconds, _ = run(legacy)
            best = min(best, seconds)
        return n_pages / best

    fast_pps = measure(False, n_batches)
    legacy_pps = measure(True, max(1, n_batches // 2))
    return {
        "n_pages": n_pages,
        "n_annotations": len(fast_rows),
        "fast_pps": fast_pps,
        "legacy_pps": legacy_pps,
        "speedup": fast_pps / legacy_pps if legacy_pps else 0.0,
        "obs_snapshot": bench.snapshot(),
    }


def format_table(cold: dict, stage: dict) -> str:
    return "\n".join(
        [
            "Annotation & training hot path: vectorized engine vs legacy",
            "  [cold annotate+train, PR 4 fixture]",
            f"    pages                  {cold['n_pages']}",
            f"    legacy cold            {cold['legacy_pps']:10.1f} pages/s",
            f"    vectorized cold        {cold['fast_pps']:10.1f} pages/s",
            f"    speedup vs legacy      {cold['speedup_vs_legacy']:10.2f}x",
            f"    speedup vs PR4 base    {cold['speedup_vs_pr4']:10.2f}x"
            f"   (baseline {PR4_BASELINE_PPS:.0f} pages/s, gate >= "
            f"{REQUIRED_COLD_SPEEDUP:.0f}x; L-BFGS data term is "
            "equivalence-locked)",
            "    annotations/models     byte-identical (vectorized == legacy)",
            f"    extractions            byte-identical ({cold['extractions']} rows)",
            "  [annotation stage, all-genres hazard fixture]",
            f"    pages                  {stage['n_pages']}"
            f"   ({stage['n_annotations']} annotations, identical)",
            f"    legacy annotate        {stage['legacy_pps']:10.1f} pages/s",
            f"    vectorized annotate    {stage['fast_pps']:10.1f} pages/s",
            f"    speedup                {stage['speedup']:10.2f}x"
            f"   (gate >= {REQUIRED_ANNOTATION_SPEEDUP:.0f}x)",
        ]
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small fixtures, single batch (CI smoke; equivalence gates only)",
    )
    args = parser.parse_args()
    if args.quick:
        cold = bench_cold_pipeline(n_pages=50, n_batches=1)
        stage = bench_annotation_stage(n_pages=40, n_batches=1)
    else:
        cold = bench_cold_pipeline(n_pages=600, n_batches=4)
        stage = bench_annotation_stage(n_pages=150, n_batches=4)
    report_metrics(
        "annotation_hotpath",
        merge_snapshots([cold.pop("obs_snapshot"), stage.pop("obs_snapshot")]),
    )
    report("annotation_hotpath", format_table(cold, stage))
    failed = False
    if not args.quick:
        if cold["speedup_vs_pr4"] < REQUIRED_COLD_SPEEDUP:
            print(
                f"ERROR: vectorized cold path at {cold['fast_pps']:.0f} pages/s "
                f"is below {REQUIRED_COLD_SPEEDUP:.0f}x the PR 4 baseline",
                file=sys.stderr,
            )
            failed = True
        if stage["speedup"] < REQUIRED_ANNOTATION_SPEEDUP:
            print(
                f"ERROR: annotation stage speedup {stage['speedup']:.2f}x is "
                f"below {REQUIRED_ANNOTATION_SPEEDUP:.0f}x",
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
