"""Corpus-scale streaming fusion: FactStore throughput, RSS, and precision.

Two claims are gated:

* **bounded memory + determinism** — a FactStore ingesting a ≥ 20-site
  synthetic extraction stream under a small ``max_resident_facts`` cap
  spills predicate-keyed shards to disk, keeps resident-set drift under
  5%, and produces byte-identical fused JSONL no matter the shard count
  or spill pressure;
* **fusion lifts precision** — on the SWDE movie fixture (full pipeline
  per site, overlapping rosters), reliability-weighted noisy-OR fusion
  re-ranks the fact set so that precision at equal yield is >= the
  unfused best-single-confidence ranking.

Run::

    PYTHONPATH=src python benchmarks/bench_fusion.py [--quick]
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))  # for conftest.report
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from conftest import report, report_metrics  # noqa: E402

from repro import obs  # noqa: E402
from repro.core.config import CeresConfig  # noqa: E402
from repro.core.pipeline import CeresPipeline  # noqa: E402
from repro.datasets import generate_swde, seed_kb_for  # noqa: E402
from repro.evaluation.fusion_eval import (  # noqa: E402
    dataset_fact_keys,
    fusion_gain,
)
from repro.fusion import (  # noqa: E402
    FactStore,
    estimate_reliability,
    extraction_agreement,
    fuse_extractions,
    write_fused_jsonl,
)

MAX_DRIFT = 0.05  # resident-set growth tolerated across the measured pass


def rss_bytes() -> int | None:
    """Current resident set size, or None when /proc is unavailable."""
    try:
        with open("/proc/self/status", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        return None
    return None


# -- part 1: streaming scale ------------------------------------------------


def synthetic_rows(n_sites: int, rows_per_site: int, n_facts: int, seed: int):
    """Deterministic per-site extraction rows over a shared fact universe."""
    predicates = ("genre", "directed_by", "release_date", "runtime", "writer")
    for site_index in range(n_sites):
        rng = random.Random(f"{seed}:{site_index}")
        site = f"site_{site_index:03d}"
        for _ in range(rows_per_site):
            fact = rng.randrange(n_facts)
            predicate = predicates[fact % len(predicates)]
            yield {
                "site": site,
                "subject": f"Film {fact // len(predicates)}",
                "predicate": predicate,
                "object": f"Value {fact}",
                "confidence": round(rng.uniform(0.3, 0.99), 6),
            }


class _HashSink:
    """A write-only text sink that keeps a digest, not the bytes — the
    benchmark must not hold multi-MB output strings while measuring RSS."""

    def __init__(self) -> None:
        self._hash = hashlib.sha256()

    def write(self, text: str) -> int:
        self._hash.update(text.encode("utf-8"))
        return len(text)

    def hexdigest(self) -> str:
        return self._hash.hexdigest()


def ingest_pass(
    registry, n_sites: int, rows_per_site: int, n_facts: int,
    *, n_shards: int, max_resident_facts: int,
) -> tuple[str, int, int, float]:
    """One full streaming pass; returns
    (fused-output digest, n_fused, n_rows, seconds)."""
    store = FactStore(
        n_shards=n_shards, max_resident_facts=max_resident_facts
    )
    with registry.timer("bench.ingest_pass_seconds") as timing:
        n_rows = 0
        for row in synthetic_rows(n_sites, rows_per_site, n_facts, seed=7):
            store.add_row(row)
            n_rows += 1
        facts = store.finalize(min_sites=2)
    sink = _HashSink()
    n_fused = write_fused_jsonl(facts, sink)
    return sink.hexdigest(), n_fused, n_rows, timing.elapsed


def run_streaming(n_sites: int, rows_per_site: int, n_facts: int) -> dict:
    cap = max(500, n_facts // 8)
    # The whole streaming part runs under a scoped live registry, so the
    # FactStore's own instruments (fusion.rows, fusion.spills, spill/
    # compact timings) land in the persisted snapshot alongside the
    # benchmark's pass timers.
    with obs.scoped(tracing=False, metrics=True) as (_, registry):
        # Warmup: grows the allocator arenas to steady state.
        baseline_digest, _, _, _ = ingest_pass(
            registry, n_sites, rows_per_site, n_facts,
            n_shards=8, max_resident_facts=cap,
        )
        gc.collect()
        baseline_rss = rss_bytes()

        digest, n_fused, n_rows, seconds = ingest_pass(
            registry, n_sites, rows_per_site, n_facts,
            n_shards=8, max_resident_facts=cap,
        )
        gc.collect()
        final_rss = rss_bytes()

        # Determinism across shard count and spill pressure.
        alt_digest, _, _, _ = ingest_pass(
            registry, n_sites, rows_per_site, n_facts,
            n_shards=3, max_resident_facts=max(200, cap // 4),
        )
        snapshot = registry.snapshot()
    if digest != baseline_digest or digest != alt_digest:
        raise AssertionError(
            "fused output depends on shard count / spill pressure"
        )
    drift = None
    if baseline_rss and final_rss:
        drift = (final_rss - baseline_rss) / baseline_rss
    return {
        "n_sites": n_sites,
        "n_rows": n_rows,
        "n_facts_universe": n_facts,
        "n_fused": n_fused,
        "rows_per_s": n_rows / seconds if seconds else 0.0,
        "resident_cap": cap,
        "baseline_rss": baseline_rss,
        "final_rss": final_rss,
        "rss_drift": drift,
        "deterministic": True,
        "obs_snapshot": snapshot,
    }


# -- part 2: precision on the SWDE fixture ---------------------------------


def hazard_site(extractions) -> list:
    """A template-artifact site: for every subject another site covers,
    it confidently asserts the same wrong value — the single-site error
    mode cross-site fusion exists to demote."""
    from repro.core.extraction.extractor import Extraction
    from repro.dom.node import TextNode

    artifacts = []
    for index, subject in enumerate(sorted({e.subject for e in extractions})):
        artifacts.append(
            Extraction(
                subject, "genre", "Infomercial", 0.99, index,
                TextNode("Infomercial"),
            )
        )
    return artifacts


def run_precision(n_sites: int, pages_per_site: int) -> dict:
    dataset = generate_swde(
        "movie", n_sites=n_sites, pages_per_site=pages_per_site, seed=17
    )
    kb = seed_kb_for(dataset, 17)
    config = CeresConfig()
    by_site: dict[str, list] = {}
    for site in dataset.sites:
        documents = [page.document for page in site.pages]
        result = CeresPipeline(kb, config).run(documents, documents)
        by_site[site.name] = result.extractions
    by_site["hazard"] = hazard_site(by_site[dataset.sites[0].name])

    reliability = {
        site: estimate_reliability(*extraction_agreement(kb, extractions))
        for site, extractions in by_site.items()
    }
    truth = dataset_fact_keys(dataset.sites)
    fused = fuse_extractions(by_site, site_reliability=reliability)
    gain = fusion_gain(fused, by_site, truth, ks=(50, 200))
    gain["n_sites"] = n_sites + 1
    gain["pages_per_site"] = pages_per_site
    gain["hazard_reliability"] = reliability["hazard"]
    return gain


# -- reporting --------------------------------------------------------------


def format_report(streaming: dict, precision: dict) -> str:
    def pct(value):
        return "n/a" if value is None else f"{100 * value:.2f}%"

    equal = precision["equal_yield"]
    lines = [
        "Corpus-scale streaming fusion (FactStore)",
        f"  sites x rows           {streaming['n_sites']} sites, "
        f"{streaming['n_rows']} extraction rows",
        f"  fused facts (2+ sites) {streaming['n_fused']}",
        f"  throughput             {streaming['rows_per_s']:10.0f} rows/s",
        f"  resident-fact cap      {streaming['resident_cap']}",
        f"  RSS drift              {pct(streaming['rss_drift'])}"
        f"   (gate < {MAX_DRIFT:.0%})",
        "  determinism            byte-identical across shard counts "
        "and spill pressure",
        "",
        "Fusion precision (SWDE movie fixture, "
        f"{precision['n_sites']} sites x {precision['pages_per_site']} pages, "
        "incl. 1 template-artifact hazard site)",
        f"  facts                  {precision['n_unfused']} unfused, "
        f"{precision['n_fused']} fused",
        f"  hazard reliability     {precision['hazard_reliability']:.3f}"
        "   (seed-KB agreement discounts its vote)",
        f"  precision@yield (k={equal['k']})  "
        f"fused {pct(equal['fused'])}  vs  unfused {pct(equal['unfused'])}"
        "   (gate: fused >= unfused)",
    ]
    for k, values in sorted(precision["at_k"].items()):
        lines.append(
            f"  precision@{k:<4}         fused {pct(values['fused'])}  vs  "
            f"unfused {pct(values['unfused'])}"
        )
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small stream + small fixture (CI smoke; same gates except RSS)",
    )
    args = parser.parse_args()
    if args.quick:
        streaming = run_streaming(n_sites=20, rows_per_site=1500, n_facts=6000)
        precision = run_precision(n_sites=3, pages_per_site=12)
    else:
        streaming = run_streaming(n_sites=24, rows_per_site=20000, n_facts=60000)
        precision = run_precision(n_sites=5, pages_per_site=24)

    report_metrics("fusion", streaming.pop("obs_snapshot"))
    report("fusion", format_report(streaming, precision))

    failures = []
    drift = streaming["rss_drift"]
    # Quick mode keeps RSS informational: a tiny stream's drift is
    # dominated by allocator noise, not the store.
    if not args.quick and drift is not None and drift >= MAX_DRIFT:
        failures.append(f"RSS drift {drift:.1%} exceeds {MAX_DRIFT:.0%}")
    equal = precision["equal_yield"]
    if (
        equal["fused"] is not None
        and equal["unfused"] is not None
        and equal["fused"] < equal["unfused"]
    ):
        failures.append(
            f"fused precision {equal['fused']:.3f} fell below "
            f"unfused {equal['unfused']:.3f} at equal yield"
        )
    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
