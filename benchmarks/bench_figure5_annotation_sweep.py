"""Figure 5: Movie vertical — F1 vs number of annotated pages used.

Annotation runs once per site; training is repeated with the annotated
page budget capped at 1, 2, 4, ... (the paper's log-scale sweep).
Expected shape: F1 rises steeply with the first few annotated pages, then
plateaus — "even when we are able to annotate at most 5-20 webpages ...
CERES-FULL still obtained high precision".
"""

from conftest import report

from repro.evaluation.experiments import run_figure5


def test_figure5_annotation_sweep(benchmark):
    result = benchmark.pedantic(
        run_figure5,
        kwargs={"pages_per_site": 48, "seed": 0, "caps": (1, 2, 4, 8, 16, 24),
                "n_sites": 3},
        rounds=1,
        iterations=1,
    )
    report("figure5_annotation_sweep", result.format())

    f1_by_cap = dict(result.points)
    assert f1_by_cap[24] > f1_by_cap[1]
    # Plateau: doubling 16 -> 24 budges F1 far less than 1 -> 8 did.
    early_gain = f1_by_cap[8] - f1_by_cap[1]
    late_gain = abs(f1_by_cap[24] - f1_by_cap[16])
    assert early_gain >= late_gain
