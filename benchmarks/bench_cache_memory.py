"""Serving memory model: bounded caches under sustained warm traffic.

Before this cache layer, every hot-path cache was keyed by
``id(document)`` with unbounded retention: a long-lived
:class:`~repro.runtime.service.ExtractionService` grew resident memory
on every batch, and the per-batch ``clear_page_caches`` workaround paid
a correctness tax (a GC-recycled id could resurface another page's
state).  Now per-page state lives in bounded LRUs keyed by
``Document.doc_id``, so memory must stay *flat* across arbitrarily many
warm batches.

This benchmark runs consecutive warm ``extract_pages`` batches — each
over freshly parsed documents, exactly the allocation pattern that used
to leak — and checks three things:

* **bounded memory** — resident-set drift between a post-warmup
  baseline and the final batch is < 5%;
* **warm throughput** — pages/sec is reported for comparison against
  ``bench_runtime_throughput.py`` (it must stay within noise: the cache
  layer removed work, it added none);
* **output stability** — every batch's rows are byte-identical to the
  one-shot pipeline's extractions.

Run::

    PYTHONPATH=src python benchmarks/bench_cache_memory.py [--quick]
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))  # for conftest.report
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from conftest import report, report_metrics  # noqa: E402

from repro.core.config import CeresConfig  # noqa: E402
from repro.obs import MetricsRegistry  # noqa: E402
from repro.core.pipeline import CeresPipeline  # noqa: E402
from repro.datasets import generate_swde, seed_kb_for  # noqa: E402
from repro.dom.parser import parse_html  # noqa: E402
from repro.runtime import (  # noqa: E402
    ExtractionService,
    ModelRegistry,
    SiteModel,
    extraction_row,
)

MAX_DRIFT = 0.05  # resident-set growth tolerated after warmup (5%)


def rss_bytes() -> int | None:
    """Current resident set size, or None when /proc is unavailable."""
    try:
        with open("/proc/self/status", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        return None
    return None


def run_benchmark(
    n_pages: int,
    n_batches: int,
    tmp_registry: str | Path = "/tmp/repro_bench_cache_registry",
) -> dict:
    dataset = generate_swde("movie", n_sites=2, pages_per_site=n_pages, seed=11)
    kb = seed_kb_for(dataset, 11)
    site = dataset.sites[1]
    config = CeresConfig()

    # One-shot pipeline: the ground truth every warm batch must match.
    documents = [page.document for page in site.pages]
    pipeline = CeresPipeline(kb, config)
    result = pipeline.run(documents, documents)
    expected_rows = json.dumps(
        [
            extraction_row(e, documents[e.page_index].url, site.name)
            for e in result.extractions
        ],
        sort_keys=True,
    )

    registry = ModelRegistry(tmp_registry)
    registry.save(SiteModel.from_result(site.name, config, result))
    service = ExtractionService(registry)
    bench = MetricsRegistry()

    def run_batch() -> tuple[int, float]:
        """One warm batch over freshly parsed documents (the pattern that
        used to leak a registry + match per page per batch)."""
        fresh = [parse_html(page.html, url=page.page_id) for page in site.pages]
        with bench.timer("bench.warm_batch_seconds") as timing:
            extractions = service.extract_pages(site.name, fresh)
        rows = json.dumps(
            [
                extraction_row(e, fresh[e.page_index].url, site.name)
                for e in extractions
            ],
            sort_keys=True,
        )
        if rows != expected_rows:
            raise AssertionError("warm batch diverged from one-shot extract")
        return len(fresh), timing.elapsed

    # Drop the training-time documents before measuring: they are the
    # one-shot pipeline's working set, not the serving path's.
    del documents, result, pipeline
    gc.collect()

    # Warm up until resident memory stabilizes before taking the
    # baseline: the first batches populate the scoring engine's
    # compiled-template caches and grow the allocator's arenas to steady
    # state; "drift" must measure leaks, not that one-time ramp.
    previous = None
    for _ in range(12):  # each probe is several batches; cap the ramp
        for _ in range(5):
            run_batch()
        gc.collect()
        current = rss_bytes()
        if current is None:
            break
        if previous is not None and abs(current - previous) < 0.002 * previous:
            break
        previous = current
    baseline_rss = rss_bytes()

    pages_served = 0
    serve_seconds = 0.0
    for _ in range(n_batches):
        pages, seconds = run_batch()
        pages_served += pages
        serve_seconds += seconds
    gc.collect()
    final_rss = rss_bytes()

    drift = None
    if baseline_rss and final_rss:
        drift = (final_rss - baseline_rss) / baseline_rss

    stats = service.cache_stats()
    site_stats = stats["per_site"].get(site.name, {})
    registry_stats = site_stats.get("feature_registry", {})
    return {
        "n_pages": n_pages,
        "n_batches": n_batches,
        "baseline_rss_mb": baseline_rss / 2**20 if baseline_rss else None,
        "final_rss_mb": final_rss / 2**20 if final_rss else None,
        "drift": drift,
        "warm_pps": pages_served / serve_seconds if serve_seconds else 0.0,
        "registry_size": registry_stats.get("size"),
        "registry_capacity": registry_stats.get("capacity"),
        "registry_evictions": registry_stats.get("evictions"),
        "output_stable": True,  # run_batch raises otherwise
        "obs_snapshot": bench.snapshot(),
    }


def format_table(stats: dict) -> str:
    if stats["drift"] is None:
        drift_line = "  rss drift              (unavailable on this platform)"
    else:
        verdict = "FLAT" if abs(stats["drift"]) < MAX_DRIFT else "GROWING"
        drift_line = (
            f"  rss drift              {stats['drift'] * 100:8.2f}%   "
            f"(|drift| < {MAX_DRIFT * 100:.0f}%: {verdict})"
        )
    lines = [
        "Cache memory: warm serving batches over fresh documents",
        f"  pages per batch        {stats['n_pages']}",
        f"  batches                {stats['n_batches']}",
        f"  baseline rss           {stats['baseline_rss_mb']:8.1f} MB"
        if stats["baseline_rss_mb"] is not None
        else "  baseline rss           (unavailable)",
        f"  final rss              {stats['final_rss_mb']:8.1f} MB"
        if stats["final_rss_mb"] is not None
        else "  final rss              (unavailable)",
        drift_line,
        f"  warm throughput        {stats['warm_pps']:8.1f} pages/s",
        f"  feature registries     {stats['registry_size']} resident / "
        f"{stats['registry_capacity']} capacity "
        f"({stats['registry_evictions']} evictions)",
        "  output vs one-shot     byte-identical",
    ]
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small site, few batches (CI smoke; same checks)",
    )
    args = parser.parse_args()
    if args.quick:
        stats = run_benchmark(n_pages=40, n_batches=8)
    else:
        stats = run_benchmark(n_pages=200, n_batches=50)
    report_metrics("cache_memory", stats.pop("obs_snapshot"))
    report("cache_memory", format_table(stats))
    if stats["drift"] is not None and abs(stats["drift"]) >= MAX_DRIFT:
        print("ERROR: resident memory grew across warm batches", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
