"""Table 3: page-hit F1 of all systems across the four SWDE verticals.

Runs Vertex++ (supervised), CERES-Baseline (pairwise DS), CERES-Topic,
and CERES-Full on every site of every vertical.  Expected shape (paper):
CERES-Full ≈ CERES-Topic ≫ CERES-Baseline on the simple verticals, and
CERES-Full competitive with the supervised Vertex++.

CERES-Baseline's pairwise space is bounded by a pair budget standing in
for the paper's 32 GB machine; the Movie vertical — cast-heavy pages
against the largest KB — is the one that exceeds it, reproducing the
paper's out-of-memory NA.
"""

from conftest import report

from repro.evaluation.experiments import run_table3


def test_table3_swde_systems(benchmark):
    result = benchmark.pedantic(
        run_table3,
        kwargs={
            "n_sites": 4,
            "pages_per_site": 28,
            "seed": 0,
            "baseline_pair_budget": 1_000,
        },
        rounds=1,
        iterations=1,
    )
    report("table3_swde_systems", result.format())

    full = result.f1["CERES-Full"]
    topic = result.f1["CERES-Topic"]
    baseline = result.f1["CERES-Baseline"]
    # Shape assertions from the paper.
    for vertical in ("movie", "nbaplayer"):
        assert full[vertical] is not None and full[vertical] > 0.8
    for vertical in ("nbaplayer", "university"):
        if baseline[vertical] is not None:
            assert full[vertical] >= baseline[vertical]
    # Book is the starved vertical: CERES still runs but scores lower.
    assert full["book"] is not None
