"""Zero-shot transfer: unseen-site serving latency and precision@yield.

Three questions, one synthetic SWDE vertical:

1. **LOSO precision** — leave-one-site-out over every site: train the
   global (``xfer:``-only) model on N-1 sites, extract zero-shot from
   the held-out one, score node-level against generated truth
   (:mod:`repro.evaluation.transfer_eval`).
2. **Precision @ yield vs the per-site model** — on the last held-out
   site, compare the zero-shot global model against a per-site model
   trained *on that site's own pages* (the ceiling transfer cannot
   expect to beat): extraction counts and node-level precision side by
   side.
3. **Unseen-site serve latency** — an :class:`ExtractionService` with
   ``transfer_fallback=True`` over a registry that has *no* artifact for
   the site: pages/sec through the global-model fast path, timed via
   ``MetricsRegistry.timer`` (never a bare perf-counter).

Quick mode gates on correctness (zero-shot yield > 0, every extraction
tagged ``model="transfer"``, precision above a floor); latency numbers
are informational on CI hardware.

Run::

    PYTHONPATH=src python benchmarks/bench_transfer.py [--quick]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))  # for conftest.report
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from conftest import report, report_metrics  # noqa: E402

from repro.core.config import CeresConfig  # noqa: E402
from repro.core.pipeline import CeresPipeline  # noqa: E402
from repro.datasets import generate_swde, seed_kb_for  # noqa: E402
from repro.evaluation.scoring import extraction_precision  # noqa: E402
from repro.evaluation.transfer_eval import (  # noqa: E402
    format_loso_table,
    loso_folds,
)
from repro.obs import MetricsRegistry  # noqa: E402
from repro.runtime import ExtractionService, ModelRegistry, SiteModel  # noqa: E402
from repro.transfer import collect_site_examples, train_global  # noqa: E402

#: (n_sites, pages_per_site) per mode — quick keeps CI under a minute.
QUICK_SHAPE = (4, 12)
FULL_SHAPE = (6, 24)
SEED = 7
SERVE_ROUNDS = 3
#: Zero-shot micro precision floor (quick gate): transfer must stay a
#: high-precision extractor even with no page from the served site seen
#: in training.
MIN_PRECISION = 0.75


def run_benchmark(quick: bool, registry_root: str | Path) -> dict:
    n_sites, pages_per_site = QUICK_SHAPE if quick else FULL_SHAPE
    dataset = generate_swde(
        "movie", n_sites=n_sites, pages_per_site=pages_per_site, seed=SEED
    )
    kb = seed_kb_for(dataset, SEED)
    config = CeresConfig()
    bench = MetricsRegistry()

    # 1. Leave-one-site-out over the full vertical.
    with bench.timer("bench.loso_seconds"):
        folds = loso_folds(dataset, kb, config)
    loso_correct = sum(fold.correct for fold in folds)
    loso_total = sum(fold.total for fold in folds)

    # 2. Precision @ yield on the last site: zero-shot global model
    # (trained on the other sites) vs the site's own per-site model.
    held_out = dataset.sites[-1]
    held_out_pages = list(held_out.pages)
    held_out_documents = held_out.documents()
    pools = [
        collect_site_examples(site.name, kb, site.documents(), config)
        for site in dataset.sites[:-1]
    ]
    global_model = train_global(pools, kb.ontology.names(), config)
    transfer_extractions = global_model.extract(held_out_documents)
    transfer_correct, transfer_total = extraction_precision(
        transfer_extractions, held_out_pages
    )

    pipeline = CeresPipeline(kb, config)
    site_result = pipeline.run(held_out_documents, held_out_documents)
    site_correct, site_total = extraction_precision(
        site_result.extractions, held_out_pages
    )

    # 3. Unseen-site serve latency through the transfer fallback: the
    # registry holds artifacts for the training sites and the global
    # model, but nothing for the held-out site.
    registry = ModelRegistry(registry_root)
    registry.save_global(global_model)
    service = ExtractionService(registry, transfer_fallback=True)
    served = service.extract_pages(held_out.name, held_out_documents[:2])  # warm
    assert all(e.model == "transfer" for e in served)

    def serve_round() -> float:
        with bench.timer("bench.transfer_serve_seconds") as timing:
            service.extract_pages(held_out.name, held_out_documents)
        return timing.elapsed

    serve_seconds = min(serve_round() for _ in range(SERVE_ROUNDS))

    return {
        "n_sites": n_sites,
        "pages_per_site": pages_per_site,
        "folds": folds,
        "loso_correct": loso_correct,
        "loso_total": loso_total,
        "held_out_site": held_out.name,
        "transfer_correct": transfer_correct,
        "transfer_total": transfer_total,
        "site_correct": site_correct,
        "site_total": site_total,
        "all_tagged_transfer": all(
            e.model == "transfer" for e in transfer_extractions
        )
        and bool(transfer_extractions),
        "serve_seconds": serve_seconds,
        "serve_pps": len(held_out_documents) / serve_seconds,
        "obs_snapshot": bench.snapshot(),
    }


def _ratio(correct: int, total: int) -> float:
    return correct / total if total else 0.0


def format_summary(stats: dict) -> str:
    transfer_precision = _ratio(stats["transfer_correct"], stats["transfer_total"])
    site_precision = _ratio(stats["site_correct"], stats["site_total"])
    loso_precision = _ratio(stats["loso_correct"], stats["loso_total"])
    met = "MET" if loso_precision >= MIN_PRECISION else "MISSED"
    lines = [
        format_loso_table(stats["folds"]),
        "",
        f"Held-out site {stats['held_out_site']}: zero-shot vs per-site",
        f"  zero-shot (global model)   {stats['transfer_total']:4d} extraction(s)"
        f"   precision {transfer_precision:.3f}",
        f"  per-site (own training)    {stats['site_total']:4d} extraction(s)"
        f"   precision {site_precision:.3f}",
        f"  yield ratio                "
        f"{_ratio(stats['transfer_total'], stats['site_total']):.2f}x of per-site",
        "",
        f"Unseen-site serving (transfer fallback, {stats['pages_per_site']} pages)",
        f"  best of {SERVE_ROUNDS} rounds          {stats['serve_seconds']:.3f}s"
        f"   {stats['serve_pps']:.1f} pages/s",
        "",
        f"LOSO micro precision       {loso_precision:.3f}"
        f"   (gate >= {MIN_PRECISION:.2f}: {met})",
    ]
    return "\n".join(lines)


def main() -> int:
    quick = "--quick" in sys.argv
    stats = run_benchmark(quick, "/tmp/repro_bench_transfer_registry")
    snapshot = stats.pop("obs_snapshot")
    report("transfer", format_summary(stats))
    report_metrics("transfer", snapshot)
    if not stats["all_tagged_transfer"]:
        print(
            "ERROR: zero-shot extraction yield is empty or rows are not "
            "tagged model='transfer'",
            file=sys.stderr,
        )
        return 1
    if _ratio(stats["loso_correct"], stats["loso_total"]) < MIN_PRECISION:
        print(
            f"ERROR: LOSO micro precision "
            f"{_ratio(stats['loso_correct'], stats['loso_total']):.3f} "
            f"below gate {MIN_PRECISION:.2f}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
