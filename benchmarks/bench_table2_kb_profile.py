"""Table 2: seed-KB profile for the Movie vertical (synthetic analogue).

The paper's KB holds 85M triples over Person/Film/TV Series/TV Episode;
ours is the laptop-scale equivalent with the same type inventory.
"""

from conftest import report

from repro.evaluation.experiments import run_table2


def test_table2_kb_profile(benchmark):
    result = benchmark.pedantic(run_table2, kwargs={"seed": 0}, rounds=1, iterations=1)
    report("table2_kb_profile", result.format())
    assert result.total_triples > 5_000
    assert len(result.rows) == 4
