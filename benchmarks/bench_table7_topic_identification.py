"""Table 7: topic identification accuracy on IMDb.

Expected shape (paper): precision near 1.0 on both domains, recall lower
(pages whose topic the KB lacks, or that fail the dominant-path check).
"""

from conftest import report

from repro.evaluation.experiments import run_table7


def test_table7_topic_identification(benchmark):
    result = benchmark.pedantic(
        run_table7,
        kwargs={"seed": 0, "n_films": 50, "n_people": 40, "n_episodes": 16},
        rounds=1,
        iterations=1,
    )
    report("table7_topic_identification", result.format())

    for domain, score in result.scores.items():
        assert score.precision > 0.95, domain
        assert score.recall > 0.7, domain
