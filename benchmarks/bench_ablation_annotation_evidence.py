"""Ablation: relation-annotation evidence (design choice, Section 3.2).

Isolates the contribution of each evidence source on IMDb person pages:
all-mentions (no Algorithm 2) vs local evidence only vs local + global
clustering (CERES-Full).  Expected: precision increases monotonically as
evidence is added.
"""

from conftest import report

from repro.evaluation.experiments import run_annotation_evidence_ablation


def test_ablation_annotation_evidence(benchmark):
    result = benchmark.pedantic(
        run_annotation_evidence_ablation, kwargs={"seed": 0},
        rounds=1, iterations=1,
    )
    report("ablation_annotation_evidence", result.format())

    all_mentions = result.scores["all-mentions (CERES-Topic)"]
    local = result.scores["local evidence only"]
    full = result.scores["local + global (CERES-Full)"]
    assert full.precision >= local.precision >= all_mentions.precision - 0.02
    assert full.f1 >= all_mentions.f1
