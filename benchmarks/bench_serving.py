"""Serving-tier latency, shedding, and observability tax.

Three scenarios against a real in-process :class:`ServingServer`
(threaded HTTP, loopback):

1. **Steady load** — concurrent clients issue single-page ``/extract``
   requests against a warm site model.  Reports client-observed p50/p99
   latency, throughput, and the resident-set high-water mark.  Gate:
   every request returns 200.

2. **Overload burst** — a burst far wider than ``workers`` +
   ``max_queue_depth`` lands at once.  Gates: every request is answered
   (served or shed — none hang, none error), at least one request is
   shed 429, and the server's ``serving.shed`` counter agrees with the
   client-side count (the shed path is observable, not silent).

3. **Observability tax** — the steady scenario re-run with metrics on
   vs. off, interleaved best-of-N.  Gate (full mode): enabled keeps at
   least ``OBS_MIN_RATIO`` of disabled throughput; informational in
   ``--quick`` (CI hardware jitter).

Run::

    PYTHONPATH=src python benchmarks/bench_serving.py [--quick]
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))  # for conftest.report
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from conftest import report, report_metrics  # noqa: E402

from repro import obs  # noqa: E402
from repro.core.config import CeresConfig  # noqa: E402
from repro.core.pipeline import CeresPipeline  # noqa: E402
from repro.datasets import generate_swde, seed_kb_for  # noqa: E402
from repro.obs import MetricsRegistry  # noqa: E402
from repro.runtime import ExtractionService, SiteModel  # noqa: E402
from repro.serving import ServingConfig, ServingServer  # noqa: E402

#: Enabled-mode throughput must keep this fraction of disabled-mode.
OBS_MIN_RATIO = 0.97
#: Best-of-N per mode, interleaved: a threaded loopback server's
#: throughput jitters several percent run-to-run, so the gate compares
#: each mode's best round rather than any single sample.
OBS_ROUNDS = 5
BURST_WIDTH = 32


def rss_mib() -> float:
    with open("/proc/self/status", encoding="ascii") as status:
        for line in status:
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) / 1024.0
    return 0.0


def percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def build_world(n_pages: int) -> dict:
    dataset = generate_swde("movie", n_sites=1, pages_per_site=n_pages,
                            seed=17)
    kb = seed_kb_for(dataset, 17)
    site = dataset.sites[0]
    documents = [page.document for page in site.pages]
    config = CeresConfig()
    result = CeresPipeline(kb, config).run(documents, documents)
    service = ExtractionService()
    service.add_site_model(SiteModel.from_result(site.name, config, result))
    return {
        "service": service,
        "site": site.name,
        "html": [page.html for page in site.pages],
    }


def post_extract(port: int, payload: dict, timeout: float = 60.0) -> int:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("POST", "/extract", body=json.dumps(payload))
        response = conn.getresponse()
        response.read()
        return response.status
    finally:
        conn.close()


def drive(
    server: ServingServer,
    world: dict,
    n_clients: int,
    requests_per_client: int,
    bench: MetricsRegistry,
) -> tuple[list[int], list[float], float]:
    """Closed-loop load: each client thread issues its requests
    back-to-back.  Returns (statuses, per-request latencies, wall)."""
    statuses: list[int] = []
    latencies: list[float] = []
    lock = threading.Lock()

    def client(offset: int) -> None:
        for index in range(requests_per_client):
            page = world["html"][(offset + index) % len(world["html"])]
            payload = {"site": world["site"],
                       "pages": [{"html": page, "url": f"c{offset}-{index}"}]}
            with bench.timer("bench.request_seconds") as timing:
                status = post_extract(server.port, payload)
            with lock:
                statuses.append(status)
                latencies.append(timing.elapsed)

    threads = [
        threading.Thread(target=client, args=(offset,))
        for offset in range(n_clients)
    ]
    with bench.timer("bench.drive_seconds") as wall:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    return statuses, latencies, wall.elapsed


def run_steady(world: dict, n_clients: int, per_client: int,
               bench: MetricsRegistry) -> dict:
    config = ServingConfig(port=0, workers=2, batch_linger=0.005,
                           request_deadline=120.0)
    obs.enable(tracing=False, metrics=True)
    server = ServingServer(world["service"], config)
    server.start()
    try:
        # Warm the extractor pool outside timing.
        post_extract(server.port, {
            "site": world["site"],
            "pages": [{"html": world["html"][0], "url": "warm"}],
        })
        statuses, latencies, wall = drive(
            server, world, n_clients, per_client, bench
        )
        rss = rss_mib()
    finally:
        server.stop()
        obs.disable()
    total = len(statuses)
    return {
        "requests": total,
        "all_200": statuses.count(200) == total,
        "p50_ms": percentile(latencies, 0.50) * 1000.0,
        "p99_ms": percentile(latencies, 0.99) * 1000.0,
        "rps": total / wall if wall else 0.0,
        "rss_mib": rss,
    }


def run_burst(world: dict, bench: MetricsRegistry) -> dict:
    # batch_max_pages=1 pins each batch to a single request (no merging),
    # so the lone worker serializes the burst and its tail must find the
    # queue full.
    config = ServingConfig(port=0, workers=1, max_queue_depth=4,
                           batch_max_pages=1, request_deadline=120.0,
                           retry_after=0.5)
    obs.enable(tracing=False, metrics=True)
    server = ServingServer(world["service"], config)
    server.start()
    try:
        post_extract(server.port, {
            "site": world["site"],
            "pages": [{"html": world["html"][0], "url": "warm"}],
        })
        pages = [
            {"html": html, "url": f"b{index}"}
            for index, html in enumerate(world["html"])
        ]
        payload = {"site": world["site"], "pages": pages}
        statuses: list[int] = []
        lock = threading.Lock()

        def one() -> None:
            status = post_extract(server.port, payload)
            with lock:
                statuses.append(status)

        threads = [threading.Thread(target=one) for _ in range(BURST_WIDTH)]
        with bench.timer("bench.burst_seconds") as wall:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        counters = server.stats_payload()["metrics"]["counters"]
    finally:
        server.stop()
        obs.disable()
    shed = statuses.count(429)
    served = statuses.count(200)
    return {
        "burst": BURST_WIDTH,
        "served": served,
        "shed": shed,
        "answered": len(statuses),
        "shed_rate": shed / BURST_WIDTH,
        "counter_agrees": counters.get("serving.shed", 0) == shed,
        "burst_seconds": wall.elapsed,
    }


def run_obs_tax(world: dict, n_clients: int, per_client: int,
                bench: MetricsRegistry) -> dict:
    """Interleaved best-of-N: the same closed loop with the process-wide
    obs registry off vs. on."""

    def one_round(metrics_on: bool) -> float:
        if metrics_on:
            obs.enable(tracing=False, metrics=True)
        else:
            obs.disable()
        config = ServingConfig(port=0, workers=2, request_deadline=120.0)
        server = ServingServer(world["service"], config)
        server.start()
        try:
            post_extract(server.port, {
                "site": world["site"],
                "pages": [{"html": world["html"][0], "url": "warm"}],
            })
            statuses, _, wall = drive(
                server, world, n_clients, per_client, bench
            )
            assert all(status == 200 for status in statuses)
        finally:
            server.stop()
            obs.disable()
        return len(statuses) / wall

    disabled_best = enabled_best = 0.0
    for _ in range(OBS_ROUNDS):
        disabled_best = max(disabled_best, one_round(False))
        enabled_best = max(enabled_best, one_round(True))
    return {
        "obs_disabled_rps": disabled_best,
        "obs_enabled_rps": enabled_best,
        "obs_ratio": enabled_best / disabled_best if disabled_best else 0.0,
    }


def format_table(steady: dict, burst: dict, tax: dict, quick: bool) -> str:
    def verdict(ok: bool) -> str:
        return "MET" if ok else "MISSED"

    tax_line = (
        f"  obs enabled/disabled   {tax['obs_ratio']:8.3f}    "
        + (
            "(informational in --quick)"
            if quick
            else f"(gate >= {OBS_MIN_RATIO:.2f}: "
            f"{verdict(tax['obs_ratio'] >= OBS_MIN_RATIO)})"
        )
    )
    lines = [
        "Serving tier: latency, shedding, observability tax",
        f"  steady load            {steady['requests']} requests   "
        f"(all 200: {verdict(steady['all_200'])})",
        f"  latency p50            {steady['p50_ms']:8.1f} ms",
        f"  latency p99            {steady['p99_ms']:8.1f} ms",
        f"  throughput             {steady['rps']:8.1f} req/s",
        f"  resident set           {steady['rss_mib']:8.1f} MiB",
        f"  burst width            {burst['burst']} vs 1 worker + queue 4",
        f"  answered               {burst['answered']}/{burst['burst']}   "
        f"(gate all answered: "
        f"{verdict(burst['answered'] == burst['burst'])})",
        f"  served / shed          {burst['served']} / {burst['shed']}   "
        f"(gate shed >= 1: {verdict(burst['shed'] >= 1)})",
        f"  shed rate              {burst['shed_rate']:8.2f}",
        f"  serving.shed counter agrees      "
        f"{verdict(burst['counter_agrees'])}",
        f"  obs disabled           {tax['obs_disabled_rps']:8.1f} req/s",
        f"  obs enabled            {tax['obs_enabled_rps']:8.1f} req/s",
        tax_line,
    ]
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small load; correctness gates stay hard, the obs-overhead "
        "gate becomes informational (CI smoke)",
    )
    args = parser.parse_args()
    n_pages = 24 if args.quick else 48
    n_clients, per_client = (4, 6) if args.quick else (8, 12)

    bench = MetricsRegistry()
    world = build_world(n_pages)
    steady = run_steady(world, n_clients, per_client, bench)
    burst = run_burst(world, bench)
    tax = run_obs_tax(world, n_clients, per_client, bench)

    report("serving", format_table(steady, burst, tax, args.quick))
    report_metrics("serving", bench.snapshot())

    failures = []
    if not steady["all_200"]:
        failures.append("steady load saw a non-200 response")
    if burst["answered"] != burst["burst"]:
        failures.append("a burst request was never answered")
    if burst["shed"] < 1:
        failures.append("overload burst was never shed (backpressure dead)")
    if not burst["counter_agrees"]:
        failures.append("serving.shed counter disagrees with client 429s")
    if not args.quick and tax["obs_ratio"] < OBS_MIN_RATIO:
        failures.append(
            f"obs overhead ratio {tax['obs_ratio']:.3f} below "
            f"{OBS_MIN_RATIO:.2f}"
        )
    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
