"""Shared benchmark plumbing.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md's per-experiment index).  The rendered table is printed to
stdout *and* written to ``benchmarks/out/<name>.txt`` so that
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures
timing while the experiment tables land in versionable artifacts.

Timing goes through :mod:`repro.obs` (``MetricsRegistry.timer``), never
a bare perf-counter call — CI greps for violations — and every benchmark
persists its registry snapshot via :func:`report_metrics`, so
``out/<name>.metrics.json`` carries the raw duration histograms behind
each rendered table.
"""

from __future__ import annotations

import json
import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def report(name: str, text: str) -> None:
    """Print a rendered experiment table and persist it."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def report_metrics(name: str, snapshot: dict) -> None:
    """Persist a benchmark's metrics snapshot next to its table."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.metrics.json").write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    )
