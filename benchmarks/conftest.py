"""Shared benchmark plumbing.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md's per-experiment index).  The rendered table is printed to
stdout *and* written to ``benchmarks/out/<name>.txt`` so that
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures
timing while the experiment tables land in versionable artifacts.
"""

from __future__ import annotations

import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def report(name: str, text: str) -> None:
    """Print a rendered experiment table and persist it."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
