"""Scoring hot path: batched, vocabulary-compiled engine vs. legacy per-node.

PR 1/PR 2 removed the architectural waste from warm serving (per-page
extractor rebuilds, unbounded caches); the remaining cost was the scoring
chain itself — per-node f-string feature dicts, per-name vocabulary
hashing, and one small matmul per page.  The batched engine
(``repro.core.extraction.scoring``) compiles the vocabulary into direct
tuple→column lookups, memoizes structural work per element, and scores a
whole batch with one CSR matrix and one matmul per cluster model.

This benchmark serves the same 200-page site warm through both paths and
checks:

* **equivalence** — thresholded extraction rows are byte-identical
  between the batched engine, the legacy per-node oracle, and the
  one-shot pipeline;
* **throughput** — warm batched pages/s, with speedups vs. the in-process
  legacy path and vs. the PR 2 baseline (1,220 pages/s from
  ``benchmarks/out/cache_memory.txt``); the full run fails unless the
  batched engine clears 3x the PR 2 baseline.

Run::

    PYTHONPATH=src python benchmarks/bench_scoring_hotpath.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))  # for conftest.report
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from conftest import report, report_metrics  # noqa: E402

from repro.core.config import CeresConfig  # noqa: E402
from repro.obs import MetricsRegistry  # noqa: E402
from repro.core.pipeline import CeresPipeline  # noqa: E402
from repro.datasets import generate_swde, seed_kb_for  # noqa: E402
from repro.dom.parser import parse_html  # noqa: E402
from repro.runtime import (  # noqa: E402
    ExtractionService,
    ModelRegistry,
    SiteModel,
    extraction_row,
)

#: Warm serving throughput measured by benchmarks/out/cache_memory.txt
#: at the PR 2 head — the floor this engine is measured against.
PR2_BASELINE_PPS = 1220.0
#: Required speedup over the PR 2 baseline (full mode).
REQUIRED_SPEEDUP = 3.0


def rows_for(extractions, documents, site_name) -> str:
    return json.dumps(
        [
            extraction_row(e, documents[e.page_index].url, site_name)
            for e in extractions
        ],
        sort_keys=True,
    )


def run_benchmark(
    n_pages: int,
    n_batches: int,
    tmp_registry: str | Path = "/tmp/repro_bench_scoring_registry",
) -> dict:
    dataset = generate_swde("movie", n_sites=2, pages_per_site=n_pages, seed=11)
    kb = seed_kb_for(dataset, 11)
    site = dataset.sites[1]
    config = CeresConfig()
    threshold = config.confidence_threshold

    # One-shot pipeline: the trained model and the ground-truth rows.
    documents = [page.document for page in site.pages]
    pipeline = CeresPipeline(kb, config)
    result = pipeline.run(documents, documents)
    expected_rows = rows_for(result.extractions, documents, site.name)

    registry = ModelRegistry(tmp_registry)
    registry.save(SiteModel.from_result(site.name, config, result))
    service = ExtractionService(registry)
    pool = service.pool(site.name)
    bench = MetricsRegistry()

    def fresh_documents():
        return [parse_html(page.html, url=page.page_id) for page in site.pages]

    def batched_batch() -> tuple[int, float]:
        fresh = fresh_documents()
        with bench.timer("bench.batched_batch_seconds") as timing:
            extractions = service.extract_pages(site.name, fresh)
        if rows_for(extractions, fresh, site.name) != expected_rows:
            raise AssertionError("batched engine diverged from one-shot extract")
        return len(fresh), timing.elapsed

    def legacy_batch() -> tuple[int, float]:
        """The PR 2 warm path: per-page, per-node scoring via the oracle."""
        fresh = fresh_documents()
        with bench.timer("bench.legacy_batch_seconds") as timing:
            extractions = []
            for page_index, document in enumerate(fresh):
                extractor = pool.extractor_for(document)
                if extractor is None:
                    continue
                candidates = extractor.legacy_candidates_for_page(
                    document, page_index
                )
                extractions.extend(candidates.extractions(threshold))
        if rows_for(extractions, fresh, site.name) != expected_rows:
            raise AssertionError("legacy path diverged from one-shot extract")
        return len(fresh), timing.elapsed

    def measure(batch, warmup: int = 2) -> float:
        """Best-of-N batch throughput (timeit-style: the minimum time is
        the measurement least distorted by host noise; every batch still
        runs, and every batch's output is equivalence-checked)."""
        for _ in range(warmup):
            batch()
        best = float("inf")
        pages = 0
        for _ in range(n_batches):
            n, seconds = batch()
            pages = n
            if seconds < best:
                best = seconds
        return pages / best if best > 0 else 0.0

    legacy_pps = measure(legacy_batch)
    batched_pps = measure(batched_batch)
    return {
        "n_pages": n_pages,
        "n_batches": n_batches,
        "legacy_pps": legacy_pps,
        "batched_pps": batched_pps,
        "speedup_vs_legacy": batched_pps / legacy_pps if legacy_pps else 0.0,
        "speedup_vs_pr2": batched_pps / PR2_BASELINE_PPS,
        "equivalent": True,  # the batch closures raise otherwise
        "obs_snapshot": bench.snapshot(),
    }


def format_table(stats: dict) -> str:
    return "\n".join(
        [
            "Scoring hot path: batched compiled engine vs legacy per-node",
            f"  pages per batch        {stats['n_pages']}",
            f"  batches                {stats['n_batches']}",
            f"  legacy warm            {stats['legacy_pps']:10.1f} pages/s",
            f"  batched warm           {stats['batched_pps']:10.1f} pages/s",
            f"  speedup vs legacy      {stats['speedup_vs_legacy']:10.2f}x",
            f"  speedup vs PR2 base    {stats['speedup_vs_pr2']:10.2f}x"
            f"   (baseline {PR2_BASELINE_PPS:.0f} pages/s, gate >= "
            f"{REQUIRED_SPEEDUP:.0f}x)",
            "  extractions            byte-identical "
            "(batched == legacy == one-shot)",
        ]
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small site, few batches (CI smoke; equivalence gate only)",
    )
    args = parser.parse_args()
    if args.quick:
        stats = run_benchmark(n_pages=40, n_batches=5)
    else:
        stats = run_benchmark(n_pages=200, n_batches=20)
    report_metrics("scoring_hotpath", stats.pop("obs_snapshot"))
    report("scoring_hotpath", format_table(stats))
    if not args.quick and stats["speedup_vs_pr2"] < REQUIRED_SPEEDUP:
        print(
            f"ERROR: batched engine at {stats['batched_pps']:.0f} pages/s is "
            f"below {REQUIRED_SPEEDUP:.0f}x the PR 2 baseline",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
