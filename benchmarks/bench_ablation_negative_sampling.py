"""Ablation: negative sampling (design choice, Section 4.1).

Varies the negatives-per-positive ratio r and toggles the list-index
exclusion safeguard.  Expected: r=3 with exclusion (the paper's setting)
is on the Pareto frontier; removing the exclusion hurts recall on the
multi-valued list predicates (unannotated list members become false
negatives in training).
"""

from conftest import report

from repro.evaluation.experiments import run_negative_sampling_ablation


def test_ablation_negative_sampling(benchmark):
    result = benchmark.pedantic(
        run_negative_sampling_ablation, kwargs={"seed": 0}, rounds=1, iterations=1
    )
    report("ablation_negative_sampling", result.format())

    paper = result.scores["r=3, with list exclusion (paper)"]
    no_exclusion = result.scores["r=3, no list exclusion"]
    assert paper.f1 >= no_exclusion.f1 - 0.02
    for score in result.scores.values():
        assert score.defined
