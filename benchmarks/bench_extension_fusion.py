"""Extension: knowledge fusion over multi-site extractions.

The paper's stated future work (Section 5.5.1): "We leave for future work
to investigate how many of these mistakes can be solved by applying
knowledge fusion [10, 11] on the extraction results."  This benchmark runs
CERES over a mixed clean/hazard long-tail roster, fuses the per-site
extractions, and measures fact-level precision of single-site facts vs
facts corroborated by 2+ sites.  Expected: cross-site corroboration
filters template artifacts, lifting precision.
"""

from collections import defaultdict

from conftest import report

from repro.datasets.commoncrawl import CCSiteConfig, generate_commoncrawl
from repro.evaluation.experiments import run_table8
from repro.evaluation.fusion_eval import dataset_fact_keys
from repro.evaluation.report import format_number, format_prf, format_table
from repro.fusion import fuse_extractions

SITES = (
    CCSiteConfig("fusion-a", "General", "en", 30, 0.8),
    CCSiteConfig("fusion-b", "General", "en", 30, 0.8),
    CCSiteConfig("fusion-c", "General", "en", 24, 0.7),
    CCSiteConfig(
        "fusion-hazard", "All-genres hazard", "en", 20, 0.7,
        hazards=frozenset({"all_genres"}),
    ),
    CCSiteConfig(
        "fusion-conflate", "Role conflation hazard", "en", 20, 0.7,
        hazards=frozenset({"role_conflation"}),
    ),
)


def _run(seed=0):
    # A deliberately small universe: the five sites cover overlapping film
    # rosters, so true facts gather support from several sites.
    from repro.datasets.entities import MovieUniverse

    universe = MovieUniverse(seed=seed, n_people=200, n_films=70, n_series=4,
                             episodes_per_series=4)
    dataset = generate_commoncrawl(seed, SITES, universe=universe)
    _, dataset, results = run_table8(seed=seed, sites=SITES, dataset=dataset)
    by_site = {
        name: result.extractions for name, result in results.items()
    }
    truth = dataset_fact_keys(dataset.sites)

    fused = fuse_extractions(by_site)
    buckets = defaultdict(lambda: [0, 0])  # n_sites bucket -> [correct, total]
    for fact in fused:
        bucket = "1 site" if fact.n_sites == 1 else "2+ sites"
        buckets[bucket][1] += 1
        if fact.key() in truth:
            buckets[bucket][0] += 1
    return buckets, fused


def test_extension_fusion(benchmark):
    buckets, fused = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for bucket in ("1 site", "2+ sites"):
        correct, total = buckets[bucket]
        rows.append(
            [bucket, format_number(total),
             format_prf(correct / total if total else None)]
        )
    table = format_table(
        ["Support", "#Facts", "Fact precision"],
        rows,
        title="Extension: cross-site knowledge fusion (fact-level precision)",
    )
    report("extension_fusion", table)

    single_correct, single_total = buckets["1 site"]
    multi_correct, multi_total = buckets["2+ sites"]
    assert multi_total > 0
    assert (multi_correct / multi_total) >= (single_correct / max(1, single_total))
