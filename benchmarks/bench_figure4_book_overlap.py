"""Figure 4: Book vertical — extraction F1 vs seed-KB overlap.

The Book seed KB comes from one site's ground truth; the other nine sites
overlap it on a sharply decreasing number of pages.  Expected shape
(paper): F1 grows with overlap; sites with ≲5 overlapping pages hover
near zero, yet precision holds when anything is extracted at all.
"""

from conftest import report

from repro.evaluation.experiments import run_figure4


def test_figure4_book_overlap(benchmark):
    result = benchmark.pedantic(
        run_figure4,
        kwargs={"n_sites": 10, "pages_per_site": 32, "seed": 0},
        rounds=1,
        iterations=1,
    )
    report("figure4_book_overlap", result.format())

    points = sorted(result.points, key=lambda p: p[1])
    assert len(points) == 9
    low_overlap = [f1 for _, overlap, f1 in points if overlap <= 4]
    high_overlap = [f1 for _, overlap, f1 in points if overlap >= 12]
    assert high_overlap, "no high-overlap sites generated"
    # Mean F1 of high-overlap sites beats the starved sites.
    mean = lambda xs: sum(xs) / len(xs) if xs else 0.0
    assert mean(high_overlap) > mean(low_overlap)
