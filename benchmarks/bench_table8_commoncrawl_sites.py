"""Tables 8-9 and Figure 6: the long-tail CommonCrawl experiment.

One pipeline run per synthetic long-tail site (the full DEFAULT_SITES
roster: 30+ sites, multiple languages, every Section 5.5.1 failure mode).
The run is shared: Table 8 reports the per-site breakdown, Table 9 the
per-predicate totals, Figure 6 the precision/volume sweep — mirroring how
the paper derives all three from a single extraction campaign.

Expected shapes:
* clean/high-overlap sites (themoviedb analogue) near the top on precision;
* hazard sites (all-genres, role-conflation) near the bottom;
* chart-only sites extract nothing ("an inability to extract being a good
  thing");
* overall extraction:annotation ratio > 1 (long-tail discovery);
* Figure 6 precision rises monotonically with the confidence threshold.
"""

from conftest import report

from repro.evaluation.experiments import run_figure6, run_table8, run_table9

_STATE = {}


def test_table8_commoncrawl_sites(benchmark):
    table, dataset, results = benchmark.pedantic(
        run_table8, kwargs={"seed": 0}, rounds=1, iterations=1
    )
    _STATE["table"] = table
    _STATE["dataset"] = dataset
    _STATE["results"] = results
    report("table8_commoncrawl_sites", table.format())

    by_name = {s.name: s for s in table.sites}
    # Chart-only and no-overlap sites extract nothing.
    assert by_name["boxofficemojo"].n_extractions == 0
    assert by_name["bmxmdb"].n_extractions == 0
    # Clean high-overlap site extracts at high precision.
    clean = by_name["themoviedb"].precision
    assert clean is not None and clean > 0.9
    # The hazard group (semantic ambiguity / undifferentiated lists) sinks
    # to the bottom of the table, as in the paper's Section 5.5.1.
    hazard_precisions = [
        by_name[name].precision
        for name in ("laborfilms", "christianfilmdb", "spicyonion",
                     "filmindonesia", "sfd")
        if by_name[name].precision is not None
    ]
    assert hazard_precisions and min(hazard_precisions) < 0.8
    totals = table.totals()
    assert totals.extraction_to_annotation > 1.0
    assert totals.precision is not None and totals.precision > 0.7


def test_table9_commoncrawl_predicates(benchmark):
    assert "dataset" in _STATE, "table 8 must run first (same module)"
    table = benchmark.pedantic(
        run_table9, args=(_STATE["dataset"], _STATE["results"]),
        rounds=1, iterations=1,
    )
    report("table9_commoncrawl_predicates", table.format())
    assert "has_cast_member" in table.rows
    cast_annotations, cast_extractions, cast_precision = table.rows["has_cast_member"]
    assert cast_extractions > cast_annotations  # long-tail discovery
    assert cast_precision > 0.85


def test_figure6_confidence_sweep(benchmark):
    assert "dataset" in _STATE, "table 8 must run first (same module)"
    figure = benchmark.pedantic(
        run_figure6, args=(_STATE["dataset"], _STATE["results"]),
        rounds=1, iterations=1,
    )
    report("figure6_confidence_sweep", figure.format())
    counts = [count for _, count, _ in figure.points]
    precisions = [precision for _, _, precision in figure.points]
    assert counts == sorted(counts, reverse=True)
    # Precision at the strictest threshold beats the loosest.
    assert precisions[-1] >= precisions[0]
