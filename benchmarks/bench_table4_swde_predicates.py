"""Table 4: per-predicate P/R/F1 — supervised Vertex++ vs CERES-Full.

Node-level scoring across all mentions (not page hits).  Expected shape:
CERES-Full comparable to Vertex++ on most predicates, Vertex++ ahead on
predicates the seed KB starves (Book vertical), and NA for Movie MPAA
rating (absent from the KB).
"""

from conftest import report

from repro.evaluation.experiments import run_table4


def test_table4_swde_predicates(benchmark):
    result = benchmark.pedantic(
        run_table4,
        kwargs={"n_sites": 4, "pages_per_site": 28, "seed": 0},
        rounds=1,
        iterations=1,
    )
    report("table4_swde_predicates", result.format())

    movie = result.scores["movie"]
    assert movie["mpaa_rating"]["ceres"] is None  # not in the seed KB
    assert movie["mpaa_rating"]["vertex"] is not None
    # CERES-Full must be strong on the Movie name/director predicates.
    assert movie["name"]["ceres"].f1 > 0.9
    assert movie["directed_by"]["ceres"].f1 > 0.8
