"""Table 6: IMDb annotation quality — CERES-Topic vs CERES-Full.

Measures the automatic labels themselves (before any training).  Expected
shape (paper): CERES-Full trades a little recall for much higher
precision — "annotation has decent precision ... though sometimes lower
recall; this is because our annotation algorithms strive for high
precision".
"""

from conftest import report

from repro.evaluation.experiments import run_table6
from repro.ml.metrics import PRF


def _pooled(result, domain, system):
    total = PRF()
    for systems in result.scores[domain].values():
        total += systems[system]
    return total


def test_table6_imdb_annotation(benchmark):
    result = benchmark.pedantic(
        run_table6,
        kwargs={"seed": 0, "n_films": 50, "n_people": 40, "n_episodes": 16},
        rounds=1,
        iterations=1,
    )
    report("table6_imdb_annotation", result.format())

    for domain in ("person", "film"):
        full = _pooled(result, domain, "full")
        topic = _pooled(result, domain, "topic")
        assert full.precision > topic.precision, domain
        # The precision/recall trade: Topic recalls at least as much.
        assert topic.recall >= full.recall - 0.05, domain
