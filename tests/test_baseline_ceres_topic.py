"""Tests for repro.baselines.ceres_topic (all-mentions annotation)."""

from repro.baselines.ceres_topic import AllMentionsAnnotator, make_ceres_topic_pipeline
from repro.core.annotation.relation import RelationAnnotator
from repro.core.annotation.topic import TopicIdentifier
from repro.core.config import CeresConfig

from tests.test_relation_annotation import spike_lee_site


def run_annotators(n_pages=8):
    kb, pages = spike_lee_site(n_pages)
    config = CeresConfig()
    identifier = TopicIdentifier(kb, config)
    topics = identifier.identify(pages)
    full = RelationAnnotator(kb, config, identifier.matcher).annotate(pages, topics)
    all_mentions = AllMentionsAnnotator(kb, config, identifier.matcher).annotate(
        pages, topics
    )
    return kb, full, all_mentions


class TestAllMentionsAnnotator:
    def test_annotates_more_than_full(self):
        _, full, all_mentions = run_annotators()
        n_full = sum(len(p.annotations) for p in full)
        n_all = sum(len(p.annotations) for p in all_mentions)
        assert n_all > n_full

    def test_every_mention_annotated(self):
        """Objects with k mentions receive k annotations (vs at most 1)."""
        _, full, all_mentions = run_annotators()
        def multiplicity(pages):
            from collections import Counter
            counts = Counter()
            for page in pages:
                for a in page.annotations:
                    counts[(page.page_index, a.predicate, a.object_key)] += 1
            return counts
        assert max(multiplicity(all_mentions).values()) > 1
        assert max(multiplicity(full).values()) == 1

    def test_pipeline_factory_wires_annotator(self):
        kb, _, _ = run_annotators()
        pipeline = make_ceres_topic_pipeline(kb, CeresConfig())
        assert isinstance(pipeline.annotator, AllMentionsAnnotator)

    def test_pipeline_runs_end_to_end(self):
        kb, pages = spike_lee_site(10)
        pipeline = make_ceres_topic_pipeline(kb, CeresConfig())
        result = pipeline.run(pages, pages)
        assert result.annotated_pages
        assert result.extractions
