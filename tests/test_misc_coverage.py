"""Coverage for remaining edges: hazard mechanics, runner corners,
determinism guarantees across the public API."""

from repro.core.config import CeresConfig
from repro.core.pipeline import CeresPipeline
from repro.datasets import generate_swde, seed_kb_for
from repro.datasets.commoncrawl import CCSiteConfig, generate_commoncrawl
from repro.datasets.names import LANGUAGE_LABELS, PersonNamer, TitleNamer
from repro.evaluation.experiments import run_figure5
from repro.evaluation.experiments.swde import scored_predicates
import random


class TestNames:
    def test_person_namer_unique(self):
        namer = PersonNamer(random.Random(0))
        names = [namer.next() for _ in range(500)]
        assert len(names) == len(set(names))

    def test_title_namer_unique(self):
        namer = TitleNamer(random.Random(0))
        titles = [namer.next() for _ in range(800)]
        assert len(titles) == len(set(titles))

    def test_language_banks_complete(self):
        slots = set(LANGUAGE_LABELS["en"])
        for language, bank in LANGUAGE_LABELS.items():
            assert set(bank) == slots, f"{language} bank missing slots"


class TestScoredPredicates:
    def test_movie_ds_excludes_mpaa(self):
        assert "mpaa_rating" not in scored_predicates("movie", True)
        assert "mpaa_rating" in scored_predicates("movie", False)

    def test_other_verticals_unchanged(self):
        assert scored_predicates("book", True) == scored_predicates("book", False)


class TestDateListHazard:
    def test_chart_dates_carry_no_truth(self):
        sites = (
            CCSiteConfig(
                "datelists", "Charts", "en", 6, 0.8,
                hazards=frozenset({"date_lists"}),
            ),
        )
        dataset = generate_commoncrawl(seed=0, sites=sites)
        page = dataset.sites[0].pages[0]
        chart_fields = [
            emission
            for node, emission in page.aligned()
            if any("chart-date" in a.get("class", "") for a in node.ancestors(True))
            or (node.parent is not None and node.parent.get("class") == "chart-date")
        ]
        assert chart_fields
        assert all(e.predicate is None for e in chart_fields)
        # The real release date is still asserted once.
        assert "release_date" in page.truth.objects


class TestTemplateVarietyHazard:
    def test_row_order_varies_across_pages(self):
        sites = (
            CCSiteConfig(
                "vary", "Shuffled", "en", 8, 0.8,
                hazards=frozenset({"template_variety"}),
            ),
        )
        dataset = generate_commoncrawl(seed=0, sites=sites)
        orders = set()
        for page in dataset.sites[0].pages:
            labels = tuple(
                e.text for _, e in page.aligned()
                if e.predicate is None and e.text.endswith(":") or
                (e.predicate is None and len(e.text) < 20 and not e.text[0].isdigit())
            )
            orders.add(labels[:6])
        assert len(orders) > 1  # at least two distinct row orders


class TestFigure5Runner:
    def test_monotone_trend(self):
        result = run_figure5(pages_per_site=24, seed=0, caps=(1, 8), n_sites=2)
        f1 = dict(result.points)
        assert f1[8] >= f1[1]


class TestDeterminismAcrossRuns:
    def test_pipeline_bitwise_deterministic(self):
        def run_once():
            dataset = generate_swde("movie", n_sites=2, pages_per_site=16, seed=11)
            kb = seed_kb_for(dataset, 11)
            site = dataset.sites[1]
            docs = [p.document for p in site.pages]
            pipeline = CeresPipeline(kb, CeresConfig())
            result = pipeline.run(docs[:8], docs[8:])
            return [
                (e.page_index, e.subject, e.predicate, e.object,
                 round(e.confidence, 10))
                for e in result.extractions
            ]

        assert run_once() == run_once()
