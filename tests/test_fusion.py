"""Tests for repro.fusion (cross-site knowledge fusion)."""

from repro.core.extraction.extractor import Extraction
from repro.dom.node import TextNode
from repro.fusion import fuse_extractions


def ext(subject, predicate, obj, confidence, page=0):
    return Extraction(subject, predicate, obj, confidence, page, TextNode(obj))


class TestFuseExtractions:
    def test_cross_site_agreement_boosts_score(self):
        fused = fuse_extractions(
            {
                "site_a": [ext("Film X", "genre", "Drama", 0.8)],
                "site_b": [ext("Film X", "genre", "Drama", 0.8)],
            }
        )
        assert len(fused) == 1
        fact = fused[0]
        assert fact.n_sites == 2
        assert abs(fact.score - (1 - 0.2 * 0.2)) < 1e-9

    def test_single_site_repetition_does_not_stack(self):
        """Two hundred copies from one site count once (template artifact)."""
        many = [ext("Film X", "genre", "Drama", 0.6, page=i) for i in range(200)]
        fused = fuse_extractions({"site_a": many})
        assert fused[0].score == 0.6

    def test_surface_normalization_bridges_sites(self):
        fused = fuse_extractions(
            {
                "a": [ext("Film X", "genre", "Drama!", 0.7)],
                "b": [ext("film x", "genre", "DRAMA", 0.7)],
            }
        )
        assert len(fused) == 1
        assert fused[0].n_sites == 2

    def test_min_sites_filter(self):
        fused = fuse_extractions(
            {
                "a": [ext("Film X", "genre", "Drama", 0.9)],
                "b": [ext("Film Y", "genre", "Comedy", 0.9),
                      ext("Film X", "genre", "Drama", 0.5)],
            },
            min_sites=2,
        )
        assert [f.subject for f in fused] == ["Film X"]

    def test_min_score_filter(self):
        fused = fuse_extractions(
            {"a": [ext("Film X", "genre", "Drama", 0.4)]},
            min_score=0.5,
        )
        assert fused == []

    def test_sorted_by_score(self):
        fused = fuse_extractions(
            {
                "a": [ext("X", "genre", "Drama", 0.9), ext("Y", "genre", "War", 0.3)],
                "b": [ext("X", "genre", "Drama", 0.9)],
            }
        )
        scores = [f.score for f in fused]
        assert scores == sorted(scores, reverse=True)

    def test_best_confidence_per_site_kept(self):
        fused = fuse_extractions(
            {"a": [ext("X", "genre", "Drama", 0.3), ext("X", "genre", "Drama", 0.8)]}
        )
        assert fused[0].site_support["a"] == 0.8

    def test_empty(self):
        assert fuse_extractions({}) == []
        assert fuse_extractions({"a": []}) == []

    def test_distinct_predicates_distinct_facts(self):
        fused = fuse_extractions(
            {"a": [ext("X", "genre", "Drama", 0.9),
                   ext("X", "directed_by", "Drama", 0.9)]}
        )
        assert len(fused) == 2
