"""Tests for repro.fusion (cross-site knowledge fusion)."""

import random

from repro.core.extraction.extractor import Extraction
from repro.dom.node import TextNode
from repro.fusion import canonical_value, fact_key, fuse_extractions
from repro.kb.literals import parse_date


def ext(subject, predicate, obj, confidence, page=0):
    return Extraction(subject, predicate, obj, confidence, page, TextNode(obj))


class TestFuseExtractions:
    def test_cross_site_agreement_boosts_score(self):
        fused = fuse_extractions(
            {
                "site_a": [ext("Film X", "genre", "Drama", 0.8)],
                "site_b": [ext("Film X", "genre", "Drama", 0.8)],
            }
        )
        assert len(fused) == 1
        fact = fused[0]
        assert fact.n_sites == 2
        assert abs(fact.score - (1 - 0.2 * 0.2)) < 1e-9

    def test_single_site_repetition_does_not_stack(self):
        """Two hundred copies from one site count once (template artifact)."""
        many = [ext("Film X", "genre", "Drama", 0.6, page=i) for i in range(200)]
        fused = fuse_extractions({"site_a": many})
        assert fused[0].score == 0.6

    def test_surface_normalization_bridges_sites(self):
        fused = fuse_extractions(
            {
                "a": [ext("Film X", "genre", "Drama!", 0.7)],
                "b": [ext("film x", "genre", "DRAMA", 0.7)],
            }
        )
        assert len(fused) == 1
        assert fused[0].n_sites == 2

    def test_min_sites_filter(self):
        fused = fuse_extractions(
            {
                "a": [ext("Film X", "genre", "Drama", 0.9)],
                "b": [ext("Film Y", "genre", "Comedy", 0.9),
                      ext("Film X", "genre", "Drama", 0.5)],
            },
            min_sites=2,
        )
        assert [f.subject for f in fused] == ["Film X"]

    def test_min_score_filter(self):
        fused = fuse_extractions(
            {"a": [ext("Film X", "genre", "Drama", 0.4)]},
            min_score=0.5,
        )
        assert fused == []

    def test_sorted_by_score(self):
        fused = fuse_extractions(
            {
                "a": [ext("X", "genre", "Drama", 0.9), ext("Y", "genre", "War", 0.3)],
                "b": [ext("X", "genre", "Drama", 0.9)],
            }
        )
        scores = [f.score for f in fused]
        assert scores == sorted(scores, reverse=True)

    def test_best_confidence_per_site_kept(self):
        fused = fuse_extractions(
            {"a": [ext("X", "genre", "Drama", 0.3), ext("X", "genre", "Drama", 0.8)]}
        )
        assert fused[0].site_support["a"] == 0.8

    def test_empty(self):
        assert fuse_extractions({}) == []
        assert fuse_extractions({"a": []}) == []

    def test_distinct_predicates_distinct_facts(self):
        fused = fuse_extractions(
            {"a": [ext("X", "genre", "Drama", 0.9),
                   ext("X", "directed_by", "Drama", 0.9)]}
        )
        assert len(fused) == 2


class TestSurfaceFormDeterminism:
    """The canonical surface of a fused fact must not depend on which
    site's extraction happened to arrive first."""

    def test_highest_confidence_surface_wins(self):
        fused = fuse_extractions(
            {
                "low": [ext("film x", "genre", "DRAMA", 0.4)],
                "high": [ext("Film X", "genre", "Drama", 0.9)],
            }
        )
        (fact,) = fused
        assert (fact.subject, fact.object) == ("Film X", "Drama")

    def test_ties_break_lexically(self):
        fused = fuse_extractions(
            {
                "b": [ext("film x", "genre", "drama", 0.7)],
                "a": [ext("Film X", "genre", "Drama", 0.7)],
            }
        )
        (fact,) = fused
        # "Film X" < "film x" lexically (uppercase sorts first).
        assert (fact.subject, fact.object) == ("Film X", "Drama")

    def test_deterministic_under_shuffled_insertion_order(self):
        sites = {
            f"site_{i}": [
                ext(s, "genre", o, c)
                for s, o, c in [
                    ("Film X", "Drama", 0.5 + i / 100),
                    ("film x", "DRAMA", 0.91 - i / 100),
                    ("FILM X", "drama", 0.7),
                ]
            ]
            for i in range(8)
        }
        baseline = None
        rng = random.Random(13)
        for _ in range(6):
            items = list(sites.items())
            rng.shuffle(items)
            fused = fuse_extractions(dict(items))
            snapshot = [
                (f.subject, f.predicate, f.object, f.score,
                 sorted(f.site_support.items()))
                for f in fused
            ]
            if baseline is None:
                baseline = snapshot
            assert snapshot == baseline


class TestConfidenceClamping:
    def test_confidence_at_or_above_one_clamps(self):
        """conf >= 1.0 hits the 0.999999 clamp; the score never exceeds 1."""
        fused = fuse_extractions(
            {"a": [ext("X", "genre", "Drama", 1.0)],
             "b": [ext("X", "genre", "Drama", 1.7)]}
        )
        (fact,) = fused
        assert fact.score <= 1.0
        assert fact.score > 0.999999

    def test_negative_confidence_clamps_to_zero(self):
        fused = fuse_extractions(
            {"a": [ext("X", "genre", "Drama", -0.3)],
             "b": [ext("X", "genre", "Drama", 0.8)]}
        )
        (fact,) = fused
        # The negative vote contributes nothing — and never *raises* the
        # noisy-OR product above what site b alone produces.
        assert abs(fact.score - 0.8) < 1e-12

    def test_min_sites_two_filters_single_site_artifacts(self):
        """A template artifact repeated across one site's pages dies at
        min_sites=2; a cross-site fact survives."""
        artifact = [ext("X", "genre", "War", 0.95, page=i) for i in range(50)]
        fused = fuse_extractions(
            {
                "broken": artifact,
                "a": [ext("X", "genre", "Drama", 0.6)],
                "b": [ext("x", "genre", "DRAMA!", 0.6)],
            },
            min_sites=2,
        )
        assert [(f.subject, f.object) for f in fused] == [("X", "Drama")]


class TestDateBridging:
    def test_parse_date_inverts_date_variants(self):
        from repro.kb.literals import date_variants

        for variant in date_variants("1989-06-30"):
            assert parse_date(variant) == "1989-06-30", variant

    def test_parse_date_never_wrong_on_ambiguous_days(self):
        """Day <= 12 renders ambiguously in slash form; the contract is
        abstain (None), never a valid-but-wrong date."""
        from repro.kb.literals import date_variants

        for variant in date_variants("1989-06-05"):
            assert parse_date(variant) in (None, "1989-06-05"), variant
        # Named-month, ISO, and day-first dot forms stay unambiguous...
        assert parse_date("June 5, 1989") == "1989-06-05"
        assert parse_date("5 June 1989") == "1989-06-05"
        assert parse_date("5. 6. 1989") == "1989-06-05"
        # ...while both slash readings abstain rather than guess.
        assert parse_date("05/06/1989") is None
        assert parse_date("06/05/1989") is None
        # Identical day/month is not ambiguous.
        assert parse_date("06/06/1989") == "1989-06-06"

    def test_parse_date_rejects_non_dates(self):
        for text in ("Drama", "Spike Lee", "1989", "30/30/1989", ""):
            assert parse_date(text) is None, text

    def test_canonical_value_bridges_date_styles(self):
        assert canonical_value("June 30, 1989") == canonical_value("1989-06-30")
        assert canonical_value("30 June 1989") == canonical_value("1989-06-30")
        assert canonical_value("Drama!") == canonical_value("DRAMA")

    def test_fusion_merges_date_variants_across_sites(self):
        fused = fuse_extractions(
            {
                "us": [ext("Film X", "release_date", "June 30, 1989", 0.8)],
                "eu": [ext("Film X", "release_date", "30 June 1989", 0.7)],
                "iso": [ext("Film X", "release_date", "1989-06-30", 0.6)],
            }
        )
        (fact,) = fused
        assert fact.n_sites == 3
        assert fact.key() == fact_key("Film X", "release_date", "1989-06-30")
        # The canonical surface is the highest-confidence rendering.
        assert fact.object == "June 30, 1989"
