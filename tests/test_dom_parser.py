"""Tests for repro.dom.parser and repro.dom.node."""

import pytest

from repro.dom.node import ElementNode, TextNode
from repro.dom.parser import parse_html


SIMPLE = """
<html><head><title>T</title></head>
<body>
<div class="info" id="main">
  <h1>Do the Right Thing</h1>
  <p>Director: <a href="/p/1">Spike Lee</a></p>
  <ul><li>Drama</li><li>Comedy</li></ul>
</div>
</body></html>
"""


class TestParsing:
    def test_root_is_html(self):
        doc = parse_html(SIMPLE)
        assert doc.root.tag == "html"
        assert doc.root.parent is None
        assert doc.root.xpath == "/html[1]"

    def test_text_fields_in_document_order(self):
        doc = parse_html(SIMPLE)
        texts = [f.text.strip() for f in doc.text_fields()]
        assert texts == [
            "T",
            "Do the Right Thing",
            "Director:",
            "Spike Lee",
            "Drama",
            "Comedy",
        ]

    def test_tag_indices_count_same_tag_only(self):
        doc = parse_html("<html><body><p>a</p><div>b</div><p>c</p></body></html>")
        paths = [f.xpath for f in doc.text_fields()]
        assert paths == [
            "/html[1]/body[1]/p[1]/text()[1]",
            "/html[1]/body[1]/div[1]/text()[1]",
            "/html[1]/body[1]/p[2]/text()[1]",
        ]

    def test_attributes(self):
        doc = parse_html(SIMPLE)
        div = next(e for e in doc.iter_elements() if e.tag == "div")
        assert div.get("class") == "info"
        assert div.get("id") == "main"
        assert div.get("missing", "x") == "x"

    def test_void_elements(self):
        doc = parse_html("<html><body>a<br>b<img src='x'>c</body></html>")
        texts = [f.text for f in doc.text_fields()]
        assert texts == ["a", "b", "c"]
        body = doc.root.element_children()[0]
        tags = [c.tag for c in body.element_children()]
        assert tags == ["br", "img"]

    def test_self_closing_void(self):
        doc = parse_html("<html><body>a<br/>b</body></html>")
        assert [f.text for f in doc.text_fields()] == ["a", "b"]

    def test_implicit_li_close(self):
        doc = parse_html("<html><body><ul><li>one<li>two<li>three</ul></body></html>")
        assert [f.text for f in doc.text_fields()] == ["one", "two", "three"]
        ul = next(e for e in doc.iter_elements() if e.tag == "ul")
        assert len(ul.element_children()) == 3

    def test_implicit_table_close(self):
        doc = parse_html(
            "<html><body><table><tr><td>a<td>b<tr><td>c</table></body></html>"
        )
        texts = [f.text for f in doc.text_fields()]
        assert texts == ["a", "b", "c"]

    def test_stray_end_tag_ignored(self):
        doc = parse_html("<html><body></span><p>ok</p></body></html>")
        assert [f.text for f in doc.text_fields()] == ["ok"]

    def test_unclosed_tags_at_eof(self):
        doc = parse_html("<html><body><div><p>dangling")
        assert [f.text for f in doc.text_fields()] == ["dangling"]

    def test_entity_references_decoded(self):
        doc = parse_html("<html><body><p>Tom &amp; Jerry</p></body></html>")
        assert doc.text_fields()[0].text == "Tom & Jerry"

    def test_adjacent_text_merged(self):
        doc = parse_html("<html><body><p>a &amp; b &amp; c</p></body></html>")
        fields = doc.text_fields()
        assert len(fields) == 1
        assert fields[0].text == "a & b & c"

    def test_comments_dropped(self):
        doc = parse_html("<html><body><!-- hidden --><p>shown</p></body></html>")
        assert [f.text for f in doc.text_fields()] == ["shown"]

    def test_script_and_style_not_text_fields(self):
        doc = parse_html(
            "<html><body><script>var x=1;</script><style>.a{}</style><p>real</p></body></html>"
        )
        assert [f.text for f in doc.text_fields()] == ["real"]

    def test_whitespace_only_text_skipped(self):
        doc = parse_html("<html><body>  \n  <p>x</p>  \n </body></html>")
        assert [f.text for f in doc.text_fields()] == ["x"]

    def test_fragment_without_html(self):
        doc = parse_html("<div><p>frag</p></div>")
        assert doc.root.tag == "#fragment"
        assert [f.text for f in doc.text_fields()] == ["frag"]

    def test_multiple_text_children_indices(self):
        doc = parse_html("<html><body><p>one<b>mid</b>two</p></body></html>")
        fields = doc.text_fields()
        assert fields[0].xpath.endswith("/p[1]/text()[1]")
        assert fields[2].xpath.endswith("/p[1]/text()[2]")

    def test_node_at_lookup(self):
        doc = parse_html(SIMPLE)
        for field in doc.text_fields():
            assert doc.node_at(field.xpath) is field
        h1 = next(e for e in doc.iter_elements() if e.tag == "h1")
        assert doc.node_at(h1.xpath) is h1
        assert doc.node_at("/html[1]/body[9]") is None

    def test_url_carried(self):
        doc = parse_html("<html></html>", url="http://example.com/1")
        assert doc.url == "http://example.com/1"


class TestNodeApi:
    def test_ancestors(self):
        doc = parse_html(SIMPLE)
        a = next(e for e in doc.iter_elements() if e.tag == "a")
        chain = [n.tag for n in a.ancestors()]
        assert chain == ["p", "div", "body", "html"]
        chain_with_self = [n.tag for n in a.ancestors(include_self=True)]
        assert chain_with_self[0] == "a"

    def test_depth(self):
        doc = parse_html(SIMPLE)
        assert doc.root.depth == 0
        a = next(e for e in doc.iter_elements() if e.tag == "a")
        assert a.depth == 4  # html → body → div → p → a

    def test_text_content(self):
        doc = parse_html("<html><body><p>a <b>b</b> c</p></body></html>")
        p = next(e for e in doc.iter_elements() if e.tag == "p")
        assert p.text_content() == "a  b  c"

    def test_subtree_size(self):
        doc = parse_html("<html><body><p>a</p></body></html>")
        # html, body, p, text
        assert doc.root.subtree_size() == 4

    def test_contains(self):
        doc = parse_html(SIMPLE)
        div = next(e for e in doc.iter_elements() if e.tag == "div")
        li = next(e for e in doc.iter_elements() if e.tag == "li")
        assert div.contains(li)
        assert not li.contains(div)
        assert div.contains(div)

    def test_text_node_element(self):
        doc = parse_html("<html><body><p>x</p></body></html>")
        field = doc.text_fields()[0]
        assert field.element.tag == "p"
        assert field.is_text
        assert not field.element.is_text

    def test_root_property(self):
        doc = parse_html(SIMPLE)
        li = next(e for e in doc.iter_elements() if e.tag == "li")
        assert li.root is doc.root

    def test_repr_smoke(self):
        node = ElementNode("div")
        text = TextNode("some quite long text that will be truncated in repr")
        assert "div" in repr(node)
        assert "..." in repr(text)


class TestDocId:
    def test_unique_and_monotonic_among_live_documents(self):
        docs = [parse_html(SIMPLE) for _ in range(10)]
        ids = [doc.doc_id for doc in docs]
        assert len(set(ids)) == 10
        assert ids == sorted(ids)

    def test_never_recycled_after_gc(self):
        """Unlike ``id()``, doc_ids must stay unique even when the
        interpreter recycles the freed documents' memory."""
        seen: set[int] = set()
        for _ in range(300):
            doc = parse_html(SIMPLE)
            assert doc.doc_id not in seen
            seen.add(doc.doc_id)
            del doc

    def test_fragment_documents_get_ids_too(self):
        doc = parse_html("<p>fragment</p>")
        assert isinstance(doc.doc_id, int)
        assert doc.doc_id > 0


class TestParseLimits:
    """Hostile-input caps: depth and node-count bombs are refused with a
    permanent, classified error instead of exhausting the process."""

    def test_depth_bomb_rejected(self):
        from repro.dom.parser import ParseLimitError

        bomb = "<div>" * 50 + "x" + "</div>" * 50
        with pytest.raises(ParseLimitError, match="max_parse_depth"):
            parse_html(bomb, max_depth=20)

    def test_node_bomb_rejected(self):
        from repro.dom.parser import ParseLimitError

        bomb = "<html><body>" + "<p>x</p>" * 200 + "</body></html>"
        with pytest.raises(ParseLimitError, match="max_parse_nodes"):
            parse_html(bomb, max_nodes=100)

    def test_limits_classified_permanent(self):
        from repro.dom.parser import ParseLimitError
        from repro.runtime.resilience import classify_error

        try:
            parse_html("<div>" * 30, max_depth=10)
        except ParseLimitError as exc:
            assert classify_error(exc) == "permanent"
        else:  # pragma: no cover - the parse must fail
            raise AssertionError("depth bomb parsed")

    def test_normal_page_fits_generous_defaults(self):
        from repro.core.config import CeresConfig

        config = CeresConfig()
        doc = parse_html(
            SIMPLE,
            max_depth=config.max_parse_depth,
            max_nodes=config.max_parse_nodes,
        )
        assert doc.root.tag == "html"

    def test_uncapped_by_default(self):
        deep = "<div>" * 400 + "x" + "</div>" * 400
        doc = parse_html(deep)  # trusted-corpus path stays permissive
        assert doc.root is not None

    def test_depth_cap_ignores_void_elements(self):
        flat = "<html><body>" + "<br/>" * 50 + "</body></html>"
        doc = parse_html(flat, max_depth=10)  # <br> never nests
        assert doc.root.tag == "html"
