"""Equivalence tests: vectorized annotation/training hot path vs. legacy.

The vectorized engine (interned-XPath batched Levenshtein, SurfaceIndex
mention gathering, bitset local evidence, batched feature-name rows, the
deduplicated direct-``setulb`` L-BFGS solve) must reproduce the legacy
pure-Python path byte for byte: same annotations, same model vocabulary
and coefficients, same extractions — across the SWDE and IMDb fixtures
and randomized DOMs.
"""

import random

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.annotation.relation import RelationAnnotator
from repro.core.annotation.topic import TopicIdentifier
from repro.core.config import CeresConfig
from repro.core.extraction.features import FeatureNameBatcher, NodeFeatureExtractor
from repro.core.pipeline import CeresPipeline
from repro.datasets import generate_imdb, generate_swde, seed_kb_for
from repro.dom.parser import parse_html
from repro.kb.ontology import Ontology, Predicate
from repro.kb.store import KnowledgeBase
from repro.kb.surfaces import SurfaceIndex
from repro.kb.triple import Entity, Value
from repro.ml.features import FeatureVectorizer
from repro.ml.logistic import SoftmaxRegression


def annotation_rows(result):
    return [
        (
            page.page_index,
            page.topic_entity_id,
            page.topic_node.xpath,
            annotation.predicate,
            annotation.node.xpath,
            annotation.object_key,
            annotation.object_text,
        )
        for page in result.annotated_pages
        for annotation in page.annotations
    ]


def model_fingerprint(result):
    out = []
    for cluster in result.cluster_results:
        model = cluster.model
        if model is None:
            out.append(None)
            continue
        out.append(
            (
                sorted(model.vectorizer.vocabulary_.items()),
                model.classifier.coef_.tobytes(),
                model.classifier.intercept_.tobytes(),
                list(model.classifier.classes_),
                sorted(model.feature_extractor.frequent_strings),
            )
        )
    return out


def extraction_rows(result):
    return [
        (e.page_index, e.subject, e.predicate, e.object, e.confidence)
        for e in result.extractions
    ]


def run_both(kb, documents, config=None):
    config = config or CeresConfig()
    fast_pipeline = CeresPipeline(kb, config)
    fast = fast_pipeline.annotate(documents)
    fast_pipeline.train(documents, fast)
    fast_pipeline.extract(fast, documents)
    legacy_pipeline = CeresPipeline(kb, config)
    legacy = legacy_pipeline.legacy_annotate(documents)
    legacy_pipeline.legacy_train(documents, legacy)
    legacy_pipeline.extract(legacy, documents)
    return fast, legacy


class TestEndToEndEquivalence:
    def test_swde_byte_identical(self):
        dataset = generate_swde("movie", n_sites=2, pages_per_site=24, seed=11)
        kb = seed_kb_for(dataset, 11)
        documents = [page.document for page in dataset.sites[1].pages]
        fast, legacy = run_both(kb, documents)
        assert annotation_rows(fast) == annotation_rows(legacy)
        assert annotation_rows(fast)  # non-degenerate
        assert model_fingerprint(fast) == model_fingerprint(legacy)
        assert extraction_rows(fast) == extraction_rows(legacy)
        assert extraction_rows(fast)

    def test_imdb_byte_identical(self):
        dataset = generate_imdb(seed=3, n_films=20, n_people=10, n_episodes=4)
        documents = [page.document for page in dataset.film_pages]
        fast, legacy = run_both(dataset.kb, documents)
        assert annotation_rows(fast) == annotation_rows(legacy)
        assert model_fingerprint(fast) == model_fingerprint(legacy)
        assert extraction_rows(fast) == extraction_rows(legacy)


def duplication_kb_and_pages(n_pages=10):
    """Pages with duplicated genre/cast mentions (Examples 3.1-3.2)."""
    ontology = Ontology(
        [
            Predicate("directed_by", range_kind="entity"),
            Predicate("has_cast_member", range_kind="entity", multi_valued=True),
            Predicate("genre", range_kind="string", multi_valued=True),
        ]
    )
    kb = KnowledgeBase(ontology)
    rng = random.Random(4)
    genres = ["Drama", "Comedy", "Action"]
    pages = []
    for i in range(n_pages):
        film = f"f{i}"
        kb.add_entity(Entity(film, f"Feature Film {i} Story", "film"))
        kb.add_entity(Entity(f"d{i}", f"Director Person {i}", "person"))
        kb.add_fact(film, "directed_by", Value.entity(f"d{i}"))
        page_genres = rng.sample(genres, 2)
        for genre in page_genres:
            kb.add_fact(film, "genre", Value.literal(genre))
        for j in range(3):
            kb.add_entity(Entity(f"a{i}_{j}", f"Actor Person {i} {j}", "person"))
            kb.add_fact(film, "has_cast_member", Value.entity(f"a{i}_{j}"))
        cast_items = "".join(
            f"<li class='cast'>Actor Person {i} {j}</li>" for j in range(3)
        )
        genre_spans = "".join(f"<span>{g}</span>" for g in page_genres)
        browse = "".join(f"<li class='bg'>{g}</li>" for g in genres)
        html = (
            f"<html><body><div class='main'>"
            f"<h1>Feature Film {i} Story</h1>"
            f"<div class='credit'><span>Director</span><span>Director Person {i}</span></div>"
            f"<div class='genres'>{genre_spans}</div>"
            f"<ul class='castlist'>{cast_items}</ul></div>"
            f"<aside><ul class='all'>{browse}</ul></aside></body></html>"
        )
        pages.append(parse_html(html))
    return kb, pages


class TestAnnotatorEquivalence:
    def test_duplicated_mentions_identical(self):
        kb, pages = duplication_kb_and_pages()
        config = CeresConfig()
        identifier = TopicIdentifier(kb, config)
        topics = identifier.identify(pages)
        assert topics
        annotator = RelationAnnotator(kb, config, identifier.matcher)
        fast = annotator.annotate(pages, topics)
        legacy = annotator.legacy_annotate(pages, topics)
        fast_rows = [
            (p.page_index, a.predicate, a.node.xpath, a.object_key)
            for p in fast
            for a in p.annotations
        ]
        legacy_rows = [
            (p.page_index, a.predicate, a.node.xpath, a.object_key)
            for p in legacy
            for a in p.annotations
        ]
        assert fast_rows == legacy_rows
        assert fast_rows

    def test_best_local_mentions_matches_legacy_on_random_doms(self):
        rng = random.Random(9)
        kb, pages = duplication_kb_and_pages(4)
        annotator = RelationAnnotator(kb, CeresConfig())
        for document in pages:
            fields = document.text_fields()
            for _ in range(20):
                k = rng.randint(2, min(5, len(fields)))
                mentions = rng.sample(fields, k)
                groups = [
                    rng.sample(fields, rng.randint(1, 3))
                    for _ in range(rng.randint(0, 4))
                ]
                assert annotator.best_local_mentions(
                    mentions, groups
                ) == annotator.legacy_best_local_mentions(mentions, groups)

    def test_single_mention_short_circuit(self):
        kb, pages = duplication_kb_and_pages(2)
        annotator = RelationAnnotator(kb, CeresConfig())
        field = pages[0].text_fields()[0]
        assert annotator.best_local_mentions([field], [[field]]) == [field]


class TestSurfaceIndex:
    def test_entries_match_legacy_expansion(self):
        dataset = generate_swde("movie", n_sites=1, pages_per_site=6, seed=3)
        kb = seed_kb_for(dataset, 3)
        index = SurfaceIndex(kb)
        from repro.text.fuzzy import surface_variants

        for subject in list(kb.subjects())[:20]:
            entries = index.entries_for_subject(subject)
            seen = set()
            expected = []
            for triple in kb.triples_for_subject(subject):
                key = (triple.predicate, triple.object.key)
                if key in seen:
                    continue
                seen.add(key)
                surfaces = kb.object_surfaces(triple)
                variants = set()
                for surface in surfaces:
                    variants |= surface_variants(surface)
                if not variants:
                    continue
                text = (
                    kb.entity(triple.object.value).name
                    if triple.object.is_entity
                    else triple.object.value
                )
                expected.append((triple.predicate, triple.object.key, text, variants))
            assert [
                (e.predicate, e.object_key, e.object_text, set(e.variants))
                for e in entries
            ] == expected

    def test_entries_cached(self):
        dataset = generate_swde("movie", n_sites=1, pages_per_site=4, seed=3)
        kb = seed_kb_for(dataset, 3)
        index = SurfaceIndex(kb)
        subject = next(iter(kb.subjects()))
        assert index.entries_for_subject(subject) is index.entries_for_subject(subject)


class TestBatchedFeatureRows:
    def test_row_sets_match_legacy_feature_dicts(self):
        dataset = generate_imdb(seed=5, n_films=8, n_people=6, n_episodes=2)
        documents = [page.document for page in dataset.film_pages]
        config = CeresConfig()
        extractor = NodeFeatureExtractor(config).fit(documents)
        batcher = FeatureNameBatcher(extractor)
        for document in documents:
            for node in document.text_fields():
                row = batcher.row_for(node, document)
                legacy = extractor.features(node, document)
                assert set(row) == set(legacy), node.xpath

    def test_rows_survive_cache_guard_clears(self, monkeypatch):
        """With a tiny cache limit the guard fires constantly; rows must
        still match the oracle (regression: a guard clear used to drop
        the pins for ids embedded in row-cache keys, letting recycled
        tuple ids alias stale rows)."""
        import repro.core.extraction.features as features_module

        monkeypatch.setattr(features_module, "_BATCHER_CACHE_LIMIT", 2)
        dataset = generate_imdb(seed=5, n_films=6, n_people=5, n_episodes=2)
        documents = [page.document for page in dataset.film_pages]
        config = CeresConfig()
        extractor = NodeFeatureExtractor(config).fit(documents)
        batcher = FeatureNameBatcher(extractor)
        for document in documents:
            for node in document.text_fields():
                row = batcher.row_for(node, document)
                assert set(row) == set(extractor.features(node, document))

    def test_vectorizer_name_rows_match_dict_path(self):
        dataset = generate_swde("movie", n_sites=1, pages_per_site=6, seed=7)
        documents = [page.document for page in dataset.sites[0].pages]
        config = CeresConfig()
        extractor = NodeFeatureExtractor(config).fit(documents)
        batcher = FeatureNameBatcher(extractor)
        rows, dicts = [], []
        for document in documents:
            for node in document.text_fields():
                rows.append(batcher.row_for(node, document))
                dicts.append(extractor.features(node, document))
        fast_vectorizer = FeatureVectorizer()
        X_fast = fast_vectorizer.fit_transform_name_rows(rows)
        legacy_vectorizer = FeatureVectorizer()
        X_legacy = legacy_vectorizer.fit_transform(dicts)
        assert fast_vectorizer.vocabulary_ == legacy_vectorizer.vocabulary_
        assert (X_fast != X_legacy).nnz == 0
        assert X_fast.indices.tolist() == X_legacy.indices.tolist()
        assert X_fast.indptr.tolist() == X_legacy.indptr.tolist()


class TestFastFitEquivalence:
    def _random_problem(self, rng, m, n, k, unit_data=True):
        X = sp.random(m, n, density=0.15, format="csr", random_state=rng)
        if unit_data:
            X.data[:] = 1.0
        X.sum_duplicates()
        X.sort_indices()
        dup = X[np.random.RandomState(rng).randint(0, m, m // 2)] if m > 1 else X
        X = sp.vstack([X, dup]).tocsr()
        y = np.random.RandomState(rng + 1).randint(0, k, X.shape[0])
        return X, y

    @pytest.mark.parametrize("c_value", [1.0, 2.5])
    def test_fast_equals_reference(self, c_value):
        for seed, (m, n, k) in enumerate([(40, 12, 3), (150, 30, 5), (9, 4, 2)]):
            X, y = self._random_problem(seed, m, n, k)
            fast = SoftmaxRegression(C=c_value, max_iter=120).fit(X, y)
            reference = SoftmaxRegression(C=c_value, max_iter=120).fit(
                X, y, engine="reference"
            )
            assert np.array_equal(fast.coef_, reference.coef_)
            assert np.array_equal(fast.intercept_, reference.intercept_)

    def test_non_unit_data_values(self):
        """Rows with equal sparsity but different values must not collapse."""
        X, y = self._random_problem(2, 60, 10, 3, unit_data=False)
        fast = SoftmaxRegression(max_iter=80).fit(X, y)
        reference = SoftmaxRegression(max_iter=80).fit(X, y, engine="reference")
        assert np.array_equal(fast.coef_, reference.coef_)

    def test_single_class_degenerate(self):
        X = sp.csr_matrix(np.ones((4, 3)))
        model = SoftmaxRegression().fit(X, ["only"] * 4)
        assert model.predict_proba(X).tolist() == [[1.0]] * 4

    def test_unknown_engine_rejected(self):
        X = sp.csr_matrix(np.ones((4, 3)))
        with pytest.raises(ValueError):
            SoftmaxRegression().fit(X, [0, 1, 0, 1], engine="nope")


class TestMinPredicatePages:
    def _page_mentions_site(self, n_pages):
        """Tiny site where 'genre' objects repeat on every page."""
        kb, pages = duplication_kb_and_pages(n_pages)
        config_default = CeresConfig()
        identifier = TopicIdentifier(kb, config_default)
        topics = identifier.identify(pages)
        return kb, pages, identifier, topics

    def test_default_matches_legacy_hardcoded_floor(self):
        assert CeresConfig().min_predicate_pages == 4

    def test_floor_gates_over_representation(self):
        """An object on 2 of 3 pages is over-represented (>50%) only when
        the predicate clears the page floor — 3 pages is below the default
        floor of 4, so the default config never flags it."""
        from repro.core.annotation.relation import ObjectMentions

        kb, pages, identifier, topics = self._page_mentions_site(3)
        node = pages[0].text_fields()[0]
        page_mentions = {
            page_index: {
                "genre": [
                    ObjectMentions("genre", ("l", "Drama"), "Drama", [node])
                ]
                if page_index < 2
                else [
                    ObjectMentions("genre", ("l", "Action"), "Action", [node])
                ]
            }
            for page_index in range(3)
        }
        default_annotator = RelationAnnotator(kb, CeresConfig(), identifier.matcher)
        _, over_default = default_annotator._compute_global_stats(page_mentions)
        assert over_default == set()
        low_annotator = RelationAnnotator(
            kb, CeresConfig(min_predicate_pages=3), identifier.matcher
        )
        _, over_low = low_annotator._compute_global_stats(page_mentions)
        assert over_low == {("genre", ("l", "Drama"))}

    def test_legacy_and_fast_share_the_floor(self):
        kb, pages, identifier, topics = self._page_mentions_site(5)
        config = CeresConfig(min_predicate_pages=2)
        annotator = RelationAnnotator(kb, config, identifier.matcher)
        fast = annotator.annotate(pages, topics)
        legacy = annotator.legacy_annotate(pages, topics)
        assert [
            (p.page_index, a.predicate, a.node.xpath)
            for p in fast
            for a in p.annotations
        ] == [
            (p.page_index, a.predicate, a.node.xpath)
            for p in legacy
            for a in p.annotations
        ]
