"""Tests for repro.runtime.cache (bounded LRU + stats)."""

import pytest

from repro.runtime.cache import CacheStats, LRUCache


class TestLRUBasics:
    def test_put_get_roundtrip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", "fallback") == "fallback"

    def test_capacity_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a", the least recently used
        assert "a" not in cache
        assert cache.keys() == ["b", "c"]

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # "b" is now LRU
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache

    def test_put_refreshes_recency_and_updates(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # update, "b" becomes LRU
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_capacity_one(self):
        cache = LRUCache(1)
        cache.put("a", 1)
        cache.put("b", 2)
        assert len(cache) == 1
        assert cache.get("b") == 2

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            LRUCache(0)
        with pytest.raises(ValueError, match="capacity"):
            LRUCache(4).resize(-1)

    def test_pop_and_clear(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.pop("a") == 1
        assert cache.pop("a") is None
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0
        # pop/clear are not evictions — counters untouched.
        assert cache.stats().evictions == 0

    def test_resize_shrink_evicts_lru(self):
        cache = LRUCache(4)
        for key in "abcd":
            cache.put(key, key)
        cache.get("a")
        cache.resize(2)
        assert cache.keys() == ["d", "a"]
        assert cache.stats().evictions == 2

    def test_get_or_create(self):
        cache = LRUCache(2)
        calls = []

        def factory():
            calls.append(1)
            return "value"

        assert cache.get_or_create("k", factory) == "value"
        assert cache.get_or_create("k", factory) == "value"
        assert len(calls) == 1

    def test_peek_does_not_touch_recency_or_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        before = cache.stats()
        assert cache.peek("a") == 1
        assert cache.peek("missing") is None
        after = cache.stats()
        assert (after.hits, after.misses) == (before.hits, before.misses)
        cache.put("c", 3)  # "a" was NOT refreshed by peek → evicted
        assert "a" not in cache


class TestStats:
    def test_counters(self):
        cache = LRUCache(2, name="demo")
        cache.get("x")  # miss
        cache.put("x", 1)
        cache.get("x")  # hit
        cache.put("y", 2)
        cache.put("z", 3)  # evicts "x"
        stats = cache.stats()
        assert stats.name == "demo"
        assert stats.capacity == 2
        assert stats.size == 2
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.evictions == 1
        assert stats.hit_rate == 0.5

    def test_hit_rate_zero_when_unread(self):
        assert LRUCache(2).stats().hit_rate == 0.0

    def test_to_dict_json_friendly(self):
        stats = LRUCache(3, name="n").stats()
        data = stats.to_dict()
        assert data == {
            "name": "n",
            "capacity": 3,
            "size": 0,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "hit_rate": 0.0,
        }

    def test_merged(self):
        a = CacheStats("a", 2, 1, 10, 5, 1)
        b = CacheStats("b", 3, 2, 20, 5, 0)
        merged = a.merged(b, name="both")
        assert merged == CacheStats("both", 5, 3, 30, 10, 1)

    def test_clear_preserves_history(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        stats = cache.stats()
        assert stats.size == 0
        assert stats.hits == 1

    def test_iteration_order_lru_first(self):
        cache = LRUCache(3)
        for key in "abc":
            cache.put(key, key)
        cache.get("a")
        assert list(cache) == ["b", "c", "a"]
