"""Tests for repro.datasets.entities (synthetic universes)."""

from repro.datasets.entities import (
    BookUniverse,
    MovieUniverse,
    NbaUniverse,
    UniversityUniverse,
)


class TestMovieUniverse:
    def test_deterministic(self):
        a = MovieUniverse(seed=5, n_people=50, n_films=20)
        b = MovieUniverse(seed=5, n_people=50, n_films=20)
        assert [f.title for f in a.films.values()] == [
            f.title for f in b.films.values()
        ]
        assert [p.name for p in a.people.values()] == [
            p.name for p in b.people.values()
        ]

    def test_different_seeds_differ(self):
        a = MovieUniverse(seed=1, n_people=50, n_films=20)
        b = MovieUniverse(seed=2, n_people=50, n_films=20)
        assert [f.title for f in a.films.values()] != [
            f.title for f in b.films.values()
        ]

    def test_counts(self):
        universe = MovieUniverse(seed=0, n_people=60, n_films=25, n_series=3,
                                 episodes_per_series=4)
        assert len(universe.people) == 60
        assert len(universe.films) == 25
        assert len(universe.series) == 3
        assert len(universe.episodes) == 12

    def test_facts_reference_known_entities(self):
        universe = MovieUniverse(seed=0, n_people=40, n_films=15)
        ids = {e.id for e in universe.entities()}
        for fact in universe.facts():
            assert fact.subject in ids
            if fact.value.is_entity:
                assert fact.value.value in ids

    def test_inverse_facts_consistent(self):
        universe = MovieUniverse(seed=0, n_people=40, n_films=15)
        cast = set()
        acted = set()
        for fact in universe.facts():
            if fact.predicate == "has_cast_member":
                cast.add((fact.subject, fact.value.value))
            elif fact.predicate == "acted_in":
                acted.add((fact.value.value, fact.subject))
        assert cast == acted

    def test_principal_cast_subset(self):
        universe = MovieUniverse(seed=0, n_people=40, n_films=15)
        for film in universe.films.values():
            assert set(film.principal_cast_ids) <= set(film.cast_ids)
            assert film.principal_cast_ids

    def test_directors_direct_many(self):
        """Role pools concentrate credits (see DESIGN.md)."""
        universe = MovieUniverse(seed=0, n_people=200, n_films=100)
        from collections import Counter
        credits = Counter()
        for film in universe.films.values():
            for director in film.director_ids:
                credits[director] += 1
        assert max(credits.values()) >= 3

    def test_pilot_episodes_exist(self):
        universe = MovieUniverse(seed=0, n_people=40, n_films=10, n_series=8,
                                 episodes_per_series=4)
        pilots = [e for e in universe.episodes.values() if e.title == "Pilot"]
        assert len(pilots) >= 2  # the title-ambiguity hazard

    def test_release_year_matches_date(self):
        universe = MovieUniverse(seed=0, n_people=40, n_films=15)
        for film in universe.films.values():
            assert film.release_date.startswith(film.release_year)

    def test_unique_names(self):
        universe = MovieUniverse(seed=0, n_people=300, n_films=150)
        names = [p.name for p in universe.people.values()]
        assert len(names) == len(set(names))
        titles = [f.title for f in universe.films.values()]
        assert len(titles) == len(set(titles))


class TestOtherUniverses:
    def test_books(self):
        universe = BookUniverse(seed=0, n_books=50)
        assert len(universe.books) == 50
        for book in universe.books.values():
            assert book.isbn13.startswith("978-")
            assert len(book.isbn13.replace("-", "")) == 13
            assert book.authors
        facts = universe.facts()
        assert any(f.predicate == "isbn13" for f in facts)

    def test_isbn_check_digit(self):
        universe = BookUniverse(seed=0, n_books=20)
        for book in universe.books.values():
            digits = [int(c) for c in book.isbn13.replace("-", "")]
            checksum = sum(d * (1 if i % 2 == 0 else 3) for i, d in enumerate(digits))
            assert checksum % 10 == 0

    def test_nba(self):
        universe = NbaUniverse(seed=0, n_players=40)
        assert len(universe.players) == 40
        for player in universe.players.values():
            feet, inches = player.height.split("-")
            assert 5 <= int(feet) <= 7
            assert 0 <= int(inches) <= 11
            assert 150 < int(player.weight) < 300

    def test_universities(self):
        universe = UniversityUniverse(seed=0, n_universities=40)
        assert len(universe.universities) == 40
        names = [u.name for u in universe.universities.values()]
        assert len(names) == len(set(names))
        for uni in universe.universities.values():
            assert uni.type in ("Public", "Private")
            assert uni.website.endswith(".edu")
            assert uni.phone.startswith("(")

    def test_deterministic_books(self):
        a = BookUniverse(seed=3, n_books=10)
        b = BookUniverse(seed=3, n_books=10)
        assert [x.isbn13 for x in a.books.values()] == [
            x.isbn13 for x in b.books.values()
        ]
